"""Command-line interface to the serverless sky toolkit.

Subcommands mirror the library's main flows::

    python -m repro catalog [--provider aws]
    python -m repro workloads
    python -m repro characterize us-west-1b [--polls 6] [--json out.json]
    python -m repro profile zipper --zone us-west-1b [--repetitions 2000]
    python -m repro study zipper --zones us-west-1a,us-west-1b,sa-east-1a \
        --days 7 [--json out.json]
    python -m repro sweep campaign --zones us-west-1a,us-west-1b \
        --seeds 0,1,2 --workers 4 [--json out.json]
    python -m repro sweep temporal --zones us-west-1b --seeds 0 \
        --temporal-mode hourly --periods 6
    python -m repro sweep campaign ... --backend remote --bind 0.0.0.0:7077 \
        --remote-workers 0   # serve external sweep-worker peers
    python -m repro sweep-worker --connect coordinator-host:7077
    python -m repro sweep campaign ... --telemetry --serve 9100 \
        --record runs/today        # merged worker telemetry + live
                                   # /metrics + flight recorder
    python -m repro obs serve --port 9100 --rounds 3
    python -m repro obs tail --connect 127.0.0.1:9100
    python -m repro serve --workload sha1_hash --profile diurnal \
        --rps 500 --duration 120 --serve 9100 --record runs/serve
                                   # always-on gateway: coalesced
                                   # dispatch + admission + live
                                   # re-characterization

Everything runs against the simulated sky; ``--seed`` makes runs
reproducible.  Grid-shaped experiments (``sweep``, multi-zone
``characterize``, multi-workload ``study``) accept ``--workers N`` and
fan out over a process pool; results are byte-identical to ``--workers
1`` because every cell's seed is spawn-keyed from the root seed, never
from scheduling order.
"""

import argparse
import os
import sys

from repro import (
    BaselinePolicy,
    HybridPolicy,
    Observability,
    RetryRoutingPolicy,
    RoutingStudy,
    SamplingCampaign,
    SkyController,
    SkyMesh,
    UniversalDynamicFunctionHandler,
    WorkloadRunner,
    build_sky,
    workload_by_name,
)
from repro import reporting
from repro.common.errors import CharacterizationError
from repro.cloudsim.catalog import (
    catalog_region_names,
    provider_name_of_zone,
    zone_spec,
)
from repro.cloudsim.provider import CORE_PROVIDERS
from repro.faults.schedule import PRESET_NAMES
from repro.workloads import all_workloads, resolve_runtime_model


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Serverless sky computing: characterize zones and "
                    "route workloads on a simulated multi-cloud sky.")
    parser.add_argument("--seed", type=int, default=42,
                        help="simulation seed (default 42)")
    commands = parser.add_subparsers(dest="command", required=True)

    catalog = commands.add_parser("catalog",
                                  help="list the 41-region catalog "
                                       "(plus opt-in scenario packs)")
    catalog.add_argument("--provider",
                         choices=("aws", "ibm", "do", "gcp", "azure",
                                  "openwhisk", "ce-caas", "spot"))

    workloads = commands.add_parser(
        "workloads", help="list (or actually execute) the 12 Table-1 "
                          "workloads")
    workloads.add_argument("--run", action="store_true",
                           help="execute each workload for real and time "
                                "it")
    workloads.add_argument("--scale", type=float, default=0.1)
    workloads.add_argument("--repetitions", type=int, default=2)

    characterize = commands.add_parser(
        "characterize", help="sample a zone's CPU distribution")
    characterize.add_argument("zone",
                              help="zone id (comma-separate several to "
                                   "sweep them as independent campaigns)")
    characterize.add_argument("--polls", type=int, default=6,
                              help="polls to run (default 6; 0 = until "
                                   "saturation)")
    characterize.add_argument("--workers", type=int, default=1,
                              help="process-pool size for multi-zone "
                                   "sweeps (default 1 = serial)")
    characterize.add_argument("--json", dest="json_path")
    characterize.add_argument("--record", metavar="DIR",
                              help="write a run manifest + artifacts "
                                   "(flight recorder) to DIR")

    profile = commands.add_parser(
        "profile", help="per-CPU runtime profile of a workload in a zone")
    profile.add_argument("workload")
    profile.add_argument("--zone", default="us-west-1b")
    profile.add_argument("--repetitions", type=int, default=2000)

    advise = commands.add_parser(
        "advise", help="recommend a memory setting for a workload in a "
                       "zone")
    advise.add_argument("workload")
    advise.add_argument("--zone", default="us-west-1b")
    advise.add_argument("--polls", type=int, default=6)
    advise.add_argument("--objective", default="balanced",
                        choices=("cheapest", "fastest", "balanced"))

    study = commands.add_parser(
        "study", help="multi-day routing study (baseline vs. retry vs. "
                      "hybrid)")
    study.add_argument("workload",
                       help="workload name (comma-separate several to "
                            "sweep one independent study per workload)")
    study.add_argument("--zones",
                       default="us-west-1a,us-west-1b,sa-east-1a")
    study.add_argument("--baseline-zone", default="us-west-1b")
    study.add_argument("--days", type=int, default=7)
    study.add_argument("--burst", type=int, default=1000)
    study.add_argument("--workers", type=int, default=1,
                       help="process-pool size for multi-workload sweeps "
                            "(default 1 = serial)")
    study.add_argument("--json", dest="json_path")
    study.add_argument("--csv", dest="csv_path")

    sweep = commands.add_parser(
        "sweep", help="fan an experiment grid (zones x seeds x ...) over "
                      "a process pool or socket workers; byte-identical "
                      "at any worker count")
    sweep.add_argument("kind", choices=("campaign", "progressive",
                                        "study", "temporal"))
    sweep.add_argument("--zones", default="us-west-1a,us-west-1b")
    sweep.add_argument("--seeds", default="0",
                       help="comma-separated seed tokens; each grid cell "
                            "derives its cloud seed from --seed and its "
                            "own (zone, seed-token) key")
    sweep.add_argument("--polls", type=int, default=6,
                       help="max polls per campaign cell (0 = until "
                            "saturation)")
    sweep.add_argument("--endpoints", type=int, default=10,
                       help="sampling endpoints per campaign cell")
    sweep.add_argument("--requests", type=int, default=None,
                       help="requests per poll (default: provider quota "
                            "capped at 1000)")
    sweep.add_argument("--budgets", default="1,2,4,6",
                       help="progressive: report APE at these poll "
                            "budgets")
    sweep.add_argument("--workloads", default="sha1_hash",
                       help="study: comma-separated workloads (one study "
                            "cell per workload x seed)")
    sweep.add_argument("--baseline-zone", default=None,
                       help="study: fixed zone for the baseline/retry "
                            "policies (default: first of --zones)")
    sweep.add_argument("--days", type=int, default=3)
    sweep.add_argument("--burst", type=int, default=500)
    sweep.add_argument("--temporal-mode", default="daily",
                       choices=("daily", "hourly"),
                       help="temporal: daily campaign series or hourly "
                            "characterizations (default daily)")
    sweep.add_argument("--periods", type=int, default=3,
                       help="temporal: days (daily mode) or hours "
                            "(hourly mode) per cell (default 3)")
    sweep.add_argument("--workers", type=int, default=1)
    sweep.add_argument("--chunk", type=int, default=None,
                       help="cells per dispatch chunk (default: "
                            "auto, ~4 chunks per worker)")
    sweep.add_argument("--backend", default="local",
                       choices=("local", "remote"),
                       help="executor backend: local process pool, or a "
                            "socket coordinator serving sweep-worker "
                            "processes (default local)")
    sweep.add_argument("--bind", default="127.0.0.1:0",
                       help="remote: coordinator listen address "
                            "(default 127.0.0.1:0 = loopback, any port)")
    sweep.add_argument("--remote-workers", type=int, default=None,
                       help="remote: loopback worker processes to spawn "
                            "(default: --workers; 0 = spawn none and "
                            "wait for external sweep-worker connects)")
    sweep.add_argument("--join-timeout", type=float, default=30.0,
                       help="remote: seconds to wait for the first "
                            "worker before degrading to the local pool "
                            "(default 30)")
    sweep.add_argument("--progress", action="store_true",
                       help="print per-cell progress to stderr")
    sweep.add_argument("--lazy", action="store_true",
                       help="keep worker results pickled until each cell "
                            "is reported (bounded coordinator memory on "
                            "observation-heavy grids)")
    sweep.add_argument("--telemetry", action="store_true",
                       help="ship worker-side events/metrics/spans back "
                            "to the coordinator (merged trace + "
                            "worker-labeled series)")
    sweep.add_argument("--serve", type=int, default=None, metavar="PORT",
                       help="expose live /metrics, /healthz, /runs on "
                            "this port while the sweep runs (0 = any "
                            "free port)")
    sweep.add_argument("--record", metavar="DIR",
                       help="write a run manifest + events/metrics/trace "
                            "artifacts (flight recorder) to DIR, plus a "
                            "crash-safe chunks.jsonl journal")
    sweep.add_argument("--resume", metavar="DIR",
                       help="replay DIR's chunks.jsonl journal and run "
                            "only the chunks it is missing (same grid "
                            "flags required; output byte-identical to "
                            "an uninterrupted run)")
    sweep.add_argument("--auth-token", default=None,
                       help="remote: shared secret for the HMAC "
                            "handshake; unauthenticated peers are "
                            "rejected before any pickle is read "
                            "(default: $REPRO_SWEEP_TOKEN, else "
                            "anonymous loopback mode)")
    sweep.add_argument("--worker-log-dir", metavar="DIR", default=None,
                       help="remote: write spawned workers' output to "
                            "worker-<n>.log under DIR instead of "
                            "discarding it")
    sweep.add_argument("--json", dest="json_path")

    worker = commands.add_parser(
        "sweep-worker", help="serve a sweep coordinator: run task chunks "
                             "received over a socket until told to stop")
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address to dial")
    worker.add_argument("--id", dest="worker_id", default=None,
                        help="worker name in events/gauges "
                             "(default worker-<pid>)")
    worker.add_argument("--heartbeat", type=float, default=1.0,
                        help="seconds between liveness heartbeats "
                             "(default 1.0)")
    worker.add_argument("--max-reconnects", type=int, default=8,
                        help="consecutive connection failures before "
                             "giving up (default 8)")
    worker.add_argument("--auth-token", default=None,
                        help="shared secret for the HMAC handshake "
                             "(default: $REPRO_SWEEP_TOKEN, else "
                             "anonymous)")
    worker.add_argument("--spool", metavar="DIR", default=None,
                        help="persist undeliverable results to DIR and "
                             "replay them on reconnect (survives "
                             "coordinator restarts)")

    obs = commands.add_parser(
        "obs", help="run a short routed burst with full observability and "
                    "print the metrics/trace summary; 'serve' exposes a "
                    "live Prometheus endpoint, 'tail' renders a running "
                    "sweep's /metrics")
    obs.add_argument("mode", nargs="?", default="demo",
                     choices=("demo", "serve", "tail"),
                     help="demo: one burst + summary (default); serve: "
                          "keep a live /metrics endpoint up across "
                          "--rounds bursts; tail: scrape --connect and "
                          "render sweep progress")
    obs.add_argument("--port", type=int, default=0,
                     help="serve: listen port (default 0 = any free "
                          "port)")
    obs.add_argument("--rounds", type=int, default=1,
                     help="serve/tail: bursts to run / scrapes to render "
                          "(default 1)")
    obs.add_argument("--interval", type=float, default=1.0,
                     help="serve/tail: seconds between rounds "
                          "(default 1.0)")
    obs.add_argument("--connect", metavar="URL",
                     help="tail: endpoint to scrape (host:port or full "
                          "/metrics URL)")
    obs.add_argument("--record", metavar="DIR",
                     help="demo/serve: write a run manifest + artifacts "
                          "(flight recorder) to DIR")
    obs.add_argument("--workload", default="sha1_hash")
    obs.add_argument("--zones", default="us-west-1a,us-west-1b")
    obs.add_argument("--requests", type=int, default=60)
    obs.add_argument("--polls", type=int, default=2,
                     help="profiling polls per zone refresh (default 2)")
    obs.add_argument("--poll-requests", type=int, default=400)
    obs.add_argument("--prom", dest="prom_path",
                     help="write a Prometheus-text metrics snapshot")
    obs.add_argument("--jsonl", dest="jsonl_path",
                     help="write the raw event log as JSONL")
    obs.add_argument("--csv", dest="csv_path",
                     help="write the metrics snapshot as CSV")

    serve = commands.add_parser(
        "serve", help="run the always-on serving gateway: open-loop "
                      "arrivals, coalesced dispatch, admission control, "
                      "live re-characterization")
    serve.add_argument("--workload", default="sha1_hash")
    serve.add_argument("--zones", default="us-west-1a,us-west-1b")
    serve.add_argument("--profile", default="poisson",
                       choices=("poisson", "diurnal"),
                       help="arrival process shape (default poisson)")
    serve.add_argument("--rps", type=float, default=500.0,
                       help="offered rate (poisson) or diurnal trough "
                            "(default 500)")
    serve.add_argument("--peak-rps", type=float, default=None,
                       help="diurnal: peak rate (default 4x --rps)")
    serve.add_argument("--period", type=float, default=86400.0,
                       help="diurnal: cycle length in sim seconds "
                            "(default one day)")
    serve.add_argument("--duration", type=float, default=60.0,
                       help="sim seconds to serve (default 60)")
    serve.add_argument("--batch-size", type=int, default=256,
                       help="coalescing flush size (default 256)")
    serve.add_argument("--flush-ms", type=float, default=2.0,
                       help="coalescing flush deadline in sim ms "
                            "(default 2)")
    serve.add_argument("--batch-floor", type=int, default=16,
                       help="below this many buffered requests a flush "
                            "takes the scalar path (default 16)")
    serve.add_argument("--rate-limit", type=float, default=None,
                       help="token-bucket admitted RPS cap (default: "
                            "unlimited)")
    serve.add_argument("--burst", type=float, default=None,
                       help="token-bucket burst (default: one second of "
                            "--rate-limit)")
    serve.add_argument("--max-queue", type=int, default=100000,
                       help="queue depth before 503-shedding "
                            "(default 100000)")
    serve.add_argument("--slo-ms", type=float, default=None,
                       help="latency SLO in ms (default: 3x the "
                            "workload's baseline runtime)")
    serve.add_argument("--report-every", type=float, default=1.0,
                       help="sim seconds between serve.report emissions "
                            "(default 1)")
    serve.add_argument("--pace", type=float, default=0.0,
                       help="wall seconds per sim second (0 = flat out; "
                            "1.0 = real time); sim results are identical "
                            "at any pace")
    serve.add_argument("--characterize", action="store_true",
                       help="run real sampling campaigns before serving "
                            "instead of bootstrapping profiles from "
                            "catalog capacity")
    serve.add_argument("--polls", type=int, default=2,
                       help="profiling polls per zone refresh (default 2)")
    serve.add_argument("--serve", type=int, default=None, metavar="PORT",
                       dest="serve_port",
                       help="expose live /metrics, /healthz, /runs on "
                            "this port while serving (0 = any free port)")
    serve.add_argument("--record", metavar="DIR",
                       help="write a run manifest + events/metrics/trace "
                            "artifacts (flight recorder) to DIR")
    serve.add_argument("--json", dest="json_path",
                       help="write the final gateway report as JSON")

    chaos = commands.add_parser(
        "chaos", help="run a routed workload under a scripted fault "
                      "schedule: resilient vs. naive routing")
    chaos.add_argument("--preset", default="brownout",
                       choices=PRESET_NAMES,
                       help="fault scenario to inject (default brownout)")
    chaos.add_argument("--workload", default="sha1_hash")
    chaos.add_argument("--zones", default="us-west-1a,us-west-1b")
    chaos.add_argument("--requests", type=int, default=400)
    chaos.add_argument("--interval", type=float, default=1.0,
                       help="sim seconds between requests (default 1.0)")
    chaos.add_argument("--fault-start", type=float, default=60.0)
    chaos.add_argument("--fault-duration", type=float, default=240.0)
    chaos.add_argument("--assert-availability", type=float, default=None,
                       metavar="FLOOR",
                       help="exit non-zero if resilient availability "
                            "falls below FLOOR (e.g. 0.99)")
    chaos.add_argument("--json", dest="json_path",
                       help="write both reports as JSON")
    chaos.add_argument("--prom", dest="prom_path",
                       help="write the resilient run's metrics as "
                            "Prometheus text")
    chaos.add_argument("--jsonl", dest="jsonl_path",
                       help="write the resilient run's event log as JSONL")
    chaos.add_argument("--record", metavar="DIR",
                       help="write a run manifest + the resilient run's "
                            "artifacts (flight recorder) to DIR")
    return parser


def cmd_catalog(args, out):
    for name in catalog_region_names(args.provider):
        # Region provider is implied by which spec table holds it.
        out.write("{}\n".format(name))
    return 0


def cmd_workloads(args, out):
    if getattr(args, "run", False):
        from repro.workloads.suite import WorkloadSuite
        suite = WorkloadSuite(scale=args.scale,
                              repetitions=args.repetitions,
                              seed=args.seed)
        report = suite.run()
        out.write("{:<24} {:>5} {:>6} {:>12} {:>12}\n".format(
            "name", "vCPUs", "runs", "mean (s)", "stdev (s)"))
        for row in report.rows:
            out.write("{:<24} {:>5} {:>6} {:>12.4f} {:>12.4f}\n".format(
                row.name, row.vcpus, row.runs, row.mean_seconds,
                row.stdev_seconds))
        out.write("total wall time: {:.2f}s at scale {}\n".format(
            report.total_seconds(), report.scale))
        return 0
    out.write("{:<24} {:>5}  {}\n".format("name", "vCPUs", "description"))
    for workload in all_workloads():
        out.write("{:<24} {:>5}  {}\n".format(
            workload.name, workload.vcpus, workload.description))
    return 0


def _write_campaign_block(out, zone_id, result):
    profile = result.ground_truth()
    out.write("zone {} ({} drift class)\n".format(
        zone_id, zone_spec(zone_id).drift))
    out.write("observed {} FIs over {} polls, cost {}\n".format(
        result.total_fis, result.polls_run, result.total_cost))
    for cpu in profile.cpu_keys():
        out.write("  {:<18} {:6.1%}\n".format(cpu, profile.share(cpu)))


def cmd_characterize(args, out):
    zones = [z.strip() for z in args.zone.split(",") if z.strip()]
    for zone_id in zones:
        zone_spec(zone_id)  # fail fast on unknown zones
    record = None
    observability = None
    if args.record:
        from repro.obs.manifest import RunManifest
        observability = Observability()
        record = RunManifest.begin(
            args.record, "characterize", seed=args.seed,
            config={"zones": args.zone, "polls": args.polls,
                    "workers": args.workers})
    if len(zones) == 1:
        if provider_name_of_zone(zones[0]) in CORE_PROVIDERS:
            cloud = build_sky(seed=args.seed)
        else:
            # Scenario-pack zones are opt-in: build just their region.
            from repro.engine import CloudSpec
            cloud = CloudSpec.for_zones(zones, seed=args.seed).build()
        if observability is not None:
            observability.install(cloud)
        region = cloud.region_of_zone(zones[0])
        account = cloud.create_account("cli", region.provider.name)
        mesh = SkyMesh(cloud)
        count = max(args.polls, 1) if args.polls else 100
        endpoints = mesh.deploy_sampling_endpoints(
            account, zones[0], count=count,
            memory_base_mb=min(2048, region.provider.memory_options_mb[-1]
                               - count))
        campaign = SamplingCampaign(
            cloud, endpoints,
            n_requests=min(1000, region.provider.concurrency_quota),
            max_polls=args.polls if args.polls else None)
        result = campaign.run()
        _write_campaign_block(out, zones[0], result)
        if args.json_path:
            reporting.write_json(args.json_path,
                                 reporting.campaign_to_dict(result))
            out.write("wrote {}\n".format(args.json_path))
        if record is not None:
            record.finalize(obs=observability,
                            summary={"zones": 1,
                                     "polls_run": result.polls_run})
            out.write("recorded {}\n".format(record.directory))
        return 0
    # Multi-zone: one independent campaign cell per zone, fanned out over
    # the parallel engine.  Each cell's cloud seed is spawn-keyed from
    # --seed and the zone id, so the output is byte-identical at any
    # --workers setting.
    from repro.engine import CampaignTask, CloudSpec, Grid, SweepEngine
    grid = Grid([("zone", zones)], root_seed=args.seed,
                namespace="characterize")
    count = max(args.polls, 1) if args.polls else 100
    tasks = []
    for cell in grid.cells():
        zone_id = dict(cell.key)["zone"]
        tasks.append(CampaignTask(
            CloudSpec.for_zones([zone_id], seed=cell.seed), zone_id,
            endpoints=count,
            max_polls=args.polls if args.polls else None))
    results = SweepEngine(workers=args.workers,
                          obs=observability).run(tasks)
    for zone_id, result in zip(zones, results):
        _write_campaign_block(out, zone_id, result)
    if args.json_path:
        reporting.write_json(args.json_path,
                             [reporting.campaign_to_dict(r)
                              for r in results])
        out.write("wrote {}\n".format(args.json_path))
    if record is not None:
        record.update(grid_hash=grid.content_hash())
        record.finalize(obs=observability,
                        summary={"zones": len(zones)})
        out.write("recorded {}\n".format(record.directory))
    return 0


def cmd_profile(args, out):
    cloud = build_sky(seed=args.seed, aws_only=True)
    account = cloud.create_account("cli", "aws")
    workload = workload_by_name(args.workload)
    deployment = cloud.deploy(
        account, args.zone, "dynamic", 2048,
        handler=UniversalDynamicFunctionHandler(resolve_runtime_model))
    runner = WorkloadRunner(cloud)
    profile = runner.profile_workload(deployment, workload,
                                      args.repetitions)
    normalized = profile.normalized_to("xeon-2.5") \
        if "xeon-2.5" in profile.cpu_keys() else None
    out.write("{} in {} ({} repetitions)\n".format(
        workload.name, args.zone, args.repetitions))
    out.write("{:<12} {:>8} {:>12} {:>12}\n".format(
        "cpu", "count", "mean (s)", "vs 2.5GHz"))
    for cpu in profile.cpu_keys():
        ratio = ("{:.3f}".format(normalized[cpu])
                 if normalized else "-")
        out.write("{:<12} {:>8} {:>12.3f} {:>12}\n".format(
            cpu, profile.count(cpu), profile.mean_runtime(cpu), ratio))
    return 0


def cmd_advise(args, out):
    from repro.core import CharacterizationStore
    from repro.core.memory_advisor import MemoryAdvisor
    cloud = build_sky(seed=args.seed, aws_only=True)
    account = cloud.create_account("cli", "aws")
    mesh = SkyMesh(cloud)
    endpoints = mesh.deploy_sampling_endpoints(account, args.zone,
                                               count=max(args.polls, 1))
    campaign = SamplingCampaign(cloud, endpoints, max_polls=args.polls)
    store = CharacterizationStore()
    store.put(campaign.run().ground_truth())
    workload = workload_by_name(args.workload)
    recommendation = MemoryAdvisor(cloud, store).recommend(workload,
                                                           args.zone)
    out.write("{} in {} (profile from {} polls)\n".format(
        workload.name, args.zone, args.polls))
    out.write("{:>9} {:>12} {:>14}\n".format("memory", "runtime (s)",
                                             "cost ($/inv)"))
    for row in recommendation.to_rows():
        out.write("{:>7}MB {:>12.3f} {:>14.8f}\n".format(
            row["memory_mb"], row["runtime_s"], row["cost_usd"]))
    out.write("cheapest: {}MB  fastest: {}MB  balanced: {}MB\n".format(
        recommendation.cheapest, recommendation.fastest,
        recommendation.balanced))
    out.write("recommended ({}): {}MB\n".format(
        args.objective, recommendation.pick(args.objective)))
    return 0


def _write_study_block(out, workload_name, args, result):
    out.write("{} over {} days, burst {} (baseline {})\n".format(
        workload_name, args.days, args.burst, args.baseline_zone))
    for name, summary in sorted(result.savings_summary().items()):
        out.write("  {:<22} cumulative {:6.1f}%  best day {:6.1f}%\n"
                  .format(name, summary["cumulative_pct"],
                          summary["max_daily_pct"]))
    out.write("sampling spend: {}\n".format(result.sampling_cost))


def cmd_study(args, out):
    zones = [z.strip() for z in args.zones.split(",") if z.strip()]
    workloads = [w.strip() for w in args.workload.split(",") if w.strip()]
    for name in workloads:
        workload_by_name(name)  # fail fast on unknown workloads
    if len(workloads) == 1:
        cloud = build_sky(seed=args.seed, aws_only=True)
        study = RoutingStudy.from_names(
            cloud, workloads[0], zones, sampling_count=10,
            account_id="cli", days=args.days, burst_size=args.burst,
            polls_per_day=6)
        results = [study.run([
            BaselinePolicy(args.baseline_zone),
            RetryRoutingPolicy(args.baseline_zone, "retry_slow"),
            RetryRoutingPolicy(args.baseline_zone, "focus_fastest"),
            HybridPolicy("focus_fastest"),
        ])]
    else:
        # Multi-workload: one independent study per workload, fanned out
        # over the parallel engine with spawn-keyed cell seeds.
        from repro.engine import CloudSpec, Grid, StudyTask, SweepEngine
        grid = Grid([("workload", workloads)], root_seed=args.seed,
                    namespace="study")
        tasks = [StudyTask(
            CloudSpec.for_zones(zones, seed=cell.seed),
            dict(cell.key)["workload"], zones,
            baseline_zone=args.baseline_zone, days=args.days,
            burst_size=args.burst, polls_per_day=6)
            for cell in grid.cells()]
        results = SweepEngine(workers=args.workers).run(tasks)
    for workload_name, result in zip(workloads, results):
        _write_study_block(out, workload_name, args, result)
    if args.json_path:
        payload = reporting.study_result_to_dict(results[0]) \
            if len(results) == 1 else \
            [reporting.study_result_to_dict(r) for r in results]
        reporting.write_json(args.json_path, payload)
        out.write("wrote {}\n".format(args.json_path))
    if args.csv_path:
        rows = []
        for result in results:
            rows.extend(reporting.study_to_rows(result))
        reporting.write_csv(args.csv_path, rows)
        out.write("wrote {}\n".format(args.csv_path))
    return 0


def _obs_controller(args):
    """Build the routed-burst fixture the obs modes share."""
    zones = [z.strip() for z in args.zones.split(",") if z.strip()]
    cloud = build_sky(seed=args.seed, aws_only=True)
    account = cloud.create_account("cli", "aws")
    observability = Observability()
    controller = SkyController(
        cloud, account, zones, polls_per_refresh=args.polls,
        poll_requests=args.poll_requests,
        sampling_count=max(args.polls, 2), obs=observability)
    workload = workload_by_name(args.workload)
    return observability, controller, workload, zones


def _obs_record(args, observability, kind, summary=None):
    """Begin + finalize a flight-recorder directory for a finished run."""
    from repro.obs.manifest import RunManifest
    record = RunManifest.begin(
        args.record, kind, seed=args.seed,
        config={"workload": args.workload, "zones": args.zones,
                "requests": args.requests})
    record.finalize(obs=observability, summary=summary)
    return record


def cmd_obs(args, out):
    if args.mode == "serve":
        return _obs_serve(args, out)
    if args.mode == "tail":
        return _obs_tail(args, out)
    return _obs_demo(args, out)


def _obs_serve(args, out):
    """Run routed bursts while serving live /metrics, /healthz, /runs."""
    import time as time_module

    from repro.obs.serve import ObsServer
    observability, controller, workload, _ = _obs_controller(args)
    with ObsServer(observability, port=args.port) as server:
        out.write("obs: serving {} (/metrics /healthz /runs)\n".format(
            server.url("/")))
        for round_index in range(max(args.rounds, 1)):
            for _ in range(args.requests):
                controller.submit(workload)
            out.write("round {}/{}: {} events, {} metrics, {} traces\n"
                      .format(round_index + 1, max(args.rounds, 1),
                              len(observability.recorder),
                              len(observability.registry),
                              len(observability.tracer)))
            if round_index + 1 < args.rounds and args.interval > 0:
                time_module.sleep(args.interval)
        if args.record:
            record = _obs_record(
                args, observability, "obs-serve",
                summary={"rounds": max(args.rounds, 1),
                         "requests_per_round": args.requests})
            out.write("recorded {}\n".format(record.directory))
    return 0


def _obs_tail(args, out):
    """Scrape a live /metrics endpoint and render sweep progress."""
    import time as time_module

    from repro.obs.export import parse_prometheus_text
    from repro.obs.serve import render_tail, scrape
    if not args.connect:
        out.write("obs tail: --connect HOST:PORT (or a /metrics URL) is "
                  "required\n")
        return 2
    url = args.connect
    if "://" not in url:
        url = "http://" + url
    if not url.rstrip("/").endswith("/metrics"):
        url = url.rstrip("/") + "/metrics"
    for round_index in range(max(args.rounds, 1)):
        try:
            body = scrape(url)
        except OSError as error:
            out.write("obs tail: scrape of {} failed: {}\n".format(
                url, error))
            return 1
        out.write(render_tail(parse_prometheus_text(body)) + "\n")
        if round_index + 1 < args.rounds and args.interval > 0:
            time_module.sleep(args.interval)
    return 0


def _obs_demo(args, out):
    from repro.obs import export as obs_export
    from repro.obs.trace import format_trace
    observability, controller, workload, zones = _obs_controller(args)
    for _ in range(args.requests):
        controller.submit(workload)

    telemetry = controller.telemetry
    out.write("routed {} x {} over {} zones (policy {})\n".format(
        args.requests, workload.name, len(zones), controller.policy.name))
    out.write("\nper-zone latency/cost:\n")
    header = "{:<14} {:>8} {:>8} {:>12} {:>9} {:>9} {:>9} {:>9}\n"
    row = "{:<14} {:>8} {:>8} {:>12.6f} {:>9.3f} {:>9.3f} {:>9.3f} {:>9.3f}\n"
    out.write(header.format("zone", "requests", "retries", "cost ($)",
                            "mean (s)", "p50 (s)", "p95 (s)", "p99 (s)"))
    for zone, stats in sorted(telemetry.by_zone().items()):
        out.write(row.format(zone, stats["requests"], stats["retries"],
                             stats["cost_usd"], stats["mean_latency_s"],
                             stats["p50_latency_s"], stats["p95_latency_s"],
                             stats["p99_latency_s"]))
    out.write("\nper-cpu latency/cost:\n")
    out.write(header.format("cpu", "requests", "retries", "cost ($)",
                            "mean (s)", "p50 (s)", "p95 (s)", "p99 (s)"))
    for cpu, stats in sorted(telemetry.by_cpu().items()):
        out.write(row.format(cpu, stats["requests"], stats["retries"],
                             stats["cost_usd"], stats["mean_latency_s"],
                             stats["p50_latency_s"], stats["p95_latency_s"],
                             stats["p99_latency_s"]))

    recorder = observability.recorder
    out.write("\ncloudsim events:\n")
    out.write("  placements: {}  saturation: {}  scale-ups: {}\n".format(
        recorder.count("az.placement"), recorder.count("az.saturation"),
        recorder.count("az.scale")))
    out.write("  slot churn: {} allocations, {} reuses, {} expiries\n"
              .format(recorder.count("host.allocate"),
                      recorder.count("host.reuse"),
                      recorder.count("host.expire")))
    out.write("  sampling polls: {}  profile refreshes: {}\n".format(
        recorder.count("sampling.poll"),
        recorder.count("controller.refresh")))
    out.write("  invocations: {}  retries: {}  holds: {}\n".format(
        recorder.count("cloud.invoke"), recorder.count("retry.attempt"),
        recorder.count("retry.hold")))
    out.write("sampling spend: {}\n".format(controller.sampling_cost))

    trace = observability.tracer.last_trace()
    if trace is not None:
        out.write("\nlast request trace:\n")
        out.write(format_trace(trace) + "\n")

    if args.prom_path:
        with open(args.prom_path, "w") as handle:
            handle.write(obs_export.prometheus_text(observability.registry))
        out.write("wrote {}\n".format(args.prom_path))
    if args.jsonl_path:
        obs_export.write_events_jsonl(args.jsonl_path, recorder.events())
        out.write("wrote {}\n".format(args.jsonl_path))
    if args.csv_path:
        reporting.write_csv(args.csv_path,
                            obs_export.metrics_to_rows(
                                observability.registry))
        out.write("wrote {}\n".format(args.csv_path))
    if args.record:
        record = _obs_record(args, observability, "obs-demo",
                             summary={"requests": args.requests})
        out.write("recorded {}\n".format(record.directory))
    return 0


def cmd_serve(args, out):
    import signal

    from repro.sampling.characterization import CharacterizationBuilder
    from repro.serve import GatewayConfig, ServeGateway, build_arrivals

    zones = [z.strip() for z in args.zones.split(",") if z.strip()]
    for zone_id in zones:
        zone_spec(zone_id)  # fail fast on unknown zones
    providers = {provider_name_of_zone(z) for z in zones}
    if len(providers) != 1:
        out.write("serve: all zones must share one provider "
                  "(got {})\n".format(", ".join(sorted(providers))))
        return 2
    (provider_name,) = providers
    workload = workload_by_name(args.workload)
    if provider_name == "aws":
        cloud = build_sky(seed=args.seed, aws_only=True)
    else:
        # Non-AWS (including scenario packs): build just the zones'
        # regions; pack regions never join the default sky.
        from repro.engine import CloudSpec
        cloud = CloudSpec.for_zones(zones, seed=args.seed).build()
    observability = Observability()
    account = cloud.create_account("serve", provider_name)
    controller = SkyController(
        cloud, account, zones, obs=observability,
        polls_per_refresh=max(args.polls, 1),
        sampling_count=max(args.polls, 2))
    if args.characterize:
        controller.refresh_due_zones(force=True)
    else:
        # Bootstrap characterizations from catalog capacity so serving
        # starts immediately; the live re-characterization loop replaces
        # these with sampled profiles as staleness/error signals fire.
        for zone_id in zones:
            builder = CharacterizationBuilder(zone_id)
            builder.add_poll(
                {key: pool.capacity
                 for key, pool in cloud.zone(zone_id).pools.items()
                 if pool.capacity > 0})
            controller.store.put(builder.snapshot())
    arrivals = build_arrivals(args.profile, args.rps, seed=args.seed,
                              peak_rps=args.peak_rps,
                              period_s=args.period)
    config = GatewayConfig(
        batch_size=args.batch_size,
        flush_deadline_s=args.flush_ms / 1000.0,
        batch_floor=args.batch_floor,
        rate_limit_rps=args.rate_limit,
        burst=args.burst,
        max_queue_depth=args.max_queue,
        slo_s=args.slo_ms / 1000.0 if args.slo_ms else None,
        report_every_s=args.report_every,
        wall_pace=args.pace)
    gateway = ServeGateway(controller, workload, arrivals, config,
                           obs=observability)

    # SIGTERM/SIGINT = graceful drain: buffered batches flush, the report
    # and manifest finalize, exit 0 — the sweep-worker lifecycle contract
    # applied to the serving plane.
    def _drain_handler(signum, frame):
        gateway.request_drain()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, _drain_handler)
        except (ValueError, OSError):
            pass  # not the main thread; drain stays manual

    record = None
    if args.record:
        from repro.obs.manifest import RunManifest
        record = RunManifest.begin(
            args.record, "serve", seed=args.seed,
            config={"workload": args.workload, "zones": args.zones,
                    "profile": args.profile, "rps": args.rps,
                    "duration": args.duration,
                    "batch_size": args.batch_size})
    server = None
    if args.serve_port is not None:
        from repro.obs.serve import ObsServer
        server = ObsServer(observability, port=args.serve_port).start()
        out.write("serve: metrics on {} (/metrics /healthz /runs)\n"
                  .format(server.url("/")))
        out.flush()
    out.write("serve: {} on {} ({} arrivals at {:g} rps, {} sim-s)\n"
              .format(workload.name, ",".join(zones), args.profile,
                      args.rps, args.duration))
    out.flush()
    try:
        report = gateway.run_sync(args.duration)
    except BaseException:
        if record is not None:
            record.finalize(obs=observability, status="failed")
        raise
    finally:
        if server is not None:
            server.close()

    summary = report.to_dict()
    out.write("served {} of {} offered ({} shed, {} failed) over "
              "{:.1f} sim-s\n".format(
                  report.served, report.offered, report.shed,
                  report.failed, report.sim_seconds))
    out.write("goodput {:.1f} rps, shed rate {:.2%}, SLO attainment "
              "{:.2%} (SLO {:.0f} ms)\n".format(
                  report.goodput_rps, report.shed_rate,
                  report.slo_attainment, report.slo_s * 1000.0))
    out.write("latency p50 {:.1f} ms  p95 {:.1f} ms  p99 {:.1f} ms\n"
              .format(summary["p50_ms"], summary["p95_ms"],
                      summary["p99_ms"]))
    out.write("batches: {} coalesced, {} scalar; {} re-characterizations; "
              "drained {}\n".format(
                  report.batches_coalesced, report.batches_scalar,
                  report.recharacterizations, report.drained))
    out.write("serving cost: ${:.6f}\n".format(report.cost_usd))
    if args.json_path:
        reporting.write_json(args.json_path, summary)
        out.write("wrote {}\n".format(args.json_path))
    if record is not None:
        record.finalize(obs=observability, summary=summary)
        out.write("recorded {}\n".format(record.directory))
    return 0


def cmd_chaos(args, out):
    import json as json_module

    from repro.faults.harness import ChaosExperiment
    from repro.obs import export as obs_export

    zones = [z.strip() for z in args.zones.split(",") if z.strip()]
    experiment = ChaosExperiment(zones=zones, workload=args.workload,
                                 seed=args.seed, requests=args.requests,
                                 interval_s=args.interval)
    resilient, naive = experiment.run_preset(
        args.preset, start=args.fault_start,
        duration=args.fault_duration)

    out.write("chaos preset {!r} on {} ({} requests @ {}s)\n".format(
        args.preset, ",".join(zones), args.requests, args.interval))
    out.write("faults injected: {}\n".format(
        sum(resilient.fault_counts.values())))
    row = "{:<12} {:>13} {:>9} {:>9} {:>8} {:>8} {:>7} {:>10}\n"
    out.write(row.format("run", "availability", "p50 (s)", "p99 (s)",
                         "retries", "hedges", "f/overs", "backoff"))
    for report in (resilient, naive):
        out.write(row.format(
            report.label,
            "{:.2%}".format(report.availability),
            "{:.3f}".format(report.latency_percentile(0.50)),
            "{:.3f}".format(report.latency_percentile(0.99)),
            report.retries, report.hedges, report.failovers,
            "{:.2f}s".format(report.backoff_s)))

    if resilient.breaker_transitions:
        out.write("\nbreaker transitions:\n")
        for zone, when, old, new in resilient.breaker_transitions:
            out.write("  t={:>7.1f}s  {:<14} {} -> {}\n".format(
                when, zone, old, new))

    if args.json_path:
        reporting.write_json(args.json_path,
                             {"preset": args.preset,
                              "resilient": resilient.to_dict(),
                              "naive": naive.to_dict()})
        out.write("wrote {}\n".format(args.json_path))
    if args.prom_path:
        with open(args.prom_path, "w") as handle:
            handle.write(obs_export.prometheus_text(
                resilient.obs.registry))
        out.write("wrote {}\n".format(args.prom_path))
    if args.jsonl_path:
        obs_export.write_events_jsonl(args.jsonl_path,
                                      resilient.obs.recorder.events())
        out.write("wrote {}\n".format(args.jsonl_path))
    if args.record:
        from repro.obs.manifest import RunManifest
        record = RunManifest.begin(
            args.record, "chaos-" + args.preset, seed=args.seed,
            config={"zones": args.zones, "workload": args.workload,
                    "requests": args.requests})
        record.finalize(
            obs=resilient.obs,
            summary={"availability": resilient.availability,
                     "faults": sum(resilient.fault_counts.values())})
        out.write("recorded {}\n".format(record.directory))

    if args.assert_availability is not None:
        floor = args.assert_availability
        if resilient.availability < floor:
            out.write("FAIL: resilient availability {:.2%} below the "
                      "{:.2%} floor\n".format(resilient.availability,
                                              floor))
            return 1
        out.write("OK: resilient availability {:.2%} >= {:.2%} floor "
                  "(naive: {:.2%})\n".format(resilient.availability, floor,
                                             naive.availability))
    return 0


def _sweep_engine(args):
    """Build the engine (and optional stderr progress) for a sweep.

    An observability facade is attached whenever anything will consume
    it — progress printing, telemetry merging, the live endpoint, or
    the flight recorder.
    """
    from repro.engine import SweepEngine, SweepProgress
    obs = None
    telemetry = getattr(args, "telemetry", False)
    if (args.progress or telemetry or getattr(args, "record", None)
            or getattr(args, "serve", None) is not None):
        observability = Observability()
        on_cell = None
        if args.progress:
            def on_cell(done, total):
                sys.stderr.write("sweep: cell {}/{} done\n".format(done,
                                                                   total))

        SweepProgress(observability.bus, on_cell=on_cell)
        obs = observability
    remote_workers = None
    if args.backend == "remote":
        # Default to spawning --workers loopback processes; 0 means
        # "serve whoever connects" (external sweep-worker peers).
        remote_workers = (args.workers if args.remote_workers is None
                          else args.remote_workers)
    return SweepEngine(workers=args.workers, chunk_size=args.chunk,
                       obs=obs, backend=args.backend, bind=args.bind,
                       remote_workers=remote_workers,
                       join_timeout_s=args.join_timeout,
                       telemetry=telemetry,
                       auth_token=_sweep_token(args),
                       journal=getattr(args, "record", None),
                       resume=getattr(args, "resume", None),
                       worker_log_dir=getattr(args, "worker_log_dir",
                                              None),
                       lazy=getattr(args, "lazy", False))


def _sweep_token(args):
    """The shared sweep secret: --auth-token, else $REPRO_SWEEP_TOKEN."""
    from repro.engine.remote import TOKEN_ENV
    return (getattr(args, "auth_token", None)
            or os.environ.get(TOKEN_ENV) or None)


def cmd_sweep_worker(args, out):
    import signal
    import threading

    from repro.common.errors import TransportError
    from repro.engine.protocol import parse_address
    from repro.engine.remote import SweepWorker
    host, port = parse_address(args.connect)
    worker = SweepWorker(host, port, worker_id=args.worker_id,
                         heartbeat_s=args.heartbeat,
                         max_reconnects=args.max_reconnects,
                         token=_sweep_token(args), spool=args.spool)
    # SIGTERM = graceful drain: finish the chunk in hand, send a leave
    # frame, exit 0.  Elastic fleets (autoscalers, spot reclaims with
    # notice) shrink without burning the coordinator's requeue budget.
    drain = threading.Event()
    try:
        signal.signal(signal.SIGTERM,
                      lambda signum, frame: drain.set())
    except (ValueError, OSError):
        pass  # not the main thread; drain stays manual
    try:
        chunks = worker.run(drain=drain)
    except TransportError as error:
        out.write("sweep-worker: {}\n".format(error))
        return 1
    if drain.is_set():
        out.write("sweep-worker: drained ({} chunk(s) "
                  "served)\n".format(chunks))
    else:
        out.write("sweep-worker: done ({} chunk(s) "
                  "served)\n".format(chunks))
    return 0


def cmd_sweep(args, out):
    if args.resume and not args.record:
        # Resuming a recorded run continues recording into the same
        # directory (fresh manifest attempt, same chunk journal).
        args.record = args.resume
    engine = _sweep_engine(args)
    record = None
    server = None
    if args.record:
        from repro.obs.manifest import RunManifest
        record = RunManifest.begin(
            args.record, "sweep-" + args.kind, seed=args.seed,
            config={"zones": args.zones, "seeds": args.seeds,
                    "workers": args.workers, "backend": args.backend})
        # Ctrl-C / SIGTERM stamp the manifest "interrupted" (a SIGKILL
        # leaves "running"); either way the chunk journal makes the run
        # resumable with --resume.
        record.install_guard()
    if args.serve is not None:
        from repro.obs.serve import ObsServer
        server = ObsServer(engine.obs, port=args.serve).start()
        out.write("obs: serving {} (/metrics /healthz /runs)\n".format(
            server.url("/")))
    try:
        grid, json_cells = _run_sweep(args, out, engine)
    except BaseException:
        if record is not None:
            record.finalize(obs=engine.obs, status="failed")
        raise
    finally:
        if server is not None:
            server.close()
    if record is not None:
        record.update(grid_hash=grid.content_hash())
        record.finalize(obs=engine.obs,
                        summary={"kind": args.kind,
                                 "cells": len(json_cells)})
        out.write("recorded {}\n".format(record.directory))
    return 0


def _lazy_decode(args, results):
    """With ``--lazy``, decode sweep results one cell at a time.

    The engine returned :class:`~repro.engine.lazy.LazyPayload`
    envelopes; reporting consumes them through a generator so only one
    materialized result is alive at any moment.
    """
    if not getattr(args, "lazy", False):
        return results
    from repro.engine import load_payload
    return (load_payload(result) for result in results)


def _run_sweep(args, out, engine):
    """Dispatch one sweep kind; returns ``(grid, json_cells)``."""
    from repro.engine import (
        CampaignTask,
        CloudSpec,
        Grid,
        ProgressiveTask,
        StudyTask,
        TemporalTask,
    )
    zones = [z.strip() for z in args.zones.split(",") if z.strip()]
    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    max_polls = args.polls if args.polls else None

    if args.kind in ("campaign", "progressive"):
        for zone_id in zones:
            zone_spec(zone_id)  # fail fast on unknown zones
        task_type = (CampaignTask if args.kind == "campaign"
                     else ProgressiveTask)
        grid = Grid([("zone", zones), ("seed", seeds)],
                    root_seed=args.seed, namespace="sweep-" + args.kind)
        tasks = []
        for cell in grid.cells():
            key = dict(cell.key)
            tasks.append(task_type(
                CloudSpec.for_zones([key["zone"]], seed=cell.seed),
                key["zone"], endpoints=args.endpoints,
                n_requests=args.requests, max_polls=max_polls))
        results = engine.run(tasks, grid_hash=grid.content_hash())
        results = _lazy_decode(args, results)
        out.write("{} sweep: {} cells ({} zones x {} seeds)\n".format(
            args.kind, len(grid), len(zones), len(seeds)))
        json_cells = []
        if args.kind == "campaign":
            out.write("{:<16} {:>6} {:>6} {:>6} {:>9} {:>10} {:>12}  "
                      "{}\n".format("zone", "seed", "polls", "FIs",
                                    "requests", "saturated", "cost ($)",
                                    "dominant cpu"))
            for cell, result in zip(grid.cells(), results):
                key = dict(cell.key)
                out.write("{:<16} {:>6} {:>6} {:>6} {:>9} {:>10} "
                          "{:>12.6f}  {}\n".format(
                              key["zone"], key["seed"], result.polls_run,
                              result.total_fis, result.total_requests,
                              "yes" if result.saturated else "no",
                              float(result.total_cost),
                              result.ground_truth().dominant_cpu()))
                cell_dict = {"zone": key["zone"], "seed": key["seed"],
                             "cell_seed": cell.seed}
                cell_dict.update(reporting.campaign_to_dict(result))
                json_cells.append(cell_dict)
        else:
            budgets = [int(b) for b in args.budgets.split(",")
                       if b.strip()]
            header = "{:<16} {:>6} {:>6}".format("zone", "seed", "polls")
            header += "".join(" {:>9}".format("ape@{}".format(b))
                              for b in budgets)
            out.write(header + " {:>9}\n".format("to-95%"))
            for cell, analysis in zip(grid.cells(), results):
                key = dict(cell.key)
                campaign = analysis.campaign
                row = "{:<16} {:>6} {:>6}".format(key["zone"], key["seed"],
                                                  campaign.polls_run)
                for budget in budgets:
                    try:
                        ape = analysis.ape_after(
                            min(budget, campaign.polls_run))
                        row += " {:>9.3f}".format(ape)
                    except CharacterizationError:
                        row += " {:>9}".format("-")
                polls_to = analysis.polls_to_accuracy(95.0)
                row += " {:>9}\n".format(polls_to if polls_to is not None
                                         else "-")
                out.write(row)
                json_cells.append({
                    "zone": key["zone"], "seed": key["seed"],
                    "cell_seed": cell.seed,
                    "ape_curve": [[polls, fis, round(ape, 6)]
                                  for polls, fis, ape
                                  in analysis.ape_curve()],
                    "polls_to_95": polls_to,
                    "campaign": reporting.campaign_to_dict(campaign),
                })
    elif args.kind == "temporal":
        for zone_id in zones:
            zone_spec(zone_id)  # fail fast on unknown zones
        grid = Grid([("zone", zones), ("seed", seeds)],
                    root_seed=args.seed, namespace="sweep-temporal")
        tasks = []
        for cell in grid.cells():
            key = dict(cell.key)
            tasks.append(TemporalTask(
                CloudSpec.for_zones([key["zone"]], seed=cell.seed),
                key["zone"], mode=args.temporal_mode,
                periods=args.periods,
                polls_per_period=max(args.polls, 1),
                endpoints=args.endpoints, n_requests=args.requests))
        results = engine.run(tasks, grid_hash=grid.content_hash())
        results = _lazy_decode(args, results)
        out.write("temporal sweep ({}): {} cells ({} zones x {} seeds), "
                  "{} periods\n".format(args.temporal_mode, len(grid),
                                        len(zones), len(seeds),
                                        args.periods))
        json_cells = []
        for cell, series in zip(grid.cells(), results):
            key = dict(cell.key)
            out.write("[{} seed={}]\n".format(key["zone"], key["seed"]))
            if args.temporal_mode == "daily":
                out.write("  {:>4} {:>6} {:>6} {:>10} {:>12}  {}\n"
                          .format("day", "polls", "FIs", "saturated",
                                  "cost ($)", "dominant cpu"))
                for day, result in enumerate(series, start=1):
                    out.write("  {:>4} {:>6} {:>6} {:>10} {:>12.6f}  "
                              "{}\n".format(
                                  day, result.polls_run,
                                  result.total_fis,
                                  "yes" if result.saturated else "no",
                                  float(result.total_cost),
                                  result.ground_truth().dominant_cpu()))
                payload = [reporting.campaign_to_dict(r) for r in series]
            else:
                out.write("  {:>4} {:>8} {:>6}  {}\n".format(
                    "hour", "samples", "polls", "dominant cpu"))
                for hour, profile in enumerate(series):
                    out.write("  {:>4} {:>8} {:>6}  {}\n".format(
                        hour, profile.samples, profile.polls,
                        profile.dominant_cpu()))
                payload = [reporting.characterization_to_dict(p)
                           for p in series]
            json_cells.append({"zone": key["zone"], "seed": key["seed"],
                               "cell_seed": cell.seed,
                               "mode": args.temporal_mode,
                               "series": payload})
    else:  # study
        workloads = [w.strip() for w in args.workloads.split(",")
                     if w.strip()]
        for name in workloads:
            workload_by_name(name)  # fail fast on unknown workloads
        baseline_zone = args.baseline_zone or zones[0]
        grid = Grid([("workload", workloads), ("seed", seeds)],
                    root_seed=args.seed, namespace="sweep-study")
        tasks = [StudyTask(
            CloudSpec.for_zones(zones, seed=cell.seed),
            dict(cell.key)["workload"], zones,
            baseline_zone=baseline_zone, days=args.days,
            burst_size=args.burst)
            for cell in grid.cells()]
        results = engine.run(tasks, grid_hash=grid.content_hash())
        results = _lazy_decode(args, results)
        out.write("study sweep: {} cells ({} workloads x {} seeds), "
                  "{} days, burst {}\n".format(
                      len(grid), len(workloads), len(seeds), args.days,
                      args.burst))
        json_cells = []
        for cell, result in zip(grid.cells(), results):
            key = dict(cell.key)
            out.write("[{} seed={}]\n".format(key["workload"],
                                              key["seed"]))
            for name, summary in sorted(result.savings_summary().items()):
                out.write("  {:<22} cumulative {:6.1f}%  best day "
                          "{:6.1f}%\n".format(name,
                                              summary["cumulative_pct"],
                                              summary["max_daily_pct"]))
            out.write("  sampling spend: {}\n".format(
                result.sampling_cost))
            cell_dict = {"workload": key["workload"], "seed": key["seed"],
                         "cell_seed": cell.seed}
            cell_dict.update(reporting.study_result_to_dict(result))
            json_cells.append(cell_dict)

    if args.json_path:
        reporting.write_json(args.json_path, {
            "kind": args.kind,
            "root_seed": args.seed,
            "cells": json_cells,
        })
        out.write("wrote {}\n".format(args.json_path))
    return grid, json_cells


_COMMANDS = {
    "catalog": cmd_catalog,
    "workloads": cmd_workloads,
    "characterize": cmd_characterize,
    "profile": cmd_profile,
    "advise": cmd_advise,
    "study": cmd_study,
    "sweep": cmd_sweep,
    "sweep-worker": cmd_sweep_worker,
    "obs": cmd_obs,
    "serve": cmd_serve,
    "chaos": cmd_chaos,
}


def main(argv=None, out=None):
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out)


if __name__ == "__main__":
    sys.exit(main())
