"""Command-line interface to the serverless sky toolkit.

Subcommands mirror the library's main flows::

    python -m repro catalog [--provider aws]
    python -m repro workloads
    python -m repro characterize us-west-1b [--polls 6] [--json out.json]
    python -m repro profile zipper --zone us-west-1b [--repetitions 2000]
    python -m repro study zipper --zones us-west-1a,us-west-1b,sa-east-1a \
        --days 7 [--json out.json]

Everything runs against the simulated sky; ``--seed`` makes runs
reproducible.
"""

import argparse
import sys

from repro import (
    BaselinePolicy,
    CharacterizationStore,
    HybridPolicy,
    RetryRoutingPolicy,
    RoutingStudy,
    SamplingCampaign,
    SkyMesh,
    UniversalDynamicFunctionHandler,
    WorkloadRunner,
    build_sky,
    workload_by_name,
)
from repro import reporting
from repro.cloudsim.catalog import catalog_region_names, zone_spec
from repro.workloads import all_workloads, resolve_runtime_model


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Serverless sky computing: characterize zones and "
                    "route workloads on a simulated multi-cloud sky.")
    parser.add_argument("--seed", type=int, default=42,
                        help="simulation seed (default 42)")
    commands = parser.add_subparsers(dest="command", required=True)

    catalog = commands.add_parser("catalog",
                                  help="list the 41-region catalog")
    catalog.add_argument("--provider", choices=("aws", "ibm", "do"))

    workloads = commands.add_parser(
        "workloads", help="list (or actually execute) the 12 Table-1 "
                          "workloads")
    workloads.add_argument("--run", action="store_true",
                           help="execute each workload for real and time "
                                "it")
    workloads.add_argument("--scale", type=float, default=0.1)
    workloads.add_argument("--repetitions", type=int, default=2)

    characterize = commands.add_parser(
        "characterize", help="sample a zone's CPU distribution")
    characterize.add_argument("zone")
    characterize.add_argument("--polls", type=int, default=6,
                              help="polls to run (default 6; 0 = until "
                                   "saturation)")
    characterize.add_argument("--json", dest="json_path")

    profile = commands.add_parser(
        "profile", help="per-CPU runtime profile of a workload in a zone")
    profile.add_argument("workload")
    profile.add_argument("--zone", default="us-west-1b")
    profile.add_argument("--repetitions", type=int, default=2000)

    advise = commands.add_parser(
        "advise", help="recommend a memory setting for a workload in a "
                       "zone")
    advise.add_argument("workload")
    advise.add_argument("--zone", default="us-west-1b")
    advise.add_argument("--polls", type=int, default=6)
    advise.add_argument("--objective", default="balanced",
                        choices=("cheapest", "fastest", "balanced"))

    study = commands.add_parser(
        "study", help="multi-day routing study (baseline vs. retry vs. "
                      "hybrid)")
    study.add_argument("workload")
    study.add_argument("--zones",
                       default="us-west-1a,us-west-1b,sa-east-1a")
    study.add_argument("--baseline-zone", default="us-west-1b")
    study.add_argument("--days", type=int, default=7)
    study.add_argument("--burst", type=int, default=1000)
    study.add_argument("--json", dest="json_path")
    study.add_argument("--csv", dest="csv_path")
    return parser


def cmd_catalog(args, out):
    for name in catalog_region_names(args.provider):
        # Region provider is implied by which spec table holds it.
        out.write("{}\n".format(name))
    return 0


def cmd_workloads(args, out):
    if getattr(args, "run", False):
        from repro.workloads.suite import WorkloadSuite
        suite = WorkloadSuite(scale=args.scale,
                              repetitions=args.repetitions,
                              seed=args.seed)
        report = suite.run()
        out.write("{:<24} {:>5} {:>6} {:>12} {:>12}\n".format(
            "name", "vCPUs", "runs", "mean (s)", "stdev (s)"))
        for row in report.rows:
            out.write("{:<24} {:>5} {:>6} {:>12.4f} {:>12.4f}\n".format(
                row.name, row.vcpus, row.runs, row.mean_seconds,
                row.stdev_seconds))
        out.write("total wall time: {:.2f}s at scale {}\n".format(
            report.total_seconds(), report.scale))
        return 0
    out.write("{:<24} {:>5}  {}\n".format("name", "vCPUs", "description"))
    for workload in all_workloads():
        out.write("{:<24} {:>5}  {}\n".format(
            workload.name, workload.vcpus, workload.description))
    return 0


def cmd_characterize(args, out):
    cloud = build_sky(seed=args.seed)
    spec = zone_spec(args.zone)  # fail fast on unknown zones
    region = cloud.region_of_zone(args.zone)
    account = cloud.create_account("cli", region.provider.name)
    mesh = SkyMesh(cloud)
    count = max(args.polls, 1) if args.polls else 100
    endpoints = mesh.deploy_sampling_endpoints(
        account, args.zone, count=count,
        memory_base_mb=min(2048, region.provider.memory_options_mb[-1]
                           - count))
    campaign = SamplingCampaign(
        cloud, endpoints,
        n_requests=min(1000, region.provider.concurrency_quota),
        max_polls=args.polls if args.polls else None)
    result = campaign.run()
    profile = result.ground_truth()
    out.write("zone {} ({} drift class)\n".format(args.zone, spec.drift))
    out.write("observed {} FIs over {} polls, cost {}\n".format(
        result.total_fis, result.polls_run, result.total_cost))
    for cpu in profile.cpu_keys():
        out.write("  {:<18} {:6.1%}\n".format(cpu, profile.share(cpu)))
    if args.json_path:
        reporting.write_json(args.json_path,
                             reporting.campaign_to_dict(result))
        out.write("wrote {}\n".format(args.json_path))
    return 0


def cmd_profile(args, out):
    cloud = build_sky(seed=args.seed, aws_only=True)
    account = cloud.create_account("cli", "aws")
    workload = workload_by_name(args.workload)
    deployment = cloud.deploy(
        account, args.zone, "dynamic", 2048,
        handler=UniversalDynamicFunctionHandler(resolve_runtime_model))
    runner = WorkloadRunner(cloud)
    profile = runner.profile_workload(deployment, workload,
                                      args.repetitions)
    normalized = profile.normalized_to("xeon-2.5") \
        if "xeon-2.5" in profile.cpu_keys() else None
    out.write("{} in {} ({} repetitions)\n".format(
        workload.name, args.zone, args.repetitions))
    out.write("{:<12} {:>8} {:>12} {:>12}\n".format(
        "cpu", "count", "mean (s)", "vs 2.5GHz"))
    for cpu in profile.cpu_keys():
        ratio = ("{:.3f}".format(normalized[cpu])
                 if normalized else "-")
        out.write("{:<12} {:>8} {:>12.3f} {:>12}\n".format(
            cpu, profile.count(cpu), profile.mean_runtime(cpu), ratio))
    return 0


def cmd_advise(args, out):
    from repro.core import CharacterizationStore
    from repro.core.memory_advisor import MemoryAdvisor
    cloud = build_sky(seed=args.seed, aws_only=True)
    account = cloud.create_account("cli", "aws")
    mesh = SkyMesh(cloud)
    endpoints = mesh.deploy_sampling_endpoints(account, args.zone,
                                               count=max(args.polls, 1))
    campaign = SamplingCampaign(cloud, endpoints, max_polls=args.polls)
    store = CharacterizationStore()
    store.put(campaign.run().ground_truth())
    workload = workload_by_name(args.workload)
    recommendation = MemoryAdvisor(cloud, store).recommend(workload,
                                                           args.zone)
    out.write("{} in {} (profile from {} polls)\n".format(
        workload.name, args.zone, args.polls))
    out.write("{:>9} {:>12} {:>14}\n".format("memory", "runtime (s)",
                                             "cost ($/inv)"))
    for row in recommendation.to_rows():
        out.write("{:>7}MB {:>12.3f} {:>14.8f}\n".format(
            row["memory_mb"], row["runtime_s"], row["cost_usd"]))
    out.write("cheapest: {}MB  fastest: {}MB  balanced: {}MB\n".format(
        recommendation.cheapest, recommendation.fastest,
        recommendation.balanced))
    out.write("recommended ({}): {}MB\n".format(
        args.objective, recommendation.pick(args.objective)))
    return 0


def cmd_study(args, out):
    zones = [z.strip() for z in args.zones.split(",") if z.strip()]
    cloud = build_sky(seed=args.seed, aws_only=True)
    account = cloud.create_account("cli", "aws")
    mesh = SkyMesh(cloud)
    endpoints = {}
    for zone in zones:
        endpoints[zone] = mesh.deploy_sampling_endpoints(account, zone,
                                                         count=10)
        mesh.register(cloud.deploy(
            account, zone, "dynamic", 2048,
            handler=UniversalDynamicFunctionHandler(resolve_runtime_model)))
    study = RoutingStudy(cloud, mesh, CharacterizationStore(),
                         workload_by_name(args.workload), zones, endpoints,
                         days=args.days, burst_size=args.burst,
                         polls_per_day=6)
    result = study.run([
        BaselinePolicy(args.baseline_zone),
        RetryRoutingPolicy(args.baseline_zone, "retry_slow"),
        RetryRoutingPolicy(args.baseline_zone, "focus_fastest"),
        HybridPolicy("focus_fastest"),
    ])
    out.write("{} over {} days, burst {} (baseline {})\n".format(
        args.workload, args.days, args.burst, args.baseline_zone))
    for name, summary in sorted(result.savings_summary().items()):
        out.write("  {:<22} cumulative {:6.1f}%  best day {:6.1f}%\n"
                  .format(name, summary["cumulative_pct"],
                          summary["max_daily_pct"]))
    out.write("sampling spend: {}\n".format(result.sampling_cost))
    if args.json_path:
        reporting.write_json(args.json_path,
                             reporting.study_result_to_dict(result))
        out.write("wrote {}\n".format(args.json_path))
    if args.csv_path:
        reporting.write_csv(args.csv_path, reporting.study_to_rows(result))
        out.write("wrote {}\n".format(args.csv_path))
    return 0


_COMMANDS = {
    "catalog": cmd_catalog,
    "workloads": cmd_workloads,
    "characterize": cmd_characterize,
    "profile": cmd_profile,
    "advise": cmd_advise,
    "study": cmd_study,
}


def main(argv=None, out=None):
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out)


if __name__ == "__main__":
    sys.exit(main())
