"""Deterministic sweep execution: serial reference and process-pool fan-out.

The engine's contract is simple and strict: for any task list, the result
list returned by ``workers=N`` is **identical** to the ``workers=1``
serial reference, element for element.  Three properties make that hold:

1. tasks never share state — each builds its own cloud from a
   :class:`~repro.engine.spec.CloudSpec` whose seed was spawn-keyed from
   the cell identity, not from enumeration order;
2. workers return ``(index, result)`` pairs and the parent merges them
   back into task order, so completion order is irrelevant;
3. the only parallel machinery is the stdlib ``ProcessPoolExecutor`` —
   no shared RNGs, no shared clocks, no shared buses cross the boundary.

Small cells are batched into chunks (one pickle/IPC round-trip per chunk,
not per cell) and the engine degrades gracefully to the serial path when
the platform cannot give it a process pool.

Observability is parent-side only: per-cell ``sweep.cell`` events and the
worker-utilization gauge are emitted as results arrive, on wall-clock
timestamps (a sweep spans many independent sim clocks, so there is no
single sim time to stamp).
"""

import os
import time

from repro.common.errors import SweepError
from repro.engine.tasks import run_task


def _run_chunk(chunk):
    """Worker-side loop: run each (index, task) pair, never raise.

    Failures travel back as ``(error_type_name, message)`` payloads so one
    bad cell cannot poison its chunk-mates, and the parent can report every
    failing cell (deterministically, by index) instead of just the first.
    """
    out = []
    pid = os.getpid()
    for index, task in chunk:
        start = time.perf_counter()
        try:
            payload, ok = run_task(task), True
        except Exception as error:  # noqa: BLE001 — transported, re-raised
            payload, ok = (type(error).__name__, str(error)), False
        wall_ms = (time.perf_counter() - start) * 1000.0
        out.append((index, ok, payload, wall_ms, pid))
    return out


def _chunk(pairs, chunk_size):
    return [pairs[i:i + chunk_size]
            for i in range(0, len(pairs), chunk_size)]


class SweepEngine(object):
    """Fans a task list over a process pool; falls back to serial.

    ``workers=1`` (the default) is the in-process serial reference
    executor.  ``obs`` is an optional
    :class:`~repro.obs.Observability`; when given, the engine emits
    ``sweep.start`` / ``sweep.cell`` / ``sweep.fallback`` / ``sweep.done``
    events and maintains ``sweep_cells_inflight`` and
    ``sweep_worker_utilization`` gauges.
    """

    def __init__(self, workers=1, chunk_size=None, obs=None,
                 start_method=None):
        self.workers = max(1, int(workers))
        if chunk_size is not None and int(chunk_size) < 1:
            raise ValueError("chunk_size must be >= 1")
        self.chunk_size = int(chunk_size) if chunk_size else None
        self.obs = obs
        self.start_method = start_method
        #: How the last run actually executed: "serial", "pool", or
        #: "serial-fallback" (pool requested but unavailable).
        self.last_mode = None

    # -- observability helpers ------------------------------------------------
    def _emit(self, name, started, **fields):
        if self.obs is not None and self.obs.bus.enabled:
            self.obs.bus.emit(name, time.perf_counter() - started, **fields)

    def _gauge(self, name):
        if self.obs is None:
            return None
        return self.obs.registry.gauge(name)

    def _resolve_chunk_size(self, n_tasks, workers):
        if self.chunk_size is not None:
            return self.chunk_size
        # Small cells amortize IPC; ~4 chunks per worker keeps the tail
        # short without a pickle round-trip per cell.
        return max(1, -(-n_tasks // (workers * 4)))

    # -- execution ------------------------------------------------------------
    def run(self, tasks):
        """Execute ``tasks``; returns their results in task order.

        Raises :class:`~repro.common.errors.SweepError` listing every
        failed cell (by index) once all cells have been attempted.
        """
        tasks = list(tasks)
        started = time.perf_counter()
        workers = min(self.workers, max(1, len(tasks)))
        self._emit("sweep.start", started, cells=len(tasks),
                   workers=workers)
        if not tasks:
            self.last_mode = "serial"
            self._emit("sweep.done", started, cells=0, workers=workers,
                       mode="serial", wall_s=0.0, utilization=0.0)
            return []
        if workers <= 1:
            return self._run_serial(tasks, started, mode="serial")
        pool = self._make_pool(workers)
        if pool is None:
            self._emit("sweep.fallback", started, cells=len(tasks),
                       reason="process pool unavailable")
            return self._run_serial(tasks, started, mode="serial-fallback")
        with pool:
            return self._run_pool(pool, tasks, workers, started)

    def _make_pool(self, workers):
        try:
            import concurrent.futures
            import multiprocessing

            method = self.start_method
            if method is None:
                # Fork shares the already-imported library with workers;
                # spawn works too (tasks are picklable) but pays a fresh
                # interpreter per worker.
                available = multiprocessing.get_all_start_methods()
                method = "fork" if "fork" in available else None
            context = (multiprocessing.get_context(method)
                       if method is not None else None)
            return concurrent.futures.ProcessPoolExecutor(
                max_workers=workers, mp_context=context)
        except (ImportError, NotImplementedError, OSError, ValueError):
            return None

    def _run_serial(self, tasks, started, mode):
        self.last_mode = mode
        results = [None] * len(tasks)
        failures = []
        busy_ms = 0.0
        for index, task in enumerate(tasks):
            for record in _run_chunk([(index, task)]):
                busy_ms += self._absorb(record, results, failures, started)
        return self._finish(results, failures, started, workers=1,
                            mode=mode, busy_ms=busy_ms)

    def _run_pool(self, pool, tasks, workers, started):
        import concurrent.futures

        self.last_mode = "pool"
        pairs = list(enumerate(tasks))
        chunks = _chunk(pairs, self._resolve_chunk_size(len(pairs),
                                                        workers))
        inflight = self._gauge("sweep_cells_inflight")
        if inflight is not None:
            inflight.set(len(pairs))
        futures = {pool.submit(_run_chunk, chunk): chunk
                   for chunk in chunks}
        results = [None] * len(tasks)
        failures = []
        busy_ms = 0.0
        for future in concurrent.futures.as_completed(futures):
            chunk = futures[future]
            try:
                records = future.result()
            except Exception as error:  # noqa: BLE001 — per-cell report
                # The whole chunk is lost (e.g. its results failed to
                # pickle, or a worker died); blame every cell in it.
                records = [(index, False,
                            (type(error).__name__, str(error)), 0.0, -1)
                           for index, _ in chunk]
            for record in records:
                busy_ms += self._absorb(record, results, failures, started)
            if inflight is not None:
                inflight.dec(len(chunk))
        return self._finish(results, failures, started, workers=workers,
                            mode="pool", busy_ms=busy_ms)

    def _absorb(self, record, results, failures, started):
        index, ok, payload, wall_ms, pid = record
        if ok:
            results[index] = payload
        else:
            failures.append((index, payload[0], payload[1]))
        self._emit("sweep.cell", started, index=index, ok=ok,
                   wall_ms=wall_ms, worker_pid=pid)
        return wall_ms

    def _finish(self, results, failures, started, workers, mode, busy_ms):
        wall_s = time.perf_counter() - started
        utilization = (busy_ms / 1000.0) / (workers * wall_s) \
            if wall_s > 0 else 0.0
        gauge = self._gauge("sweep_worker_utilization")
        if gauge is not None:
            gauge.set(utilization)
        self._emit("sweep.done", started, cells=len(results),
                   workers=workers, mode=mode, wall_s=wall_s,
                   utilization=utilization)
        if failures:
            raise SweepError(failures)
        return results


def run_sweep(tasks, workers=1, chunk_size=None, obs=None):
    """One-shot convenience wrapper around :class:`SweepEngine`."""
    return SweepEngine(workers=workers, chunk_size=chunk_size,
                       obs=obs).run(tasks)
