"""Deterministic sweep execution: serial, process-pool, and remote backends.

The engine's contract is simple and strict: for any task list, the result
list returned by ``workers=N`` is **identical** to the ``workers=1``
serial reference, element for element.  Three properties make that hold:

1. tasks never share state — each builds its own cloud from a
   :class:`~repro.engine.spec.CloudSpec` whose seed was spawn-keyed from
   the cell identity, not from enumeration order;
2. workers return ``(index, ok, payload, wall_ms, pid)`` records and the
   parent merges them back into task order, so completion order is
   irrelevant;
3. no shared RNGs, no shared clocks, no shared buses cross a process
   boundary — workers are either stdlib ``ProcessPoolExecutor`` children
   or socket peers speaking the same record contract
   (:mod:`repro.engine.remote`).

Small cells are batched into chunks (one pickle/IPC round-trip per chunk,
not per cell) and the engine degrades gracefully:
``remote coordinator → local pool → serial``, emitting a
``sweep.fallback`` event at each step down.

Observability is parent-side only: per-cell ``sweep.cell`` events and the
worker-utilization gauge are emitted as results arrive, on wall-clock
timestamps (a sweep spans many independent sim clocks, so there is no
single sim time to stamp).
"""

import os
import time

from repro.common.errors import (
    ConfigurationError,
    SweepError,
    SweepFailure,
    TransportError,
)
from repro.engine.tasks import run_task

#: Executor backends, in degradation order.
BACKENDS = ("local", "remote")


def _run_chunk(chunk):
    """Worker-side loop: run each (index, task) pair, never raise.

    Failures travel back as ``(error_type_name, message)`` payloads so one
    bad cell cannot poison its chunk-mates, and the parent can report every
    failing cell (deterministically, by index) instead of just the first.
    """
    out = []
    pid = os.getpid()
    for index, task in chunk:
        start = time.perf_counter()
        try:
            payload, ok = run_task(task), True
        except Exception as error:  # noqa: BLE001 — transported, re-raised
            payload, ok = (type(error).__name__, str(error)), False
        wall_ms = (time.perf_counter() - start) * 1000.0
        out.append((index, ok, payload, wall_ms, pid))
    return out


def _run_chunk_captured(chunk, worker_id=None, flush=None):
    """``_run_chunk`` with telemetry shipping: same records, plus payloads.

    A :class:`~repro.obs.ship.TelemetryCapture` is activated around the
    chunk so any cloud the tasks build attaches the capture bus.  After
    each cell the capture is drained; payloads are either handed to
    ``flush`` (the remote worker streams them as ``TELEMETRY`` frames) or
    accumulated and returned (the pool pickles them with the records).

    The records themselves are computed exactly as ``_run_chunk`` does —
    telemetry must never perturb results.
    """
    from repro.obs.ship import TelemetryCapture

    capture = TelemetryCapture(worker_id=worker_id)
    out = []
    payloads = []
    pid = os.getpid()
    with capture:
        for index, task in chunk:
            capture.begin_cell(index, task)
            start = time.perf_counter()
            try:
                payload, ok = run_task(task), True
            except Exception as error:  # noqa: BLE001 — transported
                payload, ok = (type(error).__name__, str(error)), False
            wall_ms = (time.perf_counter() - start) * 1000.0
            capture.end_cell(ok, wall_ms)
            out.append((index, ok, payload, wall_ms, pid))
            shipped = capture.drain(cell=index)
            if flush is not None:
                flush(shipped)
            else:
                payloads.append(shipped)
    return out, payloads


def _run_chunk_shipped(chunk):
    """Pool entry point (module-level so it pickles): records + payloads."""
    return _run_chunk_captured(chunk)


def _wrap_lazy(records):
    """Wrap successful payloads as :class:`LazyPayload`, in the worker.

    Failure payloads stay raw tuples — the parent's failure reporting and
    the journal's infra-loss check read them positionally.
    """
    from repro.engine.lazy import LazyPayload

    return [(index, ok,
             LazyPayload.wrap(payload) if ok else payload,
             wall_ms, pid)
            for index, ok, payload, wall_ms, pid in records]


def _run_chunk_lazy(chunk):
    """Pool entry point: ``_run_chunk`` with lazily wrapped results."""
    return _wrap_lazy(_run_chunk(chunk))


def _run_chunk_shipped_lazy(chunk):
    """Pool entry point: telemetry capture + lazily wrapped results."""
    records, payloads = _run_chunk_captured(chunk)
    return _wrap_lazy(records), payloads


def _chunk(pairs, chunk_size):
    return [pairs[i:i + chunk_size]
            for i in range(0, len(pairs), chunk_size)]


class SweepEngine(object):
    """Fans a task list over a process pool or socket workers.

    ``workers=1`` (the default) is the in-process serial reference
    executor.  ``backend="remote"`` serves chunks over TCP instead of a
    local pool: workers either connect on their own (``python -m repro
    sweep-worker --connect host:port``) or, with ``remote_workers=N``,
    are spawned as loopback subprocesses.  Remote execution degrades
    gracefully — coordinator → local pool → serial — and results stay
    byte-identical across every backend and worker count.

    ``obs`` is an optional :class:`~repro.obs.Observability`; when
    given, the engine emits ``sweep.start`` / ``sweep.cell`` /
    ``sweep.fallback`` / ``sweep.done`` events (plus
    ``sweep.worker_joined`` / ``sweep.worker_lost`` /
    ``sweep.chunk_requeued`` on the remote backend) and maintains
    ``sweep_cells_inflight``, ``sweep_worker_utilization``, and
    per-worker ``sweep_remote_worker_utilization`` gauges.
    """

    def __init__(self, workers=1, chunk_size=None, obs=None,
                 start_method=None, backend="local", bind="127.0.0.1:0",
                 remote_workers=None, heartbeat_s=1.0,
                 chunk_deadline_s=None, join_timeout_s=10.0,
                 max_requeues=1, telemetry=False, auth_token=None,
                 journal=None, resume=None, chunk_hook=None,
                 worker_log_dir=None, lazy=False):
        self.workers = max(1, int(workers))
        if chunk_size is not None and int(chunk_size) < 1:
            raise ValueError("chunk_size must be >= 1")
        self.chunk_size = int(chunk_size) if chunk_size else None
        self.obs = obs
        self.start_method = start_method
        if backend not in BACKENDS:
            raise ConfigurationError(
                "unknown backend {!r}; pick one of {}".format(backend,
                                                              BACKENDS))
        self.backend = backend
        self.bind = bind
        self.remote_workers = (int(remote_workers)
                               if remote_workers else None)
        self.heartbeat_s = float(heartbeat_s)
        self.chunk_deadline_s = chunk_deadline_s
        self.join_timeout_s = float(join_timeout_s)
        self.max_requeues = int(max_requeues)
        #: Ship worker-side events/metrics/spans home and merge them onto
        #: ``obs`` (see :mod:`repro.obs.ship`).  Requires ``obs``;
        #: results stay byte-identical with shipping on or off.
        self.telemetry = bool(telemetry)
        #: Shared secret for the remote backend's HMAC handshake
        #: (:func:`repro.engine.protocol.server_auth`).  None keeps the
        #: explicit anonymous loopback mode.
        self.auth_token = auth_token
        #: ``journal=DIR`` appends every accepted chunk to an
        #: append-only ``chunks.jsonl`` under DIR (crash evidence);
        #: ``resume=DIR`` additionally *replays* DIR's journal first and
        #: dispatches only the missing chunks — output byte-identical to
        #: an uninterrupted run.  See :mod:`repro.engine.journal`.
        self.journal = journal
        self.resume = resume
        #: ``chunk_hook(chunk_id, records)`` fires after each freshly
        #: accepted (non-replayed) chunk is absorbed and journaled —
        #: the :class:`~repro.faults.fleet.FleetChaos` injection point.
        #: Exceptions propagate and abort the sweep (a simulated crash).
        self.chunk_hook = chunk_hook
        #: Directory for per-worker log files when the engine spawns
        #: loopback workers (None keeps them silent).
        self.worker_log_dir = worker_log_dir
        #: ``lazy=True`` returns results as
        #: :class:`~repro.engine.lazy.LazyPayload` envelopes instead of
        #: decoded objects — workers wrap each successful payload in its
        #: own pickle bytes and the coordinator never materializes them,
        #: so observation-heavy grids cost the parent one byte-string per
        #: cell until the caller ``load()``s.  Results are byte-identical
        #: after loading across every backend and worker count.
        self.lazy = bool(lazy)
        #: How the last run actually executed: "serial", "pool",
        #: "remote", or "serial-fallback" (parallel backend requested
        #: but unavailable).
        self.last_mode = None
        self._merge = None
        self._journal = None
        self._catalog_share = None

    # -- observability helpers ------------------------------------------------
    def _emit(self, name, started, **fields):
        if self.obs is not None and self.obs.bus.enabled:
            self.obs.bus.emit(name, time.perf_counter() - started, **fields)

    def _gauge(self, name):
        if self.obs is None:
            return None
        return self.obs.registry.gauge(name)

    def _resolve_chunk_size(self, n_tasks, workers):
        if self.chunk_size is not None:
            return self.chunk_size
        # Small cells amortize IPC; ~4 chunks per worker keeps the tail
        # short without a pickle round-trip per cell.
        return max(1, -(-n_tasks // (workers * 4)))

    # -- execution ------------------------------------------------------------
    def run(self, tasks, grid_hash=None):
        """Execute ``tasks``; returns their results in task order.

        ``grid_hash`` (the grid's ``content_hash``) pins the journal's
        resume guard when journaling is on; without it the guard falls
        back to a hash of the pickled task list.

        Raises :class:`~repro.common.errors.SweepError` listing every
        failed cell (by index) once all cells have been attempted.
        """
        tasks = list(tasks)
        started = time.perf_counter()
        workers = min(self.workers, max(1, len(tasks)))
        if self.backend == "remote":
            lanes = self.remote_workers or self.workers
            method = "remote"
        else:
            lanes = workers
            method = (self._resolve_start_method() if workers > 1
                      else "serial")
        self._emit("sweep.start", started, cells=len(tasks),
                   workers=lanes, backend=self.backend,
                   start_method=method or "default")
        if not tasks:
            self.last_mode = "serial"
            self._emit("sweep.done", started, cells=0, workers=lanes,
                       mode="serial", wall_s=0.0, utilization=0.0)
            return []
        self._merge = self._make_merge(started, len(tasks))
        plan = state = None
        try:
            if self.journal or self.resume:
                plan, state = self._open_journal(tasks, lanes, grid_hash,
                                                 started)
            if self.backend == "remote":
                outcome = self._run_remote(tasks, lanes, started,
                                           plan=plan, state=state)
                if outcome is not None:
                    return outcome
                # Degrade to the local pool (then serial) below.  With a
                # resume in flight the replayed results live in ``state``
                # and survive the downgrade untouched.
            if workers <= 1:
                if plan is not None:
                    return self._run_serial_chunks(tasks, started,
                                                   mode="serial",
                                                   plan=plan, state=state)
                return self._run_serial(tasks, started, mode="serial")
            pool = self._make_pool(workers)
            if pool is None:
                self._emit("sweep.fallback", started, cells=len(tasks),
                           reason="process pool unavailable")
                if plan is not None:
                    return self._run_serial_chunks(
                        tasks, started, mode="serial-fallback",
                        plan=plan, state=state)
                return self._run_serial(tasks, started,
                                        mode="serial-fallback")
            with pool:
                return self._run_pool(pool, tasks, workers, started,
                                      plan=plan, state=state)
        finally:
            merge, self._merge = self._merge, None
            if merge is not None:
                merge.finish()
            journal, self._journal = self._journal, None
            if journal is not None:
                journal.close()
            share, self._catalog_share = self._catalog_share, None
            if share is not None:
                share.dispose()

    # -- journal / resume -----------------------------------------------------
    def _open_journal(self, tasks, lanes, grid_hash, started):
        """Open (or resume) the chunk journal; returns ``(plan, state)``.

        ``plan`` is the list of ``(chunk_id, chunk)`` pairs still to run;
        ``state`` carries the shared results/failures/busy-time that the
        replay already populated.  Chunk ids always come from chunking
        the *full* task list with the journal's chunk size, so a resumed
        run dispatches the missing chunks under their original ids — a
        worker that spooled chunk 7 across the crash still matches.

        Replay streams the journal (:meth:`ChunkJournal.stream`): each
        chunk's records are decoded, absorbed, and dropped before the
        next line is read, so resuming never materializes the whole
        journal — memory stays bounded by one chunk regardless of how
        many cells the crashed run completed.  A chunk id appearing
        twice replays only its first occurrence (records are
        deterministic, so any duplicate is identical).
        """
        from repro.engine.journal import ChunkJournal, guard_hash_for_tasks

        directory = self.resume or self.journal
        journal = ChunkJournal(directory)
        guard = grid_hash or guard_hash_for_tasks(tasks)
        pairs = list(enumerate(tasks))
        state = {"results": [None] * len(tasks), "failures": [],
                 "busy_ms": 0.0}
        done = set()
        replayed_cells = 0
        if self.resume:
            if not journal.exists():
                raise ConfigurationError(
                    "cannot resume: no chunk journal at "
                    "{}".format(journal.path))
            for chunk_id, _, records in journal.stream(guard=guard,
                                                       cells=len(tasks)):
                if chunk_id in done:
                    continue
                done.add(chunk_id)
                for record in records:
                    state["busy_ms"] += self._absorb(
                        record, state["results"], state["failures"],
                        started, replayed=True)
                replayed_cells += len(records)
            chunk_size = journal.header["chunk_size"]
            journal.reopen_for_append()
        else:
            chunk_size = self._resolve_chunk_size(len(pairs), lanes)
            chunks = _chunk(pairs, chunk_size)
            journal.begin(guard, len(tasks), chunk_size, len(chunks))
        all_chunks = list(enumerate(_chunk(pairs, chunk_size)))
        plan = [(chunk_id, chunk) for chunk_id, chunk in all_chunks
                if chunk_id not in done]
        self._journal = journal
        if done:
            self._emit("sweep.resumed", started, chunks=len(done),
                       cells=replayed_cells, remaining=len(plan))
        return plan, state

    def _journal_chunk(self, chunk_id, chunk, records, worker=None):
        """Durably record one freshly accepted chunk, then fire the hook.

        Infrastructure-loss placeholder records (a dead worker or broken
        pool after max requeues) are *not* journaled — a resume should
        retry those chunks, not replay their failure.  The chaos hook
        fires for every accepted chunk; its exceptions propagate (that is
        the point — a simulated coordinator crash).
        """
        infra_loss = records and all(
            (not ok) and pid == -1 and len(payload) > 2 and payload[2]
            for _, ok, payload, _, pid in records)
        if self._journal is not None and not infra_loss:
            self._journal.append(chunk_id, [index for index, _ in chunk],
                                 records, worker=worker)
        if self.chunk_hook is not None and not infra_loss:
            self.chunk_hook(chunk_id, records)

    def _make_merge(self, started, cells):
        """The telemetry merge for this run (None when shipping is off)."""
        if not self.telemetry or self.obs is None:
            return None
        from repro.obs.ship import TelemetryMerge

        root = self.obs.tracer.start_trace("sweep", 0.0, cells=cells,
                                           backend=self.backend)
        return TelemetryMerge(
            self.obs, clock=lambda: time.perf_counter() - started,
            root_span=root)

    def _resolve_start_method(self):
        """The multiprocessing start method a pool run would use.

        ``forkserver`` is preferred: plain ``fork`` is unsafe when the
        parent holds live threads (obs exporters, remote coordinator
        handlers) and is deprecated as a threaded-parent default from
        Python 3.12.  The fallback order is forkserver → fork → spawn;
        None means "whatever the platform default is".
        """
        if self.start_method is not None:
            return self.start_method
        try:
            import multiprocessing
            available = multiprocessing.get_all_start_methods()
        except ImportError:
            return None
        for method in ("forkserver", "fork", "spawn"):
            if method in available:
                return method
        return None

    def _make_pool(self, workers):
        try:
            import concurrent.futures
            import multiprocessing

            from repro.cloudsim.shared_catalog import (
                CatalogShare,
                attach_worker,
            )

            method = self._resolve_start_method()
            context = (multiprocessing.get_context(method)
                       if method is not None else None)
            # Export the catalog plan once; workers attach it in their
            # initializer so CloudSpec.build never re-derives the spec
            # tables.  export() returning None (no shared memory on this
            # platform) simply skips the initializer — workers then
            # memoize their own plan, slower but identical.
            share = CatalogShare.export()
            self._catalog_share = share
            initializer, initargs = ((attach_worker, (share.name,
                                                      share.size))
                                     if share is not None else (None, ()))
            return concurrent.futures.ProcessPoolExecutor(
                max_workers=workers, mp_context=context,
                initializer=initializer, initargs=initargs)
        except (ImportError, NotImplementedError, OSError, ValueError):
            return None

    def _run_serial(self, tasks, started, mode):
        self.last_mode = mode
        results = [None] * len(tasks)
        failures = []
        busy_ms = 0.0
        for index, task in enumerate(tasks):
            if self._merge is not None:
                records, payloads = _run_chunk_captured(
                    [(index, task)], worker_id="serial")
                for payload in payloads:
                    self._merge.merge(payload, chunk=index)
            else:
                records = _run_chunk([(index, task)])
            for record in records:
                busy_ms += self._absorb(record, results, failures, started)
        return self._finish(results, failures, started, workers=1,
                            mode=mode, busy_ms=busy_ms)

    def _run_serial_chunks(self, tasks, started, mode, plan, state):
        """Serial execution over an explicit chunk plan (journaled runs).

        Identical records to :meth:`_run_serial` — chunk boundaries only
        decide journal granularity, never results.
        """
        self.last_mode = mode
        for chunk_id, chunk in plan:
            if self._merge is not None:
                records, payloads = _run_chunk_captured(
                    chunk, worker_id="serial")
                for payload in payloads:
                    self._merge.merge(payload, chunk=chunk_id)
            else:
                records = _run_chunk(chunk)
            for record in records:
                state["busy_ms"] += self._absorb(
                    record, state["results"], state["failures"], started)
            self._journal_chunk(chunk_id, chunk, records, worker="serial")
        return self._finish(state["results"], state["failures"], started,
                            workers=1, mode=mode,
                            busy_ms=state["busy_ms"])

    def _run_pool(self, pool, tasks, workers, started, plan=None,
                  state=None):
        import concurrent.futures

        self.last_mode = "pool"
        if plan is None:
            pairs = list(enumerate(tasks))
            plan = list(enumerate(_chunk(
                pairs, self._resolve_chunk_size(len(pairs), workers))))
        if state is None:
            state = {"results": [None] * len(tasks), "failures": [],
                     "busy_ms": 0.0}
        inflight = self._gauge("sweep_cells_inflight")
        if inflight is not None:
            inflight.set(sum(len(chunk) for _, chunk in plan))
        if self._merge is None:
            runner = _run_chunk_lazy if self.lazy else _run_chunk
        else:
            runner = (_run_chunk_shipped_lazy if self.lazy
                      else _run_chunk_shipped)
        futures = {pool.submit(runner, chunk): (chunk_id, chunk)
                   for chunk_id, chunk in plan}
        results = state["results"]
        failures = state["failures"]
        for future in concurrent.futures.as_completed(futures):
            chunk_id, chunk = futures[future]
            payloads = []
            try:
                records = future.result()
                if self._merge is not None:
                    records, payloads = records
            except Exception as error:  # noqa: BLE001 — per-cell report
                # The whole chunk is lost (e.g. its results failed to
                # pickle, or a worker died): infrastructure loss, not a
                # task bug — the third payload element marks it so
                # reports can tell the two apart, and the root cause
                # (BrokenProcessPool, PicklingError, ...) rides along as
                # the error type.
                records = [(index, False,
                            (type(error).__name__, str(error), True),
                            0.0, -1)
                           for index, _ in chunk]
            for record in records:
                state["busy_ms"] += self._absorb(record, results,
                                                 failures, started)
            self._journal_chunk(chunk_id, chunk, records, worker="pool")
            for payload in payloads:
                self._merge.merge(payload, chunk=chunk_id)
            if inflight is not None:
                inflight.dec(len(chunk))
        return self._finish(results, failures, started, workers=workers,
                            mode="pool", busy_ms=state["busy_ms"])

    def _run_remote(self, tasks, lanes, started, plan=None, state=None):
        """Serve chunks to socket workers; None = degrade to the pool."""
        from repro.engine.protocol import parse_address
        from repro.engine.remote import SweepCoordinator, spawn_local_workers

        host, port = parse_address(self.bind)
        coordinator = SweepCoordinator(
            host=host, port=port, heartbeat_s=self.heartbeat_s,
            chunk_deadline_s=self.chunk_deadline_s,
            join_timeout_s=self.join_timeout_s,
            max_requeues=self.max_requeues,
            auth_token=self.auth_token,
            emit=lambda name, **fields: self._emit(name, started,
                                                   **fields),
            telemetry=self._merge is not None, lazy=self.lazy,
            telemetry_sink=(self._merge_remote
                            if self._merge is not None else None))
        spawned = []
        try:
            try:
                coordinator.start()
            except TransportError as error:
                self._emit("sweep.fallback", started, cells=len(tasks),
                           reason="coordinator unavailable: "
                                  "{}".format(error))
                return None
            if self.remote_workers:
                try:
                    # Workers must beat at least as often as the
                    # coordinator's silence window expects.
                    spawned = spawn_local_workers(
                        coordinator.address, self.remote_workers,
                        extra_args=("--heartbeat",
                                    str(self.heartbeat_s)),
                        log_dir=self.worker_log_dir,
                        token=self.auth_token)
                except OSError as error:
                    self._emit("sweep.fallback", started,
                               cells=len(tasks),
                               reason="cannot spawn workers: "
                                      "{}".format(error))
                    return None
            self.last_mode = "remote"
            if plan is None:
                pairs = list(enumerate(tasks))
                plan = list(enumerate(_chunk(
                    pairs, self._resolve_chunk_size(len(pairs), lanes))))
            if state is None:
                state = {"results": [None] * len(tasks), "failures": [],
                         "busy_ms": 0.0}
            inflight = self._gauge("sweep_cells_inflight")
            if inflight is not None:
                inflight.set(sum(len(chunk) for _, chunk in plan))
            results = state["results"]
            failures = state["failures"]
            try:
                for chunk_id, chunk, worker_id, records \
                        in coordinator.run_chunks(plan):
                    for record in records:
                        state["busy_ms"] += self._absorb(
                            record, results, failures, started)
                        if inflight is not None:
                            inflight.dec(1)
                    self._journal_chunk(chunk_id, chunk, records,
                                        worker=worker_id)
            except TransportError as error:
                # Nothing was absorbed (the coordinator only raises
                # before the first worker joins), so the pool rerun
                # starts clean — replayed journal state is untouched.
                self._emit("sweep.fallback", started, cells=len(tasks),
                           reason=str(error))
                return None
            self._set_worker_gauges(coordinator, started)
            return self._finish(results, failures, started,
                                workers=max(1, coordinator.workers_seen),
                                mode="remote", busy_ms=state["busy_ms"])
        finally:
            coordinator.close()
            for process in spawned:
                process.terminate()
            for process in spawned:
                try:
                    process.wait(timeout=5.0)
                except Exception:  # noqa: BLE001 — best-effort reap
                    process.kill()

    def _merge_remote(self, worker_id, chunk_id, payloads):
        """Coordinator sink: merge an accepted chunk's shipped payloads.

        Called from the engine thread (inside ``coordinator.run``'s
        consumption loop), so the parent registry is never mutated from a
        handler thread.
        """
        for payload in payloads:
            self._merge.merge(payload, worker=worker_id, chunk=chunk_id)

    def _set_worker_gauges(self, coordinator, started):
        if self.obs is None:
            return
        wall_s = max(time.perf_counter() - started, 1e-9)
        for stats in coordinator.worker_stats():
            gauge = self.obs.registry.gauge(
                "sweep_remote_worker_utilization",
                worker=stats["worker"])
            gauge.set(min(1.0, (stats["busy_ms"] / 1000.0) / wall_s))

    def _absorb(self, record, results, failures, started, replayed=False):
        from repro.engine.lazy import LazyPayload

        index, ok, payload, wall_ms, pid = record
        chunk_failure = False
        if ok:
            # Honor the lazy contract regardless of where the record came
            # from: serial runs and replayed journals from a non-lazy run
            # wrap here (one extra pickle, still bounded per cell), while
            # a lazy journal replayed into a ``lazy=False`` engine decodes
            # back to plain results.
            if self.lazy:
                payload = LazyPayload.wrap(payload)
            elif isinstance(payload, LazyPayload):
                payload = payload.load()
            results[index] = payload
        else:
            chunk_failure = len(payload) > 2 and bool(payload[2])
            failures.append(SweepFailure(index, payload[0], payload[1],
                                         chunk_failure=chunk_failure))
        fields = dict(index=index, ok=ok, wall_ms=wall_ms,
                      worker_pid=pid, chunk_failure=chunk_failure)
        if replayed:
            fields["replayed"] = True
        self._emit("sweep.cell", started, **fields)
        return wall_ms

    def _finish(self, results, failures, started, workers, mode, busy_ms):
        wall_s = time.perf_counter() - started
        utilization = (busy_ms / 1000.0) / (workers * wall_s) \
            if wall_s > 0 else 0.0
        gauge = self._gauge("sweep_worker_utilization")
        if gauge is not None:
            gauge.set(utilization)
        self._emit("sweep.done", started, cells=len(results),
                   workers=workers, mode=mode, wall_s=wall_s,
                   utilization=utilization)
        if failures:
            raise SweepError(failures)
        return results


def run_sweep(tasks, workers=1, chunk_size=None, obs=None, **options):
    """One-shot convenience wrapper around :class:`SweepEngine`.

    Extra keyword ``options`` (``backend``, ``remote_workers``, ...)
    pass straight through to the engine constructor.
    """
    return SweepEngine(workers=workers, chunk_size=chunk_size,
                       obs=obs, **options).run(tasks)
