"""repro.engine — the deterministic parallel experiment engine.

The paper's evaluation is a grid of embarrassingly-parallel runs: sampling
campaigns per AZ (EX-1), progressive-sampling accuracy curves (EX-3),
multi-day temporal series (EX-4), and routing studies (EX-5).  This
package fans such grids out over a ``ProcessPoolExecutor`` while keeping
the results **byte-identical to a serial run**:

* :class:`CloudSpec` — a picklable recipe for a private simulated sky;
  each grid cell's worker builds its own cloud, so no live simulator
  object crosses a process boundary;
* :class:`Grid` / :class:`Cell` — deterministic enumeration of axis cross
  products, with per-cell seeds spawn-keyed from the root seed
  (:func:`repro.common.rng.spawn_seed`) independent of worker count and
  scheduling order;
* task adapters (:class:`CampaignTask`, :class:`ProgressiveTask`,
  :class:`TemporalTask`, :class:`StudyTask`) wrapping the existing
  experiment entry points as picklable value objects;
* :class:`SweepEngine` — chunked dispatch with ordered result merging,
  obs integration, and graceful degradation across backends
  (remote coordinator → local process pool → serial);
* :class:`SweepCoordinator` / :class:`SweepWorker` — the socket-based
  distributed backend (:mod:`repro.engine.remote`), speaking the
  length-prefixed protocol of :mod:`repro.engine.protocol` and serving
  ``python -m repro sweep-worker --connect host:port`` peers;
* :class:`SweepProgress` — an event-bus progress aggregator.

See ``python -m repro sweep --help`` for the CLI front end.
"""

from repro.engine.executor import BACKENDS, SweepEngine, run_sweep
from repro.engine.grid import Cell, Grid
from repro.engine.journal import ChunkJournal, guard_hash_for_tasks
from repro.engine.lazy import LazyPayload, load_payload
from repro.engine.progress import SweepProgress
from repro.engine.protocol import (
    FaultyTransport,
    Transport,
    client_auth,
    connect,
    server_auth,
)
from repro.engine.remote import (
    SweepCoordinator,
    SweepWorker,
    run_worker,
    spawn_local_workers,
)
from repro.engine.spec import CloudSpec
from repro.engine.tasks import (
    DEFAULT_POLICY_SPECS,
    CampaignSummary,
    CampaignTask,
    ProgressiveTask,
    StudyTask,
    SweepTask,
    TemporalTask,
    build_policy,
    run_task,
)

__all__ = [
    "BACKENDS",
    "Cell",
    "ChunkJournal",
    "CloudSpec",
    "FaultyTransport",
    "Grid",
    "LazyPayload",
    "SweepCoordinator",
    "SweepEngine",
    "SweepProgress",
    "SweepTask",
    "SweepWorker",
    "Transport",
    "CampaignSummary",
    "CampaignTask",
    "ProgressiveTask",
    "TemporalTask",
    "StudyTask",
    "DEFAULT_POLICY_SPECS",
    "build_policy",
    "client_auth",
    "connect",
    "guard_hash_for_tasks",
    "load_payload",
    "run_task",
    "run_sweep",
    "run_worker",
    "server_auth",
    "spawn_local_workers",
]
