"""Distributed sweep backend: a socket coordinator and its workers.

The local pool backend tops out at one machine.  This module fans the
same chunked ``(index, task)`` work units over TCP instead:

* :class:`SweepCoordinator` listens on a socket, hands chunks to
  whichever workers connect, and streams back the exact
  ``(index, ok, payload, wall_ms, pid)`` records the in-process
  ``_run_chunk`` produces — so the engine merges remote results through
  its normal absorb path and the output stays byte-identical to
  ``workers=1`` at any worker count and any disconnect pattern;
* :class:`SweepWorker` (``python -m repro sweep-worker --connect
  host:port``) dials in, heartbeats, runs chunks, and reconnects with
  :class:`~repro.core.resilience.ExponentialBackoff` when the link
  drops;
* :func:`spawn_local_workers` launches loopback worker subprocesses for
  single-box scale-out (the benchmark's remote mode) and CI smoke runs.

Robustness model: every worker heartbeats while connected; the
coordinator treats a silent or disconnected worker as lost, requeues its
in-flight chunk (once per loss, ``max_requeues`` total), and only after
the requeue budget is spent converts the chunk into deterministic
``chunk_failure`` records.  Re-executed chunks are harmless — tasks are
pure functions of their spec, and the coordinator deduplicates results
by chunk id, first finisher wins.  The lifecycle is observable through
``sweep.worker_joined`` / ``sweep.worker_lost`` /
``sweep.worker_left`` / ``sweep.chunk_requeued`` events and per-worker
utilization gauges.

Fleet hardening on top of that baseline:

* ``auth_token`` arms the HMAC challenge-response handshake
  (:func:`repro.engine.protocol.server_auth`) — unauthenticated peers
  are rejected **before any pickle is deserialized**;
* workers drain gracefully on request (``drain`` event, SIGTERM in the
  CLI): they finish the chunk in hand, send a ``("leave", ...)`` frame,
  and deregister without burning a requeue;
* workers given a ``spool`` directory persist results they cannot
  deliver (coordinator unreachable) and replay them on reconnect; the
  coordinator accepts replayed results at any point and deduplicates by
  chunk id, so a coordinator restart plus ``--resume`` loses nothing.
"""

import os
import pickle
import queue
import socket
import threading
import time
import zlib

from repro.common.errors import (
    AuthenticationError,
    ConfigurationError,
    TransportError,
    TransportTimeout,
)
from repro.engine.protocol import Transport, connect, server_auth

#: Environment variable carrying the shared sweep secret (never put it
#: on a command line, where ``ps`` would leak it).
TOKEN_ENV = "REPRO_SWEEP_TOKEN"

#: recv windows tolerate this many missed heartbeats before a worker is
#: declared silent.
HEARTBEAT_TOLERANCE = 3.0

_HELLO_TIMEOUT_FLOOR_S = 5.0


class _WorkerStats(object):
    """Cumulative per-worker accounting across reconnects."""

    __slots__ = ("worker_id", "pid", "busy_ms", "chunks_done", "connects",
                 "losses")

    def __init__(self, worker_id):
        self.worker_id = worker_id
        self.pid = None
        self.busy_ms = 0.0
        self.chunks_done = 0
        self.connects = 0
        self.losses = 0

    def to_dict(self):
        return {"worker": self.worker_id, "pid": self.pid,
                "busy_ms": round(self.busy_ms, 3),
                "chunks_done": self.chunks_done,
                "connects": self.connects, "losses": self.losses}


class SweepCoordinator(object):
    """Serves task chunks to socket workers and collects their records.

    ``emit(name, **fields)`` is an optional observability callback (the
    engine binds its own event emitter); it fires from worker-handler
    threads.  ``chunk_deadline_s=None`` disables the per-chunk runtime
    deadline — heartbeat loss and disconnects still detect dead workers.
    """

    def __init__(self, host="127.0.0.1", port=0, heartbeat_s=1.0,
                 chunk_deadline_s=None, join_timeout_s=10.0,
                 max_requeues=1, emit=None, telemetry=False,
                 telemetry_sink=None, auth_token=None, lazy=False):
        if heartbeat_s <= 0:
            raise ConfigurationError("heartbeat_s must be positive")
        if max_requeues < 0:
            raise ConfigurationError("max_requeues must be >= 0")
        self.host = host
        self.port = int(port)
        #: Shared secret; None keeps the explicit anonymous loopback
        #: mode.  With a token set, every accepted socket must pass the
        #: HMAC handshake before its first pickled frame is read.
        self.auth_token = auth_token
        self.heartbeat_s = float(heartbeat_s)
        self.chunk_deadline_s = (float(chunk_deadline_s)
                                 if chunk_deadline_s is not None else None)
        self.join_timeout_s = float(join_timeout_s)
        self.max_requeues = int(max_requeues)
        self._emit_callback = emit
        #: When true, task frames ask workers to capture and ship
        #: telemetry; payloads are buffered per ``(chunk, worker)`` and
        #: handed to ``telemetry_sink(worker_id, chunk_id, payloads)``
        #: from the engine thread when that worker's result is accepted
        #: — requeue losers and duplicate finishers are discarded, so
        #: merged telemetry matches the accepted results exactly.
        self.telemetry = bool(telemetry)
        #: When true, task frames ask workers to return successful
        #: payloads as :class:`~repro.engine.lazy.LazyPayload` envelopes
        #: (pickle bytes, decoded only when the caller loads them).  Old
        #: workers that ignore the flag still interoperate — the engine's
        #: ``_absorb`` wraps coordinator-side as a fallback.
        self.lazy = bool(lazy)
        self._telemetry_sink = telemetry_sink
        self._telemetry = {}
        self.address = None
        self._server = None
        self._accept_thread = None
        self._handlers = []
        self._pending = queue.Queue()
        self._results = queue.Queue()
        self._attempts = {}
        self._lock = threading.Lock()
        self._connected = set()
        self._stats = {}
        self._done = threading.Event()
        self._drained = threading.Event()

    # -- observability -----------------------------------------------------
    def _emit(self, name, **fields):
        if self._emit_callback is not None:
            self._emit_callback(name, **fields)

    def worker_stats(self):
        """Per-worker accounting, sorted by worker id."""
        with self._lock:
            return [self._stats[key].to_dict()
                    for key in sorted(self._stats)]

    @property
    def workers_seen(self):
        with self._lock:
            return len(self._stats)

    @property
    def workers_connected(self):
        with self._lock:
            return len(self._connected)

    # -- lifecycle ---------------------------------------------------------
    def start(self):
        """Bind, listen, and start accepting workers.  Returns self."""
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            server.bind((self.host, self.port))
            server.listen(64)
        except OSError as error:
            server.close()
            raise TransportError(
                "cannot listen on {}:{}: {}".format(self.host, self.port,
                                                    error)) from error
        server.settimeout(0.2)
        self._server = server
        self.address = server.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="sweep-coordinator-accept",
            daemon=True)
        self._accept_thread.start()
        return self

    def close(self):
        """Stop accepting, disconnect workers, join all threads."""
        self._done.set()
        self._drained.set()
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
            self._accept_thread = None
        for thread in list(self._handlers):
            thread.join(timeout=2.0)
        self._handlers = [t for t in self._handlers if t.is_alive()]

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.close()
        return False

    # -- accept / handler threads ------------------------------------------
    def _accept_loop(self):
        while not self._done.is_set():
            try:
                sock, addr = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # server socket closed
            thread = threading.Thread(
                target=self._handshake_and_serve, args=(sock, addr),
                name="sweep-coordinator-worker", daemon=True)
            # Finished handlers would otherwise pile up for the whole
            # sweep (every reconnect adds one); prune the dead here, on
            # the only thread that appends.
            self._handlers = [t for t in self._handlers if t.is_alive()]
            self._handlers.append(thread)
            thread.start()

    def _handshake_and_serve(self, sock, addr):
        """Authenticate the raw socket (token mode), then serve it.

        The handshake runs on raw ``struct``-framed bytes — a peer that
        fails it is disconnected before :class:`Transport` ever calls
        ``pickle.loads`` on its data.
        """
        if self.auth_token is not None:
            try:
                server_auth(sock, self.auth_token,
                            timeout=max(_HELLO_TIMEOUT_FLOOR_S,
                                        self.heartbeat_s
                                        * HEARTBEAT_TOLERANCE))
            except AuthenticationError as error:
                self._emit("sweep.auth_rejected",
                           addr="{}:{}".format(*addr), reason=str(error))
                try:
                    sock.close()
                except OSError:
                    pass
                return
        sock.settimeout(None)
        self._serve_worker(Transport(sock), addr)

    def _register(self, worker_id, pid):
        with self._lock:
            stats = self._stats.setdefault(worker_id,
                                           _WorkerStats(worker_id))
            stats.pid = pid
            stats.connects += 1
            self._connected.add(worker_id)
            return stats

    def _serve_worker(self, transport, addr):
        hello_timeout = max(_HELLO_TIMEOUT_FLOOR_S,
                            self.heartbeat_s * HEARTBEAT_TOLERANCE)
        try:
            hello = transport.recv(timeout=hello_timeout)
        except TransportError:
            transport.close()
            return
        if not (isinstance(hello, tuple) and len(hello) == 3
                and hello[0] == "hello"):
            transport.close()
            return
        _, worker_id, pid = hello
        stats = self._register(worker_id, pid)
        self._emit("sweep.worker_joined", worker=worker_id, pid=pid,
                   addr="{}:{}".format(*addr))
        assignment = None
        dispatched_at = None
        try:
            while not self._done.is_set():
                # Absorb frames the worker sends while unassigned —
                # heartbeats, spool-replayed results from a previous
                # incarnation, or a graceful leave.
                if not self._poll_idle(transport, worker_id, stats):
                    self._emit("sweep.worker_left", worker=worker_id)
                    return
                try:
                    assignment = self._pending.get(timeout=0.05)
                except queue.Empty:
                    if self._drained.is_set():
                        break
                    continue
                chunk_id, chunk = assignment
                dispatched_at = time.monotonic()
                if self.lazy:
                    transport.send(("task", chunk_id, chunk,
                                    self.telemetry, True))
                elif self.telemetry:
                    transport.send(("task", chunk_id, chunk, True))
                else:
                    transport.send(("task", chunk_id, chunk))
                records = self._await_result(transport, chunk_id,
                                             worker_id, stats)
                assignment = None
                stats.busy_ms += sum(record[3] for record in records)
                stats.chunks_done += 1
                self._results.put((chunk_id, records, worker_id))
            try:
                transport.send(("bye",))
            except TransportError:
                pass
        except _WorkerLeft:
            # Graceful departure mid-assignment (the worker drained
            # before taking the task off the wire): requeue for free —
            # this is elasticity, not a failure, so no attempt is
            # charged against the chunk's requeue budget.
            self._emit("sweep.worker_left", worker=worker_id)
            if assignment is not None:
                self._pending.put(assignment)
        except TransportError as error:
            stats.losses += 1
            if assignment is not None and dispatched_at is not None:
                # The worker burned real time on a chunk that never
                # completed; count it so utilization doesn't under-report
                # flaky workers (successful chunks use the workers' own
                # per-cell wall times instead).
                stats.busy_ms += (time.monotonic() - dispatched_at) \
                    * 1000.0
            self._emit("sweep.worker_lost", worker=worker_id,
                       reason=str(error))
            if assignment is not None:
                self._requeue_or_fail(assignment, worker_id, error)
        finally:
            transport.close()
            with self._lock:
                self._connected.discard(worker_id)

    def _poll_idle(self, transport, worker_id, stats):
        """Drain ready frames from an unassigned worker.

        Returns False when the worker announced a graceful leave.
        Raises :class:`TransportError` on a real disconnect.
        """
        while True:
            try:
                message = transport.recv(timeout=0.01)
            except TransportTimeout:
                return True  # nothing waiting; go look for work
            kind = message[0] if isinstance(message, tuple) else None
            if kind == "heartbeat":
                continue
            if kind == "telemetry":
                self._buffer_telemetry(message[1], worker_id, message[2])
                continue
            if kind == "result":
                # A spool replay from before a disconnect: accept it —
                # the run loop deduplicates by chunk id.
                self._accept_offline_result(message, worker_id, stats)
                continue
            if kind == "leave":
                try:
                    transport.send(("bye",))
                except TransportError:
                    pass
                return False
            raise TransportError(
                "unexpected message kind {!r}".format(kind))

    def _accept_offline_result(self, message, worker_id, stats):
        chunk_id, records = message[1], message[2]
        stats.busy_ms += sum(record[3] for record in records)
        stats.chunks_done += 1
        self._results.put((chunk_id, records, worker_id))

    def _await_result(self, transport, chunk_id, worker_id, stats):
        """Wait for ``chunk_id``'s records, absorbing heartbeats (and
        buffering telemetry frames).

        Raises :class:`TransportError` when the worker disconnects, goes
        silent past the heartbeat tolerance, or blows the chunk deadline;
        :class:`_WorkerLeft` when it announces a graceful drain instead
        of taking the task.
        """
        sent_at = time.monotonic()
        while True:
            window = self.heartbeat_s * HEARTBEAT_TOLERANCE
            if self.chunk_deadline_s is not None:
                remaining = (self.chunk_deadline_s
                             - (time.monotonic() - sent_at))
                if remaining <= 0.0:
                    raise TransportError(
                        "chunk {} exceeded its {:.1f}s deadline".format(
                            chunk_id, self.chunk_deadline_s))
                window = min(window, remaining)
            try:
                message = transport.recv(timeout=window)
            except TransportTimeout:
                raise TransportError(
                    "worker went silent (no heartbeat within "
                    "{:.1f}s)".format(window))
            kind = message[0] if isinstance(message, tuple) else None
            if kind == "heartbeat":
                continue
            if kind == "telemetry":
                self._buffer_telemetry(message[1], worker_id, message[2])
                continue
            if kind == "leave":
                raise _WorkerLeft()
            if kind == "result":
                if message[1] == chunk_id:
                    return message[2]
                # A result for some other chunk: a spool replay that
                # raced the task frame (or a duplicate from a requeue).
                # Accept it; the run loop deduplicates by chunk id.
                self._accept_offline_result(message, worker_id, stats)
                continue
            raise TransportError(
                "unexpected message kind {!r}".format(kind))

    # -- telemetry buffering -------------------------------------------------
    def _buffer_telemetry(self, chunk_id, worker_id, payload):
        """Hold a shipped payload until its chunk's result is accepted.

        Buffered per ``(chunk, worker)`` so a requeued chunk's payloads
        from the losing worker never mix with the winner's.
        """
        if not self.telemetry:
            return
        with self._lock:
            per_worker = self._telemetry.setdefault(chunk_id, {})
            per_worker.setdefault(worker_id, []).append(payload)

    def _take_telemetry(self, chunk_id, worker_id):
        """Pop the accepted worker's payloads; drop every other worker's."""
        with self._lock:
            per_worker = self._telemetry.pop(chunk_id, None)
        if per_worker is None or worker_id is None:
            return []
        return per_worker.get(worker_id, [])

    def _requeue_or_fail(self, assignment, worker_id, error):
        chunk_id, chunk = assignment
        with self._lock:
            self._attempts[chunk_id] = self._attempts.get(chunk_id, 0) + 1
            losses = self._attempts[chunk_id]
        if losses <= self.max_requeues:
            self._emit("sweep.chunk_requeued", chunk=chunk_id,
                       cells=len(chunk), worker=worker_id)
            self._pending.put((chunk_id, chunk))
        else:
            # Failure records carry no accepting worker: any telemetry
            # partially shipped for the chunk is discarded at acceptance
            # (its cells report as failed, so merging success telemetry
            # for them would lie).
            self._results.put((chunk_id,
                               _chunk_failure_records(chunk, error),
                               None))

    # -- the driving loop (engine side) ------------------------------------
    def run(self, chunks):
        """Yield records for every cell of ``chunks``, in arrival order.

        Record-level convenience wrapper around :meth:`run_chunks` for
        callers that chunk implicitly (ids are enumeration order).
        """
        for _, _, _, records in self.run_chunks(list(enumerate(chunks))):
            for record in records:
                yield record

    def run_chunks(self, plan):
        """Serve ``plan`` — ``(chunk_id, chunk)`` pairs — and yield each
        accepted chunk as ``(chunk_id, chunk, worker_id, records)``.

        Chunk ids are the caller's (a resumed sweep dispatches only the
        journal's missing ids, so spool replays from before the crash
        still match).  Results are deduplicated by id (requeued chunks
        may finish twice; tasks are deterministic so either copy is
        correct).  Raises :class:`TransportError` if no worker ever
        joins within ``join_timeout_s`` — the engine catches that and
        degrades to the local pool.  Once any worker has joined, loss of
        *every* worker drains the remaining chunks as ``chunk_failure``
        records instead, so partial progress is never thrown away.
        """
        plan = list(plan)
        by_id = dict(plan)
        expected = set(by_id)
        for assignment in plan:
            self._pending.put(assignment)
        started = time.monotonic()
        last_progress = started
        try:
            while expected:
                try:
                    chunk_id, records, worker_id = \
                        self._results.get(timeout=0.1)
                except queue.Empty:
                    now = time.monotonic()
                    if self.workers_seen == 0:
                        if now - started > self.join_timeout_s:
                            raise TransportError(
                                "no workers joined within "
                                "{:.1f}s".format(self.join_timeout_s))
                    elif (self.workers_connected == 0
                          and now - last_progress > self.join_timeout_s):
                        self._fail_remaining(expected, by_id)
                    continue
                if chunk_id not in expected:
                    # Duplicate completion after a requeue (or a spool
                    # replay of an already-journaled chunk): drop its
                    # late-arriving telemetry along with its records.
                    self._take_telemetry(chunk_id, None)
                    continue
                expected.discard(chunk_id)
                last_progress = time.monotonic()
                # First finisher wins telemetry too: take the accepted
                # worker's payloads, discard the rest of the chunk's.
                payloads = self._take_telemetry(chunk_id, worker_id)
                if payloads and self._telemetry_sink is not None:
                    self._telemetry_sink(worker_id, chunk_id, payloads)
                yield chunk_id, by_id[chunk_id], worker_id, records
        finally:
            self._drained.set()

    def _fail_remaining(self, expected, by_id):
        """All workers gone for good: fail what's left, deterministically."""
        while True:
            try:
                self._pending.get_nowait()
            except queue.Empty:
                break
        error = TransportError("all sweep workers lost; chunk abandoned")
        for chunk_id in sorted(expected):
            self._results.put((chunk_id,
                               _chunk_failure_records(by_id[chunk_id],
                                                      error),
                               None))


class _WorkerLeft(Exception):
    """Internal: a worker announced a graceful drain (not a failure)."""


def _chunk_failure_records(chunk, error):
    """Deterministic failure records for a chunk lost to infrastructure."""
    return [(index, False,
             (type(error).__name__, str(error), True), 0.0, -1)
            for index, _ in chunk]


class _TelemetryOutbox(object):
    """Pending telemetry frames shared by a worker's two threads.

    The chunk runner ``put``\\ s a payload per finished cell; both the
    heartbeat thread (between beats) and the session thread (just before
    the result) ``flush``.  Sends happen inside the outbox lock so every
    telemetry frame for a chunk hits the socket before its result frame —
    the coordinator can therefore attribute payloads at result
    acceptance without a second round trip.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._pending = []

    def put(self, chunk_id, payload):
        with self._lock:
            self._pending.append((chunk_id, payload))

    def flush(self, transport, result=None):
        """Send pending frames (+ an optional ``("result", ...)`` last)."""
        with self._lock:
            for chunk_id, payload in self._pending:
                transport.send(("telemetry", chunk_id, payload))
            del self._pending[:]
            if result is not None:
                transport.send(result)


class SweepWorker(object):
    """A sweep worker: connect, heartbeat, run chunks, reconnect.

    ``transport_factory(host, port)`` lets tests interpose a
    :class:`~repro.engine.protocol.FaultyTransport`; the default dials a
    plain TCP :class:`~repro.engine.protocol.Transport` (running the
    HMAC client handshake first when ``token`` is set).

    ``spool`` names a directory for results the worker cannot deliver —
    a result computed while the coordinator is unreachable is written to
    ``chunk-<id>.pkl`` there (atomically) and replayed on the next
    successful connect, so elasticity and coordinator restarts lose no
    completed work.
    """

    def __init__(self, host, port, worker_id=None, heartbeat_s=1.0,
                 max_reconnects=8, backoff=None, transport_factory=None,
                 run_chunk=None, token=None, spool=None):
        from repro.core.resilience import ExponentialBackoff
        from repro.engine.executor import _run_chunk
        self.host = host
        self.port = int(port)
        self.worker_id = worker_id or "worker-{}".format(os.getpid())
        self.heartbeat_s = float(heartbeat_s)
        self.max_reconnects = int(max_reconnects)
        self.backoff = backoff or ExponentialBackoff(
            base_s=0.05, cap_s=2.0,
            seed=zlib.crc32(self.worker_id.encode("utf-8")))
        self.token = token
        self.spool = os.path.abspath(spool) if spool else None
        self._transport_factory = transport_factory
        self._run_chunk = run_chunk or _run_chunk
        # Telemetry capture wraps the stock runner only; a custom
        # run_chunk (test double) keeps its exact behavior.
        self._default_runner = run_chunk is None
        self.chunks_done = 0

    def _dial(self):
        if self._transport_factory is not None:
            return self._transport_factory(self.host, self.port)
        return connect(self.host, self.port, token=self.token)

    def run(self, stop=None, drain=None):
        """Serve until the coordinator says bye; returns chunks done.

        Reconnects through the backoff schedule when the link drops;
        after ``max_reconnects`` consecutive failures it gives up —
        raising :class:`TransportError` if it never managed to join,
        returning normally if it did (a vanished coordinator after a
        completed sweep is the expected shutdown path).

        ``drain`` is an optional :class:`threading.Event` (the CLI sets
        it on SIGTERM): once set, the worker finishes the chunk in hand,
        sends a ``("leave", ...)`` frame, and returns cleanly.
        """
        ever_connected = False
        failures = 0
        while stop is None or not stop.is_set():
            if drain is not None and drain.is_set() \
                    and not self._spooled_chunks():
                return self.chunks_done
            try:
                transport = self._dial()
                transport.send(("hello", self.worker_id, os.getpid()))
                ever_connected = True
                failures = 0
                if self._session(transport, drain=drain):
                    return self.chunks_done
            except AuthenticationError:
                # Wrong/missing token never heals with a retry.
                raise
            except TransportError as error:
                failures += 1
                if failures > self.max_reconnects:
                    if ever_connected:
                        return self.chunks_done
                    raise TransportError(
                        "could not join coordinator at {}:{} after {} "
                        "attempts: {}".format(self.host, self.port,
                                              failures, error)) from error
                time.sleep(self.backoff.delay(failures - 1))
        return self.chunks_done

    def _session(self, transport, drain=None):
        """One connected session.  True = clean exit, reconnect otherwise."""
        stop_heartbeat = threading.Event()
        outbox = _TelemetryOutbox()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(transport, stop_heartbeat, outbox),
            name="sweep-worker-heartbeat", daemon=True)
        heartbeat.start()
        try:
            self._replay_spool(transport)
            leaving = False
            while True:
                if drain is not None and drain.is_set() and not leaving:
                    transport.send(("leave", self.worker_id))
                    leaving = True
                try:
                    message = transport.recv(
                        timeout=max(0.05, self.heartbeat_s))
                except TransportTimeout:
                    continue
                kind = message[0] if isinstance(message, tuple) else None
                if kind == "task":
                    if leaving:
                        # Raced our leave frame; the coordinator
                        # requeues the chunk when it processes it.
                        continue
                    self._serve_task(transport, message, outbox)
                elif kind == "bye":
                    return True
                else:
                    raise TransportError(
                        "unexpected message kind {!r}".format(kind))
        finally:
            stop_heartbeat.set()
            transport.close()

    def _serve_task(self, transport, message, outbox):
        chunk_id, chunk = message[1], message[2]
        want_telemetry = len(message) > 3 and bool(message[3])
        # Lazy wrapping is worker-side so the frame (and any spool file)
        # already holds pickle-byte envelopes; like telemetry capture it
        # only applies to the stock runner — a custom run_chunk keeps its
        # exact behavior and the coordinator wraps as a fallback.
        want_lazy = (len(message) > 4 and bool(message[4])
                     and self._default_runner)
        if want_telemetry and self._default_runner:
            from repro.engine.executor import _run_chunk_captured
            records, _ = _run_chunk_captured(
                chunk, worker_id=self.worker_id,
                flush=lambda payload: outbox.put(chunk_id, payload))
            if want_lazy:
                from repro.engine.executor import _wrap_lazy
                records = _wrap_lazy(records)
            try:
                outbox.flush(transport,
                             result=("result", chunk_id, records))
            except TransportError:
                self._spool_result(chunk_id, records)
                raise
        else:
            records = self._run_chunk(chunk)
            if want_lazy:
                from repro.engine.executor import _wrap_lazy
                records = _wrap_lazy(records)
            try:
                transport.send(("result", chunk_id, records))
            except TransportError:
                # The work is done and deterministic — persist it and
                # let the reconnect loop replay it instead of burning a
                # requeue on the coordinator side.
                self._spool_result(chunk_id, records)
                raise
        self.chunks_done += 1

    # -- result spooling ---------------------------------------------------
    def _spool_path(self, chunk_id):
        return os.path.join(self.spool, "chunk-{}.pkl".format(chunk_id))

    def _spooled_chunks(self):
        if self.spool is None or not os.path.isdir(self.spool):
            return []
        names = []
        for name in os.listdir(self.spool):
            if name.startswith("chunk-") and name.endswith(".pkl"):
                try:
                    names.append(int(name[len("chunk-"):-len(".pkl")]))
                except ValueError:
                    continue
        return sorted(names)

    def _spool_result(self, chunk_id, records):
        if self.spool is None:
            return
        os.makedirs(self.spool, exist_ok=True)
        path = self._spool_path(chunk_id)
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            pickle.dump(records, handle,
                        protocol=pickle.HIGHEST_PROTOCOL)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def _replay_spool(self, transport):
        """Deliver results spooled while the coordinator was away.

        Sent before anything else in the session (right after hello), so
        the coordinator can credit completed chunks before assigning new
        work.  Each file is deleted only once its frame went out; the
        coordinator deduplicates, so a crash between send and delete
        costs nothing.
        """
        for chunk_id in self._spooled_chunks():
            path = self._spool_path(chunk_id)
            try:
                with open(path, "rb") as handle:
                    records = pickle.load(handle)
            except (OSError, pickle.UnpicklingError, EOFError,
                    AttributeError, ValueError):
                continue  # corrupt spool entry; the chunk just reruns
            transport.send(("result", chunk_id, records))
            try:
                os.remove(path)
            except OSError:
                pass

    def _heartbeat_loop(self, transport, stop, outbox):
        while not stop.wait(self.heartbeat_s):
            try:
                outbox.flush(transport)
                transport.send(("heartbeat", self.worker_id))
            except TransportError:
                return


def run_worker(host, port, **kwargs):
    """Blocking convenience wrapper: serve one coordinator, return the
    number of chunks completed."""
    return SweepWorker(host, port, **kwargs).run()


def spawn_local_workers(address, count, python=None, extra_args=(),
                        log_dir=None, token=None):
    """Launch ``count`` loopback ``sweep-worker`` subprocesses.

    Returns the ``subprocess.Popen`` handles; callers own their
    lifecycle.  ``PYTHONPATH`` is extended so the children can import
    ``repro`` from a source checkout without installation.

    ``log_dir`` redirects each worker's stdout+stderr to
    ``worker-<n>.log`` there (the default keeps them silent); ``token``
    travels via :data:`TOKEN_ENV`, never the command line.
    """
    import subprocess
    import sys

    host, port = address
    src_dir = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    if token is not None:
        env[TOKEN_ENV] = token
    command = [python or sys.executable, "-m", "repro", "sweep-worker",
               "--connect", "{}:{}".format(host, port)]
    command.extend(extra_args)
    if log_dir is not None:
        os.makedirs(log_dir, exist_ok=True)
    workers = []
    for n in range(count):
        if log_dir is None:
            stdout = subprocess.DEVNULL
            workers.append(subprocess.Popen(command, env=env,
                                            stdout=stdout,
                                            stderr=subprocess.DEVNULL))
        else:
            log_path = os.path.join(log_dir, "worker-{}.log".format(n))
            with open(log_path, "ab") as log:
                workers.append(subprocess.Popen(command, env=env,
                                                stdout=log,
                                                stderr=subprocess.STDOUT))
    return workers
