"""Distributed sweep backend: a socket coordinator and its workers.

The local pool backend tops out at one machine.  This module fans the
same chunked ``(index, task)`` work units over TCP instead:

* :class:`SweepCoordinator` listens on a socket, hands chunks to
  whichever workers connect, and streams back the exact
  ``(index, ok, payload, wall_ms, pid)`` records the in-process
  ``_run_chunk`` produces — so the engine merges remote results through
  its normal absorb path and the output stays byte-identical to
  ``workers=1`` at any worker count and any disconnect pattern;
* :class:`SweepWorker` (``python -m repro sweep-worker --connect
  host:port``) dials in, heartbeats, runs chunks, and reconnects with
  :class:`~repro.core.resilience.ExponentialBackoff` when the link
  drops;
* :func:`spawn_local_workers` launches loopback worker subprocesses for
  single-box scale-out (the benchmark's remote mode) and CI smoke runs.

Robustness model: every worker heartbeats while connected; the
coordinator treats a silent or disconnected worker as lost, requeues its
in-flight chunk (once per loss, ``max_requeues`` total), and only after
the requeue budget is spent converts the chunk into deterministic
``chunk_failure`` records.  Re-executed chunks are harmless — tasks are
pure functions of their spec, and the coordinator deduplicates results
by chunk id, first finisher wins.  The lifecycle is observable through
``sweep.worker_joined`` / ``sweep.worker_lost`` /
``sweep.chunk_requeued`` events and per-worker utilization gauges.
"""

import os
import queue
import socket
import threading
import time
import zlib

from repro.common.errors import (
    ConfigurationError,
    TransportError,
    TransportTimeout,
)
from repro.engine.protocol import Transport, connect

#: recv windows tolerate this many missed heartbeats before a worker is
#: declared silent.
HEARTBEAT_TOLERANCE = 3.0

_HELLO_TIMEOUT_FLOOR_S = 5.0


class _WorkerStats(object):
    """Cumulative per-worker accounting across reconnects."""

    __slots__ = ("worker_id", "pid", "busy_ms", "chunks_done", "connects",
                 "losses")

    def __init__(self, worker_id):
        self.worker_id = worker_id
        self.pid = None
        self.busy_ms = 0.0
        self.chunks_done = 0
        self.connects = 0
        self.losses = 0

    def to_dict(self):
        return {"worker": self.worker_id, "pid": self.pid,
                "busy_ms": round(self.busy_ms, 3),
                "chunks_done": self.chunks_done,
                "connects": self.connects, "losses": self.losses}


class SweepCoordinator(object):
    """Serves task chunks to socket workers and collects their records.

    ``emit(name, **fields)`` is an optional observability callback (the
    engine binds its own event emitter); it fires from worker-handler
    threads.  ``chunk_deadline_s=None`` disables the per-chunk runtime
    deadline — heartbeat loss and disconnects still detect dead workers.
    """

    def __init__(self, host="127.0.0.1", port=0, heartbeat_s=1.0,
                 chunk_deadline_s=None, join_timeout_s=10.0,
                 max_requeues=1, emit=None, telemetry=False,
                 telemetry_sink=None):
        if heartbeat_s <= 0:
            raise ConfigurationError("heartbeat_s must be positive")
        if max_requeues < 0:
            raise ConfigurationError("max_requeues must be >= 0")
        self.host = host
        self.port = int(port)
        self.heartbeat_s = float(heartbeat_s)
        self.chunk_deadline_s = (float(chunk_deadline_s)
                                 if chunk_deadline_s is not None else None)
        self.join_timeout_s = float(join_timeout_s)
        self.max_requeues = int(max_requeues)
        self._emit_callback = emit
        #: When true, task frames ask workers to capture and ship
        #: telemetry; payloads are buffered per ``(chunk, worker)`` and
        #: handed to ``telemetry_sink(worker_id, chunk_id, payloads)``
        #: from the engine thread when that worker's result is accepted
        #: — requeue losers and duplicate finishers are discarded, so
        #: merged telemetry matches the accepted results exactly.
        self.telemetry = bool(telemetry)
        self._telemetry_sink = telemetry_sink
        self._telemetry = {}
        self.address = None
        self._server = None
        self._accept_thread = None
        self._handlers = []
        self._pending = queue.Queue()
        self._results = queue.Queue()
        self._attempts = {}
        self._lock = threading.Lock()
        self._connected = set()
        self._stats = {}
        self._done = threading.Event()
        self._drained = threading.Event()

    # -- observability -----------------------------------------------------
    def _emit(self, name, **fields):
        if self._emit_callback is not None:
            self._emit_callback(name, **fields)

    def worker_stats(self):
        """Per-worker accounting, sorted by worker id."""
        with self._lock:
            return [self._stats[key].to_dict()
                    for key in sorted(self._stats)]

    @property
    def workers_seen(self):
        with self._lock:
            return len(self._stats)

    @property
    def workers_connected(self):
        with self._lock:
            return len(self._connected)

    # -- lifecycle ---------------------------------------------------------
    def start(self):
        """Bind, listen, and start accepting workers.  Returns self."""
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            server.bind((self.host, self.port))
            server.listen(64)
        except OSError as error:
            server.close()
            raise TransportError(
                "cannot listen on {}:{}: {}".format(self.host, self.port,
                                                    error)) from error
        server.settimeout(0.2)
        self._server = server
        self.address = server.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="sweep-coordinator-accept",
            daemon=True)
        self._accept_thread.start()
        return self

    def close(self):
        """Stop accepting, disconnect workers, join handler threads."""
        self._done.set()
        self._drained.set()
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
        for thread in list(self._handlers):
            thread.join(timeout=2.0)

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.close()
        return False

    # -- accept / handler threads ------------------------------------------
    def _accept_loop(self):
        while not self._done.is_set():
            try:
                sock, addr = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # server socket closed
            sock.settimeout(None)
            thread = threading.Thread(
                target=self._serve_worker, args=(Transport(sock), addr),
                name="sweep-coordinator-worker", daemon=True)
            self._handlers.append(thread)
            thread.start()

    def _register(self, worker_id, pid):
        with self._lock:
            stats = self._stats.setdefault(worker_id,
                                           _WorkerStats(worker_id))
            stats.pid = pid
            stats.connects += 1
            self._connected.add(worker_id)
            return stats

    def _serve_worker(self, transport, addr):
        hello_timeout = max(_HELLO_TIMEOUT_FLOOR_S,
                            self.heartbeat_s * HEARTBEAT_TOLERANCE)
        try:
            hello = transport.recv(timeout=hello_timeout)
        except TransportError:
            transport.close()
            return
        if not (isinstance(hello, tuple) and len(hello) == 3
                and hello[0] == "hello"):
            transport.close()
            return
        _, worker_id, pid = hello
        stats = self._register(worker_id, pid)
        self._emit("sweep.worker_joined", worker=worker_id, pid=pid,
                   addr="{}:{}".format(*addr))
        assignment = None
        dispatched_at = None
        try:
            while not self._done.is_set():
                try:
                    assignment = self._pending.get(timeout=0.05)
                except queue.Empty:
                    if self._drained.is_set():
                        break
                    continue
                chunk_id, chunk = assignment
                dispatched_at = time.monotonic()
                if self.telemetry:
                    transport.send(("task", chunk_id, chunk, True))
                else:
                    transport.send(("task", chunk_id, chunk))
                records = self._await_result(transport, chunk_id,
                                             worker_id)
                assignment = None
                stats.busy_ms += sum(record[3] for record in records)
                stats.chunks_done += 1
                self._results.put((chunk_id, records, worker_id))
            try:
                transport.send(("bye",))
            except TransportError:
                pass
        except TransportError as error:
            stats.losses += 1
            if assignment is not None and dispatched_at is not None:
                # The worker burned real time on a chunk that never
                # completed; count it so utilization doesn't under-report
                # flaky workers (successful chunks use the workers' own
                # per-cell wall times instead).
                stats.busy_ms += (time.monotonic() - dispatched_at) \
                    * 1000.0
            self._emit("sweep.worker_lost", worker=worker_id,
                       reason=str(error))
            if assignment is not None:
                self._requeue_or_fail(assignment, worker_id, error)
        finally:
            transport.close()
            with self._lock:
                self._connected.discard(worker_id)

    def _await_result(self, transport, chunk_id, worker_id):
        """Wait for ``chunk_id``'s records, absorbing heartbeats (and
        buffering telemetry frames).

        Raises :class:`TransportError` when the worker disconnects, goes
        silent past the heartbeat tolerance, or blows the chunk deadline.
        """
        sent_at = time.monotonic()
        while True:
            window = self.heartbeat_s * HEARTBEAT_TOLERANCE
            if self.chunk_deadline_s is not None:
                remaining = (self.chunk_deadline_s
                             - (time.monotonic() - sent_at))
                if remaining <= 0.0:
                    raise TransportError(
                        "chunk {} exceeded its {:.1f}s deadline".format(
                            chunk_id, self.chunk_deadline_s))
                window = min(window, remaining)
            try:
                message = transport.recv(timeout=window)
            except TransportTimeout:
                raise TransportError(
                    "worker went silent (no heartbeat within "
                    "{:.1f}s)".format(window))
            kind = message[0] if isinstance(message, tuple) else None
            if kind == "heartbeat":
                continue
            if kind == "telemetry":
                self._buffer_telemetry(message[1], worker_id, message[2])
                continue
            if kind == "result":
                if message[1] == chunk_id:
                    return message[2]
                continue  # stale result from a requeued chunk
            raise TransportError(
                "unexpected message kind {!r}".format(kind))

    # -- telemetry buffering -------------------------------------------------
    def _buffer_telemetry(self, chunk_id, worker_id, payload):
        """Hold a shipped payload until its chunk's result is accepted.

        Buffered per ``(chunk, worker)`` so a requeued chunk's payloads
        from the losing worker never mix with the winner's.
        """
        if not self.telemetry:
            return
        with self._lock:
            per_worker = self._telemetry.setdefault(chunk_id, {})
            per_worker.setdefault(worker_id, []).append(payload)

    def _take_telemetry(self, chunk_id, worker_id):
        """Pop the accepted worker's payloads; drop every other worker's."""
        with self._lock:
            per_worker = self._telemetry.pop(chunk_id, None)
        if per_worker is None or worker_id is None:
            return []
        return per_worker.get(worker_id, [])

    def _requeue_or_fail(self, assignment, worker_id, error):
        chunk_id, chunk = assignment
        with self._lock:
            self._attempts[chunk_id] = self._attempts.get(chunk_id, 0) + 1
            losses = self._attempts[chunk_id]
        if losses <= self.max_requeues:
            self._emit("sweep.chunk_requeued", chunk=chunk_id,
                       cells=len(chunk), worker=worker_id)
            self._pending.put((chunk_id, chunk))
        else:
            # Failure records carry no accepting worker: any telemetry
            # partially shipped for the chunk is discarded at acceptance
            # (its cells report as failed, so merging success telemetry
            # for them would lie).
            self._results.put((chunk_id,
                               _chunk_failure_records(chunk, error),
                               None))

    # -- the driving loop (engine side) ------------------------------------
    def run(self, chunks):
        """Yield records for every cell of ``chunks``, in arrival order.

        Chunk results are deduplicated by id (requeued chunks may finish
        twice; tasks are deterministic so either copy is correct).
        Raises :class:`TransportError` if no worker ever joins within
        ``join_timeout_s`` — the engine catches that and degrades to the
        local pool.  Once any worker has joined, loss of *every* worker
        drains the remaining chunks as ``chunk_failure`` records instead,
        so partial progress is never thrown away.
        """
        chunks = list(chunks)
        expected = set(range(len(chunks)))
        for chunk_id, chunk in enumerate(chunks):
            self._pending.put((chunk_id, chunk))
        started = time.monotonic()
        last_progress = started
        try:
            while expected:
                try:
                    chunk_id, records, worker_id = \
                        self._results.get(timeout=0.1)
                except queue.Empty:
                    now = time.monotonic()
                    if self.workers_seen == 0:
                        if now - started > self.join_timeout_s:
                            raise TransportError(
                                "no workers joined within "
                                "{:.1f}s".format(self.join_timeout_s))
                    elif (self.workers_connected == 0
                          and now - last_progress > self.join_timeout_s):
                        self._fail_remaining(expected, chunks)
                    continue
                if chunk_id not in expected:
                    # Duplicate completion after a requeue: drop its
                    # late-arriving telemetry along with its records.
                    self._take_telemetry(chunk_id, None)
                    continue
                expected.discard(chunk_id)
                last_progress = time.monotonic()
                # First finisher wins telemetry too: take the accepted
                # worker's payloads, discard the rest of the chunk's.
                payloads = self._take_telemetry(chunk_id, worker_id)
                if payloads and self._telemetry_sink is not None:
                    self._telemetry_sink(worker_id, chunk_id, payloads)
                for record in records:
                    yield record
        finally:
            self._drained.set()

    def _fail_remaining(self, expected, chunks):
        """All workers gone for good: fail what's left, deterministically."""
        while True:
            try:
                self._pending.get_nowait()
            except queue.Empty:
                break
        error = TransportError("all sweep workers lost; chunk abandoned")
        for chunk_id in sorted(expected):
            self._results.put((chunk_id,
                               _chunk_failure_records(chunks[chunk_id],
                                                      error),
                               None))


def _chunk_failure_records(chunk, error):
    """Deterministic failure records for a chunk lost to infrastructure."""
    return [(index, False,
             (type(error).__name__, str(error), True), 0.0, -1)
            for index, _ in chunk]


class _TelemetryOutbox(object):
    """Pending telemetry frames shared by a worker's two threads.

    The chunk runner ``put``\\ s a payload per finished cell; both the
    heartbeat thread (between beats) and the session thread (just before
    the result) ``flush``.  Sends happen inside the outbox lock so every
    telemetry frame for a chunk hits the socket before its result frame —
    the coordinator can therefore attribute payloads at result
    acceptance without a second round trip.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._pending = []

    def put(self, chunk_id, payload):
        with self._lock:
            self._pending.append((chunk_id, payload))

    def flush(self, transport, result=None):
        """Send pending frames (+ an optional ``("result", ...)`` last)."""
        with self._lock:
            for chunk_id, payload in self._pending:
                transport.send(("telemetry", chunk_id, payload))
            del self._pending[:]
            if result is not None:
                transport.send(result)


class SweepWorker(object):
    """A sweep worker: connect, heartbeat, run chunks, reconnect.

    ``transport_factory(host, port)`` lets tests interpose a
    :class:`~repro.engine.protocol.FaultyTransport`; the default dials a
    plain TCP :class:`~repro.engine.protocol.Transport`.
    """

    def __init__(self, host, port, worker_id=None, heartbeat_s=1.0,
                 max_reconnects=8, backoff=None, transport_factory=None,
                 run_chunk=None):
        from repro.core.resilience import ExponentialBackoff
        from repro.engine.executor import _run_chunk
        self.host = host
        self.port = int(port)
        self.worker_id = worker_id or "worker-{}".format(os.getpid())
        self.heartbeat_s = float(heartbeat_s)
        self.max_reconnects = int(max_reconnects)
        self.backoff = backoff or ExponentialBackoff(
            base_s=0.05, cap_s=2.0,
            seed=zlib.crc32(self.worker_id.encode("utf-8")))
        self._transport_factory = transport_factory or connect
        self._run_chunk = run_chunk or _run_chunk
        # Telemetry capture wraps the stock runner only; a custom
        # run_chunk (test double) keeps its exact behavior.
        self._default_runner = run_chunk is None
        self.chunks_done = 0

    def run(self, stop=None):
        """Serve until the coordinator says bye; returns chunks done.

        Reconnects through the backoff schedule when the link drops;
        after ``max_reconnects`` consecutive failures it gives up —
        raising :class:`TransportError` if it never managed to join,
        returning normally if it did (a vanished coordinator after a
        completed sweep is the expected shutdown path).
        """
        ever_connected = False
        failures = 0
        while stop is None or not stop.is_set():
            try:
                transport = self._transport_factory(self.host, self.port)
                transport.send(("hello", self.worker_id, os.getpid()))
                ever_connected = True
                failures = 0
                if self._session(transport):
                    return self.chunks_done
            except TransportError as error:
                failures += 1
                if failures > self.max_reconnects:
                    if ever_connected:
                        return self.chunks_done
                    raise TransportError(
                        "could not join coordinator at {}:{} after {} "
                        "attempts: {}".format(self.host, self.port,
                                              failures, error)) from error
                time.sleep(self.backoff.delay(failures - 1))
        return self.chunks_done

    def _session(self, transport):
        """One connected session.  True = clean bye, reconnect otherwise."""
        stop_heartbeat = threading.Event()
        outbox = _TelemetryOutbox()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(transport, stop_heartbeat, outbox),
            name="sweep-worker-heartbeat", daemon=True)
        heartbeat.start()
        try:
            while True:
                message = transport.recv(timeout=None)
                kind = message[0] if isinstance(message, tuple) else None
                if kind == "task":
                    chunk_id, chunk = message[1], message[2]
                    want_telemetry = len(message) > 3 and bool(message[3])
                    if want_telemetry and self._default_runner:
                        from repro.engine.executor import \
                            _run_chunk_captured
                        records, _ = _run_chunk_captured(
                            chunk, worker_id=self.worker_id,
                            flush=lambda payload:
                                outbox.put(chunk_id, payload))
                        outbox.flush(transport,
                                     result=("result", chunk_id, records))
                    else:
                        records = self._run_chunk(chunk)
                        transport.send(("result", chunk_id, records))
                    self.chunks_done += 1
                elif kind == "bye":
                    return True
                else:
                    raise TransportError(
                        "unexpected message kind {!r}".format(kind))
        finally:
            stop_heartbeat.set()
            transport.close()

    def _heartbeat_loop(self, transport, stop, outbox):
        while not stop.wait(self.heartbeat_s):
            try:
                outbox.flush(transport)
                transport.send(("heartbeat", self.worker_id))
            except TransportError:
                return


def run_worker(host, port, **kwargs):
    """Blocking convenience wrapper: serve one coordinator, return the
    number of chunks completed."""
    return SweepWorker(host, port, **kwargs).run()


def spawn_local_workers(address, count, python=None, extra_args=()):
    """Launch ``count`` loopback ``sweep-worker`` subprocesses.

    Returns the ``subprocess.Popen`` handles; callers own their
    lifecycle.  ``PYTHONPATH`` is extended so the children can import
    ``repro`` from a source checkout without installation.
    """
    import subprocess
    import sys

    host, port = address
    src_dir = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    command = [python or sys.executable, "-m", "repro", "sweep-worker",
               "--connect", "{}:{}".format(host, port)]
    command.extend(extra_args)
    return [subprocess.Popen(command, env=env,
                             stdout=subprocess.DEVNULL,
                             stderr=subprocess.DEVNULL)
            for _ in range(count)]
