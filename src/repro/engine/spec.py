"""Cloud specifications: picklable recipes for building a simulated sky.

The deterministic parallel engine never ships a live :class:`Cloud` across
a process boundary — clouds hold RNG state, event buses, and hundreds of
host pools.  Instead every grid cell carries a :class:`CloudSpec`, a tiny
value object describing *how* to build its private sky, and the worker
materializes it locally with :meth:`CloudSpec.build`.

A spec restricted to the regions a cell actually touches (see
:meth:`CloudSpec.for_zones`) keeps per-worker construction to a couple of
milliseconds even though the full catalog spans 41 regions.
"""

from repro.common.errors import ConfigurationError
from repro.cloudsim.catalog import (
    provider_name_of_zone,
    region_name_of_zone,
)
from repro.cloudsim.cloud import Cloud
from repro.cloudsim.shared_catalog import active_plan, install_plan
from repro.obs.ship import current_capture


class CloudSpec(object):
    """A picklable description of a simulated sky.

    ``regions`` is either ``None`` (install the whole catalog) or a tuple
    of region names to restrict the build to.  ``aws_only`` mirrors the
    catalog builder's flag.  Specs are immutable value objects: derive
    variants with :meth:`with_seed`.
    """

    __slots__ = ("seed", "aws_only", "regions")

    def __init__(self, seed=0, aws_only=True, regions=None):
        self.seed = int(seed)
        self.aws_only = bool(aws_only)
        self.regions = tuple(regions) if regions is not None else None

    # -- construction ---------------------------------------------------------
    @classmethod
    def for_zones(cls, zone_ids, seed=0):
        """A spec restricted to the regions hosting ``zone_ids``.

        ``aws_only`` is inferred: the spec stays AWS-only unless one of the
        zones lives on another provider.
        """
        if not zone_ids:
            raise ConfigurationError("for_zones needs at least one zone")
        regions = []
        aws_only = True
        for zone_id in zone_ids:
            name = region_name_of_zone(zone_id)
            if name not in regions:
                regions.append(name)
            if provider_name_of_zone(zone_id) != "aws":
                aws_only = False
        return cls(seed=seed, aws_only=aws_only, regions=tuple(regions))

    def with_seed(self, seed):
        """The same topology under a different seed."""
        return CloudSpec(seed=seed, aws_only=self.aws_only,
                         regions=self.regions)

    def build(self):
        """Materialize the spec into a fresh :class:`Cloud`.

        When a :class:`~repro.obs.ship.TelemetryCapture` is ambiently
        active on this thread (a sweep worker running a shipped chunk),
        the capture bus is attached so the cell's events are buffered for
        shipping — task code needs no telemetry-aware parameters.

        Zones come from the shared/memoized catalog *plan*
        (:mod:`repro.cloudsim.shared_catalog`): in a pool worker this is
        the parent's shared-memory export, elsewhere a once-per-process
        memo — either way the spec tables are resolved once, not per
        cell, and the result is identical to
        :func:`~repro.cloudsim.catalog.install_catalog`.
        """
        cloud = Cloud(seed=self.seed)
        install_plan(cloud, active_plan(), aws_only=self.aws_only,
                     regions=self.regions)
        capture = current_capture()
        if capture is not None:
            capture.install(cloud)
        return cloud

    def build_with_account(self, zone_id, account_id="sweep"):
        """Build the cloud plus an account on ``zone_id``'s provider."""
        cloud = self.build()
        account = cloud.create_account(account_id,
                                       provider_name_of_zone(zone_id))
        return cloud, account

    # -- value semantics -----------------------------------------------------
    def _key(self):
        return (self.seed, self.aws_only, self.regions)

    def __eq__(self, other):
        if not isinstance(other, CloudSpec):
            return NotImplemented
        return self._key() == other._key()

    def __ne__(self, other):
        equal = self.__eq__(other)
        return equal if equal is NotImplemented else not equal

    def __hash__(self):
        return hash(self._key())

    def to_dict(self):
        """JSON-safe form (pairs with :meth:`from_dict`)."""
        return {"seed": self.seed, "aws_only": self.aws_only,
                "regions": list(self.regions)
                if self.regions is not None else None}

    @classmethod
    def from_dict(cls, payload):
        return cls(seed=payload["seed"], aws_only=payload["aws_only"],
                   regions=payload["regions"])

    def __repr__(self):
        return "CloudSpec(seed={}, aws_only={}, regions={})".format(
            self.seed, self.aws_only,
            list(self.regions) if self.regions is not None else "all")
