"""Lazy result payloads: keep spooled sweep results pickled until read.

Observation-heavy campaign grids (``CampaignTask(summary=False)``) can be
hundreds of kilobytes per cell; with thousands of cells the coordinator
used to materialize every one just to hold the merged result list.  A
:class:`LazyPayload` keeps each result as the pickle bytes it already
travelled as — the worker wraps its payload once, and every later hop
(pool IPC, journal append, spool file, coordinator merge) moves the same
bytes without decoding them.  ``__reduce__`` makes re-pickling a byte
passthrough, so a wrapped record costs one small envelope, not a second
serialization.

The caller decodes on demand::

    engine = SweepEngine(workers=8, lazy=True)
    for payload in engine.run(tasks):
        result = payload.load()   # or load_payload(payload)

Only *successful* payloads are wrapped.  Failure tuples
(``(error_type, message)`` and the infrastructure-loss triple) stay raw —
the engine's failure reporting and the journal's infra-loss check read
them positionally.
"""

import pickle

__all__ = ["LazyPayload", "load_payload"]


class LazyPayload(object):
    """A task result held as its pickle bytes until ``load()``."""

    __slots__ = ("data",)

    def __init__(self, data):
        self.data = data

    @classmethod
    def wrap(cls, obj):
        """Wrap ``obj``; already-wrapped payloads pass through untouched."""
        if isinstance(obj, cls):
            return obj
        return cls(pickle.dumps(obj, pickle.HIGHEST_PROTOCOL))

    def load(self):
        """Decode and return the wrapped result (a fresh copy each call)."""
        return pickle.loads(self.data)

    def __reduce__(self):
        # Re-pickling is byte passthrough: the journal, the worker spool,
        # and pool IPC all move ``data`` without a decode/encode cycle.
        return (self.__class__, (self.data,))

    def __repr__(self):
        return "LazyPayload({} bytes)".format(len(self.data))


def load_payload(payload):
    """``payload.load()`` if lazy, the payload itself otherwise."""
    if isinstance(payload, LazyPayload):
        return payload.load()
    return payload
