"""Experiment grids: deterministic enumeration of sweep cells.

A :class:`Grid` is an ordered cross product of named axes — for example
``zone × seed × policy × poll_budget``.  Each cell gets:

* a stable **index** (its position in row-major axis order);
* a **key**: the tuple of ``(axis, value)`` pairs identifying it;
* a **seed** derived from the grid's root seed and the key via the
  spawn-key scheme (:func:`repro.common.rng.spawn_seed`).

Because the seed depends only on the root seed and the cell's own key —
never on enumeration order, worker count, or scheduling — a sweep's
results are identical however its cells are distributed across processes.
"""

import collections
import hashlib
import itertools

from repro.common.errors import ConfigurationError
from repro.common.rng import spawn_seed

Cell = collections.namedtuple("Cell", ["index", "key", "seed"])
Cell.__doc__ = """One grid cell: ``index`` (row-major position), ``key``
(tuple of ``(axis, value)`` pairs), ``seed`` (spawn-keyed cloud seed)."""


class Grid(object):
    """An ordered cross product of named experiment axes."""

    def __init__(self, axes, root_seed=0, namespace="sweep"):
        """``axes`` is a sequence of ``(name, values)`` pairs (or an
        ordered mapping).  ``namespace`` partitions seed streams between
        unrelated sweeps sharing a root seed."""
        if isinstance(axes, dict):
            axes = list(axes.items())
        self.axes = [(str(name), list(values)) for name, values in axes]
        if not self.axes:
            raise ConfigurationError("grid needs at least one axis")
        names = [name for name, _ in self.axes]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                "duplicate axis names: {}".format(names))
        for name, values in self.axes:
            if not values:
                raise ConfigurationError(
                    "axis {!r} has no values".format(name))
        self.root_seed = int(root_seed)
        self.namespace = str(namespace)

    @property
    def axis_names(self):
        return [name for name, _ in self.axes]

    def __len__(self):
        size = 1
        for _, values in self.axes:
            size *= len(values)
        return size

    def cell_seed(self, key):
        """The spawn-keyed seed for a cell key (order-independent)."""
        tokens = [self.namespace]
        tokens.extend("{}={}".format(name, value) for name, value in key)
        return spawn_seed(self.root_seed, *tokens)

    def cells(self):
        """Enumerate every cell in deterministic row-major order."""
        names = self.axis_names
        value_lists = [values for _, values in self.axes]
        for index, combo in enumerate(itertools.product(*value_lists)):
            key = tuple(zip(names, combo))
            yield Cell(index=index, key=key, seed=self.cell_seed(key))

    def cell(self, index):
        """Random access by index (same cell the iterator would yield)."""
        size = len(self)
        if not 0 <= index < size:
            raise ConfigurationError(
                "cell index {} out of range [0, {})".format(index, size))
        combo = []
        remainder = index
        for _, values in reversed(self.axes):
            remainder, position = divmod(remainder, len(values))
            combo.append(values[position])
        combo.reverse()
        key = tuple(zip(self.axis_names, combo))
        return Cell(index=index, key=key, seed=self.cell_seed(key))

    def content_hash(self):
        """A short stable digest of the grid's identity.

        Covers namespace, root seed, and every axis name/value (via
        ``repr``, which is stable for the plain values grids carry) —
        two runs with the same hash enumerate the same cells with the
        same seeds.  Recorded in run manifests for replay/diff forensics.
        """
        digest = hashlib.sha256()
        digest.update(repr((self.namespace, self.root_seed,
                            self.axes)).encode("utf-8"))
        return digest.hexdigest()[:16]

    def __repr__(self):
        shape = "x".join(str(len(values)) for _, values in self.axes)
        return "Grid({} [{}], root_seed={})".format(
            ",".join(self.axis_names), shape, self.root_seed)
