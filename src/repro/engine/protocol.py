"""Wire protocol for the distributed sweep backend.

One frame = a 4-byte big-endian length prefix followed by a pickled
message.  Messages are plain tuples whose first element names the kind:

* ``("hello", worker_id, pid)`` — worker → coordinator, once per
  connection;
* ``("task", chunk_id, chunk[, want_telemetry])`` — coordinator →
  worker; ``chunk`` is a list of ``(index, task)`` pairs, exactly what
  the local pool's ``_run_chunk`` consumes.  The optional fourth element
  (absent = false, so old peers interoperate) asks the worker to capture
  and ship telemetry for the chunk;
* ``("result", chunk_id, records)`` — worker → coordinator; ``records``
  is the ``(index, ok, payload, wall_ms, pid)`` list ``_run_chunk``
  produced, so results merge through the engine's normal absorb path;
* ``("telemetry", chunk_id, payload)`` — worker → coordinator; one
  drained :class:`~repro.obs.ship.TelemetryCapture` payload (events +
  metric deltas + spans for a finished cell).  Flushed opportunistically
  by the heartbeat thread and always before the chunk's result frame,
  so the coordinator holds a chunk's full telemetry by the time it
  accepts the chunk's records;
* ``("heartbeat", worker_id)`` — worker → coordinator, periodic
  liveness while a chunk is (or isn't) running;
* ``("bye",)`` — coordinator → worker: no more work, disconnect
  cleanly.

:class:`Transport` wraps a connected socket with thread-safe framed
``send``/``recv`` (the worker's heartbeat thread shares the socket with
its result sends).  All socket-level failures surface as
:class:`~repro.common.errors.TransportError`; receive timeouts as the
:class:`~repro.common.errors.TransportTimeout` subclass so callers can
tell "peer is slow or dead" from "peer hung up".

:class:`FaultyTransport` is the seeded chaos double: it wraps a real
transport and injects message drops, delivery delays, and forced
disconnects from a deterministic RNG — the distributed engine's
equivalent of :mod:`repro.faults`.
"""

import pickle
import random
import socket
import struct
import threading
import time

from repro.common.errors import (
    ConfigurationError,
    TransportError,
    TransportTimeout,
)

#: Frame header: one unsigned 32-bit big-endian payload length.
HEADER = struct.Struct(">I")

#: Refuse frames beyond this size — a corrupt header must not make the
#: receiver try to allocate gigabytes.
MAX_FRAME_BYTES = 256 * 1024 * 1024


def encode_frame(message):
    """Pickle ``message`` and prepend the length header."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise TransportError(
            "frame of {} bytes exceeds the {} byte limit".format(
                len(payload), MAX_FRAME_BYTES))
    return HEADER.pack(len(payload)) + payload


class Transport(object):
    """Framed, thread-safe messaging over one connected socket.

    ``send`` may be called from several threads (a worker's heartbeat
    thread races its result sends); ``recv`` is single-consumer.
    """

    def __init__(self, sock):
        self._sock = sock
        self._send_lock = threading.Lock()
        self.closed = False

    # -- sending -----------------------------------------------------------
    def send(self, message):
        frame = encode_frame(message)
        with self._send_lock:
            if self.closed:
                raise TransportError("send on closed transport")
            try:
                self._sock.sendall(frame)
            except (OSError, ValueError) as error:
                self.close()
                raise TransportError(
                    "send failed: {}".format(error)) from error

    # -- receiving ---------------------------------------------------------
    def _read_exact(self, n_bytes):
        chunks = []
        remaining = n_bytes
        while remaining:
            try:
                chunk = self._sock.recv(remaining)
            except socket.timeout as error:
                raise TransportTimeout("receive timed out") from error
            except (OSError, ValueError) as error:
                self.close()
                raise TransportError(
                    "receive failed: {}".format(error)) from error
            if not chunk:
                self.close()
                raise TransportError("peer closed the connection")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def recv(self, timeout=None):
        """Receive one message; ``timeout`` in seconds (None = block)."""
        if self.closed:
            raise TransportError("recv on closed transport")
        try:
            self._sock.settimeout(timeout)
        except OSError as error:
            self.close()
            raise TransportError(str(error)) from error
        (length,) = HEADER.unpack(self._read_exact(HEADER.size))
        if length > MAX_FRAME_BYTES:
            self.close()
            raise TransportError(
                "peer announced a {} byte frame (limit {})".format(
                    length, MAX_FRAME_BYTES))
        payload = self._read_exact(length)
        try:
            return pickle.loads(payload)
        except Exception as error:  # noqa: BLE001 — corrupt frame
            self.close()
            raise TransportError(
                "undecodable frame: {}".format(error)) from error

    # -- lifecycle ---------------------------------------------------------
    def close(self):
        self.closed = True
        try:
            self._sock.close()
        except OSError:
            pass

    def __repr__(self):
        return "Transport(closed={})".format(self.closed)


def connect(host, port, timeout=10.0):
    """Dial ``host:port`` and return a :class:`Transport`."""
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.settimeout(None)
    except OSError as error:
        raise TransportError(
            "cannot connect to {}:{}: {}".format(host, port,
                                                 error)) from error
    return Transport(sock)


def parse_address(address):
    """``"host:port"`` → ``(host, port)`` (IPv4/hostname form)."""
    host, _, port = str(address).rpartition(":")
    if not host or not port:
        raise ConfigurationError(
            "address must look like host:port, got {!r}".format(address))
    try:
        return host, int(port)
    except ValueError:
        raise ConfigurationError(
            "port must be an integer, got {!r}".format(port))


class FaultyTransport(object):
    """Seeded chaos wrapper around a :class:`Transport`.

    Every ``send`` and ``recv`` consults a private deterministic RNG:

    * with probability ``disconnect`` the transport closes itself and
      raises :class:`TransportError` (a vanished peer);
    * with probability ``drop`` the message silently disappears (sends
      return, receives keep waiting for the next frame);
    * with ``delay_s > 0`` delivery sleeps a uniform ``[0, delay_s)``
      first (a congested link).

    The fault sequence is a pure function of ``seed`` and call order, so
    chaos tests replay the same misbehaviour every run.
    """

    def __init__(self, inner, seed=0, drop=0.0, delay_s=0.0,
                 disconnect=0.0):
        for name, probability in (("drop", drop),
                                  ("disconnect", disconnect)):
            if not 0.0 <= float(probability) <= 1.0:
                raise ConfigurationError(
                    "{} must be a probability, got {}".format(
                        name, probability))
        self._inner = inner
        self._rng = random.Random(seed)
        self.drop = float(drop)
        self.delay_s = float(delay_s)
        self.disconnect = float(disconnect)
        self.faults_injected = 0

    @property
    def closed(self):
        return self._inner.closed

    def _maybe_disconnect(self, action):
        if self.disconnect and self._rng.random() < self.disconnect:
            self.faults_injected += 1
            self.close()
            raise TransportError(
                "injected disconnect during {}".format(action))

    def _maybe_delay(self):
        if self.delay_s:
            time.sleep(self._rng.uniform(0.0, self.delay_s))

    def send(self, message):
        self._maybe_disconnect("send")
        if self.drop and self._rng.random() < self.drop:
            self.faults_injected += 1
            return  # swallowed by the network
        self._maybe_delay()
        self._inner.send(message)

    def recv(self, timeout=None):
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        while True:
            self._maybe_disconnect("recv")
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            message = self._inner.recv(timeout=remaining)
            if self.drop and self._rng.random() < self.drop:
                self.faults_injected += 1
                continue  # lost on the wire; wait for the next frame
            self._maybe_delay()
            return message

    def close(self):
        self._inner.close()

    def __repr__(self):
        return ("FaultyTransport(drop={}, delay_s={}, disconnect={}, "
                "injected={})".format(self.drop, self.delay_s,
                                      self.disconnect,
                                      self.faults_injected))
