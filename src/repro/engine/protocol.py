"""Wire protocol for the distributed sweep backend.

One frame = a 4-byte big-endian length prefix followed by a pickled
message.  Messages are plain tuples whose first element names the kind:

* ``("hello", worker_id, pid)`` — worker → coordinator, once per
  connection;
* ``("task", chunk_id, chunk[, want_telemetry])`` — coordinator →
  worker; ``chunk`` is a list of ``(index, task)`` pairs, exactly what
  the local pool's ``_run_chunk`` consumes.  The optional fourth element
  (absent = false, so old peers interoperate) asks the worker to capture
  and ship telemetry for the chunk;
* ``("result", chunk_id, records)`` — worker → coordinator; ``records``
  is the ``(index, ok, payload, wall_ms, pid)`` list ``_run_chunk``
  produced, so results merge through the engine's normal absorb path;
* ``("telemetry", chunk_id, payload)`` — worker → coordinator; one
  drained :class:`~repro.obs.ship.TelemetryCapture` payload (events +
  metric deltas + spans for a finished cell).  Flushed opportunistically
  by the heartbeat thread and always before the chunk's result frame,
  so the coordinator holds a chunk's full telemetry by the time it
  accepts the chunk's records;
* ``("heartbeat", worker_id)`` — worker → coordinator, periodic
  liveness while a chunk is (or isn't) running;
* ``("bye",)`` — coordinator → worker: no more work, disconnect
  cleanly.

:class:`Transport` wraps a connected socket with thread-safe framed
``send``/``recv`` (the worker's heartbeat thread shares the socket with
its result sends).  All socket-level failures surface as
:class:`~repro.common.errors.TransportError`; receive timeouts as the
:class:`~repro.common.errors.TransportTimeout` subclass so callers can
tell "peer is slow or dead" from "peer hung up".

Because frames are *pickled*, an unauthenticated socket would hand
arbitrary-code-execution to anyone who can reach the coordinator port.
:func:`server_auth` / :func:`client_auth` therefore run an HMAC-SHA256
challenge-response handshake over a shared secret **in raw bytes,
before the first pickled frame crosses the wire**: the server sends a
magic + protocol version + random nonce, the client answers with its
own version, nonce, and an HMAC over both nonces, and the server proves
knowledge of the token back (mutual authentication).  The negotiated
protocol version is ``min(server, client)``; versions below
:data:`MIN_PROTOCOL_VERSION` are rejected.  A peer that fails any step
— wrong magic (e.g. a legacy anonymous peer's pickled hello), stale
version, bad MAC — is disconnected before ``pickle.loads`` ever runs.
Anonymous mode (no token on either side) skips the handshake entirely
and speaks the original PR-5 framing, so loopback runs stay
zero-config.

:class:`FaultyTransport` is the seeded chaos double: it wraps a real
transport and injects message drops, delivery delays, and forced
disconnects from a deterministic RNG — the distributed engine's
equivalent of :mod:`repro.faults`.
"""

import hmac
import os
import pickle
import random
import socket
import struct
import threading
import time

from repro.common.errors import (
    AuthenticationError,
    ConfigurationError,
    TransportError,
    TransportTimeout,
)

#: Frame header: one unsigned 32-bit big-endian payload length.
HEADER = struct.Struct(">I")

#: Refuse frames beyond this size — a corrupt header must not make the
#: receiver try to allocate gigabytes.  Per-connection caps can be
#: tightened via ``Transport(..., max_frame_bytes=)``.
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: First bytes of an authenticated connection, both directions.  A
#: legacy anonymous peer's first bytes are a frame header + pickle
#: opcodes, which can never collide with this magic.
AUTH_MAGIC = b"RSWA"

#: Current wire protocol version.  1 = the anonymous PR-5 framing;
#: 2 adds the authenticated handshake, graceful worker leave, and
#: spooled-result replay.  Peers negotiate ``min(server, client)``.
PROTOCOL_VERSION = 2

#: Oldest version an authenticated peer may negotiate down to.
MIN_PROTOCOL_VERSION = 2

_VERSION_STRUCT = struct.Struct(">H")
_NONCE_BYTES = 32
_MAC_BYTES = 32  # SHA-256 digest size


def encode_frame(message, max_frame_bytes=None):
    """Pickle ``message`` and prepend the length header."""
    limit = MAX_FRAME_BYTES if max_frame_bytes is None else max_frame_bytes
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > limit:
        raise TransportError(
            "frame of {} bytes exceeds the {} byte limit".format(
                len(payload), limit))
    return HEADER.pack(len(payload)) + payload


# -- authentication handshake (raw bytes, pre-pickle) --------------------------

def _mac(token, role, version_bytes, first_nonce, second_nonce):
    if isinstance(token, str):
        token = token.encode("utf-8")
    return hmac.new(token, b"|".join((b"repro-sweep", role, version_bytes,
                                      first_nonce, second_nonce)),
                    "sha256").digest()


def _read_raw(sock, n_bytes, timeout):
    """Read exactly ``n_bytes`` raw bytes (no framing, no pickle)."""
    try:
        sock.settimeout(timeout)
    except OSError as error:
        raise AuthenticationError(str(error)) from error
    chunks = []
    remaining = n_bytes
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except socket.timeout as error:
            raise AuthenticationError(
                "handshake timed out") from error
        except (OSError, ValueError) as error:
            raise AuthenticationError(
                "handshake receive failed: {}".format(error)) from error
        if not chunk:
            raise AuthenticationError(
                "peer closed the connection during the handshake")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def server_auth(sock, token, timeout=10.0):
    """Authenticate an inbound peer; returns the negotiated version.

    Runs entirely on raw bytes: a peer that cannot prove knowledge of
    ``token`` is rejected before any pickled frame is read.  Raises
    :class:`~repro.common.errors.AuthenticationError` on any failure;
    the caller must close the socket.
    """
    server_nonce = os.urandom(_NONCE_BYTES)
    version_bytes = _VERSION_STRUCT.pack(PROTOCOL_VERSION)
    try:
        sock.sendall(AUTH_MAGIC + version_bytes + server_nonce)
    except (OSError, ValueError) as error:
        raise AuthenticationError(
            "handshake send failed: {}".format(error)) from error
    reply = _read_raw(sock, len(AUTH_MAGIC) + _VERSION_STRUCT.size
                      + _NONCE_BYTES + _MAC_BYTES, timeout)
    if reply[:len(AUTH_MAGIC)] != AUTH_MAGIC:
        raise AuthenticationError(
            "peer did not speak the authenticated handshake")
    offset = len(AUTH_MAGIC)
    (client_version,) = _VERSION_STRUCT.unpack_from(reply, offset)
    offset += _VERSION_STRUCT.size
    client_nonce = reply[offset:offset + _NONCE_BYTES]
    offset += _NONCE_BYTES
    client_mac = reply[offset:]
    client_version_bytes = _VERSION_STRUCT.pack(client_version)
    expected = _mac(token, b"client", client_version_bytes, server_nonce,
                    client_nonce)
    if not hmac.compare_digest(client_mac, expected):
        raise AuthenticationError("peer failed token verification")
    negotiated = min(PROTOCOL_VERSION, client_version)
    if negotiated < MIN_PROTOCOL_VERSION:
        raise AuthenticationError(
            "peer protocol version {} below the supported minimum "
            "{}".format(client_version, MIN_PROTOCOL_VERSION))
    proof = _mac(token, b"server", _VERSION_STRUCT.pack(negotiated),
                 client_nonce, server_nonce)
    try:
        sock.sendall(proof)
    except (OSError, ValueError) as error:
        raise AuthenticationError(
            "handshake send failed: {}".format(error)) from error
    return negotiated


def client_auth(sock, token, timeout=10.0):
    """Authenticate to a token-protected coordinator; returns the
    negotiated version.  Mirror image of :func:`server_auth`."""
    preamble = _read_raw(sock, len(AUTH_MAGIC) + _VERSION_STRUCT.size
                         + _NONCE_BYTES, timeout)
    if preamble[:len(AUTH_MAGIC)] != AUTH_MAGIC:
        raise AuthenticationError(
            "coordinator did not offer the authenticated handshake "
            "(is it running without --auth-token?)")
    offset = len(AUTH_MAGIC)
    (server_version,) = _VERSION_STRUCT.unpack_from(preamble, offset)
    offset += _VERSION_STRUCT.size
    server_nonce = preamble[offset:offset + _NONCE_BYTES]
    client_nonce = os.urandom(_NONCE_BYTES)
    version_bytes = _VERSION_STRUCT.pack(PROTOCOL_VERSION)
    try:
        sock.sendall(AUTH_MAGIC + version_bytes + client_nonce
                     + _mac(token, b"client", version_bytes, server_nonce,
                            client_nonce))
    except (OSError, ValueError) as error:
        raise AuthenticationError(
            "handshake send failed: {}".format(error)) from error
    negotiated = min(PROTOCOL_VERSION, server_version)
    if negotiated < MIN_PROTOCOL_VERSION:
        raise AuthenticationError(
            "coordinator protocol version {} below the supported "
            "minimum {}".format(server_version, MIN_PROTOCOL_VERSION))
    proof = _read_raw(sock, _MAC_BYTES, timeout)
    expected = _mac(token, b"server", _VERSION_STRUCT.pack(negotiated),
                    client_nonce, server_nonce)
    if not hmac.compare_digest(proof, expected):
        raise AuthenticationError(
            "coordinator failed token verification (wrong shared "
            "token?)")
    return negotiated


class Transport(object):
    """Framed, thread-safe messaging over one connected socket.

    ``send`` may be called from several threads (a worker's heartbeat
    thread races its result sends); ``recv`` is single-consumer.
    """

    def __init__(self, sock, max_frame_bytes=None):
        self._sock = sock
        self._send_lock = threading.Lock()
        self.max_frame_bytes = (MAX_FRAME_BYTES if max_frame_bytes is None
                                else int(max_frame_bytes))
        self.closed = False
        # Partial-frame state, preserved across receive timeouts so a
        # short-timeout poll that fires mid-frame never desyncs the
        # stream — the next recv resumes exactly where this one stopped.
        self._rbuf = bytearray()
        self._expected = None

    # -- sending -----------------------------------------------------------
    def send(self, message):
        frame = encode_frame(message, self.max_frame_bytes)
        with self._send_lock:
            if self.closed:
                raise TransportError("send on closed transport")
            try:
                self._sock.sendall(frame)
            except (OSError, ValueError) as error:
                self.close()
                raise TransportError(
                    "send failed: {}".format(error)) from error

    # -- receiving ---------------------------------------------------------
    def _fill(self):
        """One socket read into the resume buffer.

        A timeout here raises :class:`TransportTimeout` *without*
        discarding what has already arrived; the next :meth:`recv` picks
        the frame back up.
        """
        try:
            chunk = self._sock.recv(65536)
        except socket.timeout as error:
            raise TransportTimeout("receive timed out") from error
        except (OSError, ValueError) as error:
            self.close()
            raise TransportError(
                "receive failed: {}".format(error)) from error
        if not chunk:
            self.close()
            raise TransportError("peer closed the connection")
        self._rbuf += chunk

    def recv(self, timeout=None):
        """Receive one message; ``timeout`` in seconds (None = block).

        A :class:`TransportTimeout` leaves the transport usable: partial
        frame bytes stay buffered and the next call resumes them, so
        short-timeout polling cannot desync the framing.
        """
        if self.closed:
            raise TransportError("recv on closed transport")
        try:
            self._sock.settimeout(timeout)
        except OSError as error:
            self.close()
            raise TransportError(str(error)) from error
        while self._expected is None:
            if len(self._rbuf) >= HEADER.size:
                header_bytes = bytes(self._rbuf[:HEADER.size])
                if header_bytes == AUTH_MAGIC:
                    # The peer opened with the authenticated handshake,
                    # but this transport never ran it: a token-less
                    # worker dialing a token-protected coordinator.
                    # Retrying can never succeed, so fail loudly instead
                    # of looking like a flaky link.
                    self.close()
                    raise AuthenticationError(
                        "peer requires the authenticated handshake "
                        "(missing --auth-token / REPRO_SWEEP_TOKEN?)")
                (length,) = HEADER.unpack(header_bytes)
                if length > self.max_frame_bytes:
                    self.close()
                    raise TransportError(
                        "peer announced a {} byte frame (limit "
                        "{})".format(length, self.max_frame_bytes))
                del self._rbuf[:HEADER.size]
                self._expected = length
                break
            self._fill()
        while len(self._rbuf) < self._expected:
            self._fill()
        payload = bytes(self._rbuf[:self._expected])
        del self._rbuf[:self._expected]
        self._expected = None
        try:
            return pickle.loads(payload)
        except Exception as error:  # noqa: BLE001 — corrupt frame
            self.close()
            raise TransportError(
                "undecodable frame: {}".format(error)) from error

    # -- lifecycle ---------------------------------------------------------
    def close(self):
        self.closed = True
        try:
            self._sock.close()
        except OSError:
            pass

    def __repr__(self):
        return "Transport(closed={})".format(self.closed)


def connect(host, port, timeout=10.0, token=None, max_frame_bytes=None):
    """Dial ``host:port`` and return a :class:`Transport`.

    With ``token`` set, the authenticated handshake runs before the
    transport is handed back — a coordinator that is not token-protected
    (or holds a different token) raises
    :class:`~repro.common.errors.AuthenticationError`.
    """
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as error:
        raise TransportError(
            "cannot connect to {}:{}: {}".format(host, port,
                                                 error)) from error
    if token:
        try:
            client_auth(sock, token, timeout=timeout)
        except AuthenticationError:
            try:
                sock.close()
            except OSError:
                pass
            raise
    sock.settimeout(None)
    return Transport(sock, max_frame_bytes=max_frame_bytes)


def parse_address(address):
    """``"host:port"`` → ``(host, port)`` (IPv4/hostname form)."""
    host, _, port = str(address).rpartition(":")
    if not host or not port:
        raise ConfigurationError(
            "address must look like host:port, got {!r}".format(address))
    try:
        return host, int(port)
    except ValueError:
        raise ConfigurationError(
            "port must be an integer, got {!r}".format(port))


class FaultyTransport(object):
    """Seeded chaos wrapper around a :class:`Transport`.

    Every ``send`` and ``recv`` consults a private deterministic RNG:

    * with probability ``disconnect`` the transport closes itself and
      raises :class:`TransportError` (a vanished peer);
    * with probability ``drop`` the message silently disappears (sends
      return, receives keep waiting for the next frame);
    * with ``delay_s > 0`` delivery sleeps a uniform ``[0, delay_s)``
      first (a congested link).

    The fault sequence is a pure function of ``seed`` and call order, so
    chaos tests replay the same misbehaviour every run.
    """

    def __init__(self, inner, seed=0, drop=0.0, delay_s=0.0,
                 disconnect=0.0):
        for name, probability in (("drop", drop),
                                  ("disconnect", disconnect)):
            if not 0.0 <= float(probability) <= 1.0:
                raise ConfigurationError(
                    "{} must be a probability, got {}".format(
                        name, probability))
        self._inner = inner
        self._rng = random.Random(seed)
        self.drop = float(drop)
        self.delay_s = float(delay_s)
        self.disconnect = float(disconnect)
        self.faults_injected = 0

    @property
    def closed(self):
        return self._inner.closed

    def _maybe_disconnect(self, action):
        if self.disconnect and self._rng.random() < self.disconnect:
            self.faults_injected += 1
            self.close()
            raise TransportError(
                "injected disconnect during {}".format(action))

    def _maybe_delay(self):
        if self.delay_s:
            time.sleep(self._rng.uniform(0.0, self.delay_s))

    def send(self, message):
        self._maybe_disconnect("send")
        if self.drop and self._rng.random() < self.drop:
            self.faults_injected += 1
            return  # swallowed by the network
        self._maybe_delay()
        self._inner.send(message)

    def recv(self, timeout=None):
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        while True:
            self._maybe_disconnect("recv")
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            message = self._inner.recv(timeout=remaining)
            if self.drop and self._rng.random() < self.drop:
                self.faults_injected += 1
                continue  # lost on the wire; wait for the next frame
            self._maybe_delay()
            return message

    def close(self):
        self._inner.close()

    def __repr__(self):
        return ("FaultyTransport(drop={}, delay_s={}, disconnect={}, "
                "injected={})".format(self.drop, self.delay_s,
                                      self.disconnect,
                                      self.faults_injected))
