"""Sweep progress aggregation over the observability event stream.

:class:`SweepProgress` subscribes to an :class:`~repro.obs.EventBus` and
folds the engine's ``sweep.*`` events into a live summary — cells done
vs. total, failures, busy milliseconds, fleet lifecycle (workers joined
and lost, chunks requeued, telemetry shipped/dropped), per-cell
wall-time percentiles, the execution mode, and final worker utilization.
The CLI uses it for ``--progress`` output and ``obs tail``; tests use
it to assert the engine's instrumentation without scraping raw events.
"""

from repro.obs.metrics import quantile


class SweepProgress(object):
    """Live sweep counters fed by ``sweep.*`` events."""

    def __init__(self, bus, on_cell=None):
        """``on_cell(done, total)`` is an optional per-cell callback
        (e.g. a progress printer)."""
        self.total = 0
        self.done = 0
        self.failed = 0
        self.busy_ms = 0.0
        self.workers = 1
        self.mode = None
        self.wall_s = 0.0
        self.utilization = 0.0
        self.fallback_reason = None
        self.workers_joined = 0
        self.workers_lost = 0
        self.workers_left = 0
        self.chunks_requeued = 0
        self.cells_replayed = 0
        self.auth_rejected = 0
        self.shipped_chunks = 0
        self.shipped_events = 0
        self.shipped_spans = 0
        self.telemetry_dropped = 0
        self._cell_wall_ms = []
        self._on_cell = on_cell
        self._unsubscribes = [
            bus.subscribe(self._on_start, "sweep.start"),
            bus.subscribe(self._on_cell_event, "sweep.cell"),
            bus.subscribe(self._on_fallback, "sweep.fallback"),
            bus.subscribe(self._on_done, "sweep.done"),
            bus.subscribe(self._on_worker_joined, "sweep.worker_joined"),
            bus.subscribe(self._on_worker_lost, "sweep.worker_lost"),
            bus.subscribe(self._on_requeued, "sweep.chunk_requeued"),
            bus.subscribe(self._on_worker_left, "sweep.worker_left"),
            bus.subscribe(self._on_resumed, "sweep.resumed"),
            bus.subscribe(self._on_auth_rejected, "sweep.auth_rejected"),
            bus.subscribe(self._on_telemetry, "sweep.telemetry"),
            bus.subscribe(self._on_dropped, "sweep.telemetry_dropped"),
        ]

    # -- event handlers -------------------------------------------------------
    def _on_start(self, event):
        self.total = event.fields["cells"]
        self.workers = event.fields["workers"]
        self.done = 0
        self.failed = 0
        self.busy_ms = 0.0
        del self._cell_wall_ms[:]

    def _on_cell_event(self, event):
        self.done += 1
        self.busy_ms += event.fields["wall_ms"]
        self._cell_wall_ms.append(event.fields["wall_ms"])
        if not event.fields["ok"]:
            self.failed += 1
        if self._on_cell is not None:
            self._on_cell(self.done, self.total)

    def _on_fallback(self, event):
        self.fallback_reason = event.fields["reason"]

    def _on_done(self, event):
        self.mode = event.fields["mode"]
        self.wall_s = event.fields["wall_s"]
        self.utilization = event.fields["utilization"]

    def _on_worker_joined(self, event):
        self.workers_joined += 1

    def _on_worker_lost(self, event):
        self.workers_lost += 1

    def _on_requeued(self, event):
        self.chunks_requeued += 1

    def _on_worker_left(self, event):
        self.workers_left += 1

    def _on_resumed(self, event):
        self.cells_replayed += event.fields.get("cells", 0)

    def _on_auth_rejected(self, event):
        self.auth_rejected += 1

    def _on_telemetry(self, event):
        self.shipped_chunks += 1
        self.shipped_events += event.fields.get("events", 0)
        self.shipped_spans += event.fields.get("spans", 0)

    def _on_dropped(self, event):
        self.telemetry_dropped += event.fields.get("dropped", 0)

    def cell_wall_ms_quantile(self, q):
        """Wall-time quantile over the cells absorbed so far (or None)."""
        if not self._cell_wall_ms:
            return None
        return quantile(sorted(self._cell_wall_ms), q)

    # -- views ----------------------------------------------------------------
    @property
    def remaining(self):
        return max(0, self.total - self.done)

    def summary(self):
        """JSON-safe snapshot of the sweep's progress."""
        p50 = self.cell_wall_ms_quantile(0.50)
        p95 = self.cell_wall_ms_quantile(0.95)
        p99 = self.cell_wall_ms_quantile(0.99)
        return {
            "cells": self.total,
            "done": self.done,
            "failed": self.failed,
            "workers": self.workers,
            "mode": self.mode,
            "wall_s": round(self.wall_s, 6),
            "busy_ms": round(self.busy_ms, 3),
            "utilization": round(self.utilization, 4),
            "fallback_reason": self.fallback_reason,
            "workers_joined": self.workers_joined,
            "workers_lost": self.workers_lost,
            "workers_left": self.workers_left,
            "chunks_requeued": self.chunks_requeued,
            "cells_replayed": self.cells_replayed,
            "auth_rejected": self.auth_rejected,
            "shipped_chunks": self.shipped_chunks,
            "shipped_events": self.shipped_events,
            "shipped_spans": self.shipped_spans,
            "telemetry_dropped": self.telemetry_dropped,
            "p50_cell_wall_ms": round(p50, 3) if p50 is not None else None,
            "p95_cell_wall_ms": round(p95, 3) if p95 is not None else None,
            "p99_cell_wall_ms": round(p99, 3) if p99 is not None else None,
        }

    def detach(self):
        """Stop observing the bus (keeps accumulated counters)."""
        for unsubscribe in self._unsubscribes:
            unsubscribe()
        self._unsubscribes = []

    def __repr__(self):
        return "SweepProgress({}/{} done, {} failed, mode={})".format(
            self.done, self.total, self.failed, self.mode)
