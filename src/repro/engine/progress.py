"""Sweep progress aggregation over the observability event stream.

:class:`SweepProgress` subscribes to an :class:`~repro.obs.EventBus` and
folds the engine's ``sweep.*`` events into a live summary — cells done
vs. total, failures, busy milliseconds, the execution mode, and final
worker utilization.  The CLI uses it for ``--progress`` output; tests use
it to assert the engine's instrumentation without scraping raw events.
"""


class SweepProgress(object):
    """Live sweep counters fed by ``sweep.*`` events."""

    def __init__(self, bus, on_cell=None):
        """``on_cell(done, total)`` is an optional per-cell callback
        (e.g. a progress printer)."""
        self.total = 0
        self.done = 0
        self.failed = 0
        self.busy_ms = 0.0
        self.workers = 1
        self.mode = None
        self.wall_s = 0.0
        self.utilization = 0.0
        self.fallback_reason = None
        self._on_cell = on_cell
        self._unsubscribes = [
            bus.subscribe(self._on_start, "sweep.start"),
            bus.subscribe(self._on_cell_event, "sweep.cell"),
            bus.subscribe(self._on_fallback, "sweep.fallback"),
            bus.subscribe(self._on_done, "sweep.done"),
        ]

    # -- event handlers -------------------------------------------------------
    def _on_start(self, event):
        self.total = event.fields["cells"]
        self.workers = event.fields["workers"]
        self.done = 0
        self.failed = 0
        self.busy_ms = 0.0

    def _on_cell_event(self, event):
        self.done += 1
        self.busy_ms += event.fields["wall_ms"]
        if not event.fields["ok"]:
            self.failed += 1
        if self._on_cell is not None:
            self._on_cell(self.done, self.total)

    def _on_fallback(self, event):
        self.fallback_reason = event.fields["reason"]

    def _on_done(self, event):
        self.mode = event.fields["mode"]
        self.wall_s = event.fields["wall_s"]
        self.utilization = event.fields["utilization"]

    # -- views ----------------------------------------------------------------
    @property
    def remaining(self):
        return max(0, self.total - self.done)

    def summary(self):
        """JSON-safe snapshot of the sweep's progress."""
        return {
            "cells": self.total,
            "done": self.done,
            "failed": self.failed,
            "workers": self.workers,
            "mode": self.mode,
            "wall_s": round(self.wall_s, 6),
            "busy_ms": round(self.busy_ms, 3),
            "utilization": round(self.utilization, 4),
            "fallback_reason": self.fallback_reason,
        }

    def detach(self):
        """Stop observing the bus (keeps accumulated counters)."""
        for unsubscribe in self._unsubscribes:
            unsubscribe()
        self._unsubscribes = []

    def __repr__(self):
        return "SweepProgress({}/{} done, {} failed, mode={})".format(
            self.done, self.total, self.failed, self.mode)
