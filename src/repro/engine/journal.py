"""Crash-safe chunk journal: the sweep engine's durable progress log.

A :class:`ChunkJournal` is an append-only ``chunks.jsonl`` inside a run
directory (the same directory the :class:`~repro.obs.manifest.RunManifest`
flight recorder owns).  The first line is a header pinning the sweep's
identity — a guard hash (the grid's ``content_hash`` when the caller has
one), the cell count, and the chunk size the run was planned with; every
subsequent line is one *accepted* chunk: its id, the cell indexes it
covered, and the exact ``(index, ok, payload, wall_ms, pid)`` records the
engine absorbed, pickled and base64-encoded with a CRC so corruption is
detected on load.

Appends are flushed and fsynced per chunk, so a SIGKILLed coordinator
leaves a journal describing precisely the chunks it had accepted.  A
crash *during* an append leaves a truncated final line;
:meth:`ChunkJournal.load` stops at the first undecodable line and
returns what precedes it — the interrupted chunk simply reruns.

Resume (``SweepEngine(resume=DIR)`` / ``repro sweep ... --resume DIR``)
replays the journaled records through the engine's normal absorb path
and dispatches only the chunks the journal is missing, with the original
chunk ids — so a worker that spooled a result for chunk 7 while the
coordinator was down can still hand it to the restarted coordinator.
Because tasks are pure functions of their spec, the merged output is
byte-identical to an uninterrupted run.  The header guard refuses to
resume a journal against a different grid, seed, or chunking.
"""

import base64
import binascii
import json
import os
import pickle
import zlib

from repro.common.errors import ConfigurationError

#: Journal file name inside a run directory.
CHUNKS_FILE = "chunks.jsonl"

JOURNAL_VERSION = 1
_JOURNAL_KIND = "repro-sweep-chunks"


def guard_hash_for_tasks(tasks):
    """A fallback resume guard when no grid ``content_hash`` is given.

    Hashes the pickled task list — deterministic for the plain value
    objects sweeps carry — and prefixes it so it can never be confused
    with a grid hash.
    """
    import hashlib

    digest = hashlib.sha256()
    digest.update(pickle.dumps(list(tasks), protocol=4))
    return "tasks:" + digest.hexdigest()[:16]


class ChunkJournal(object):
    """Append-only journal of accepted sweep chunks (module docstring)."""

    def __init__(self, directory):
        self.directory = os.path.abspath(directory)
        self.path = os.path.join(self.directory, CHUNKS_FILE)
        self.header = None
        #: ``{chunk_id: (indexes, records)}`` replayed by :meth:`load`.
        self.replayed = {}
        self._handle = None

    # -- writing -------------------------------------------------------------
    def begin(self, guard, cells, chunk_size, chunks):
        """Start a fresh journal (truncating any previous one)."""
        os.makedirs(self.directory, exist_ok=True)
        self.header = {"kind": _JOURNAL_KIND, "version": JOURNAL_VERSION,
                       "guard": str(guard), "cells": int(cells),
                       "chunk_size": int(chunk_size),
                       "chunks": int(chunks)}
        self._handle = open(self.path, "w")
        self._append_line(self.header)
        return self

    def append(self, chunk_id, indexes, records, worker=None):
        """Durably record one accepted chunk (flush + fsync)."""
        if self._handle is None:
            raise ConfigurationError(
                "journal at {} is not open for appending".format(self.path))
        payload = pickle.dumps(records, protocol=pickle.HIGHEST_PROTOCOL)
        self._append_line({
            "kind": "chunk",
            "chunk": int(chunk_id),
            "indexes": [int(index) for index in indexes],
            "worker": worker,
            "records": base64.b64encode(payload).decode("ascii"),
            "crc32": zlib.crc32(payload) & 0xFFFFFFFF,
        })

    def _append_line(self, entry):
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self):
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None

    # -- loading / resuming ----------------------------------------------------
    def exists(self):
        return os.path.exists(self.path)

    def stream(self, guard=None, cells=None):
        """Lazily yield ``(chunk_id, indexes, records)`` per journal line.

        The streaming core under :meth:`load`: the header is validated
        (``guard`` / ``cells`` semantics as documented there, with
        :attr:`header` populated as a side effect), then each chunk line
        is read, decoded, and yielded **one at a time** — nothing is
        retained, so resuming a journal with millions of spooled records
        holds one chunk's records in memory, not the whole file.  A
        truncated or corrupt tail (crash mid-append) ends the stream;
        the rest of the sweep reruns.
        """
        try:
            handle = open(self.path)
        except OSError as error:
            raise ConfigurationError(
                "cannot read chunk journal {}: {}".format(self.path,
                                                          error)) from error
        with handle:
            first = handle.readline()
            if not first.strip():
                raise ConfigurationError(
                    "chunk journal {} is empty".format(self.path))
            header = self._decode_header(first)
            if guard is not None and header["guard"] != str(guard):
                raise ConfigurationError(
                    "refusing to resume {}: journal guard {!r} does not "
                    "match this sweep's spec {!r} (different grid, seed, "
                    "or parameters)".format(self.path, header["guard"],
                                            str(guard)))
            if cells is not None and header["cells"] != int(cells):
                raise ConfigurationError(
                    "refusing to resume {}: journal covers {} cells, this "
                    "sweep has {}".format(self.path, header["cells"],
                                          cells))
            self.header = header
            for line in handle:
                entry = self._decode_chunk(line, header)
                if entry is None:
                    return  # truncated/corrupt tail: rerun from here
                yield entry

    def load(self, guard=None, cells=None):
        """Read the whole journal back; populates :attr:`replayed`.

        ``guard`` / ``cells`` (when given) must match the header — a
        mismatch means the directory holds a *different* sweep's
        progress, and resuming it would silently corrupt results, so a
        :class:`~repro.common.errors.ConfigurationError` is raised
        instead.  A truncated or corrupt tail (crash mid-append) is
        tolerated: reading stops there and the rest of the sweep reruns.

        Materializes every chunk — callers that only need one pass (the
        engine's resume replay) should iterate :meth:`stream` instead.
        """
        self.replayed = {}
        for chunk_id, indexes, records in self.stream(guard=guard,
                                                      cells=cells):
            self.replayed[chunk_id] = (indexes, records)
        return self

    def reopen_for_append(self):
        """Continue appending to a loaded journal (resume path)."""
        self._handle = open(self.path, "a")
        return self

    @staticmethod
    def _decode_header(line):
        try:
            header = json.loads(line)
        except ValueError as error:
            raise ConfigurationError(
                "chunk journal header is not valid JSON: "
                "{}".format(error)) from error
        if (not isinstance(header, dict)
                or header.get("kind") != _JOURNAL_KIND):
            raise ConfigurationError(
                "file is not a repro sweep chunk journal")
        if header.get("version") != JOURNAL_VERSION:
            raise ConfigurationError(
                "unsupported chunk journal version {!r}".format(
                    header.get("version")))
        return header

    @staticmethod
    def _decode_chunk(line, header):
        """One journaled chunk, or None when the line is unusable."""
        try:
            entry = json.loads(line)
        except ValueError:
            return None
        if not isinstance(entry, dict) or entry.get("kind") != "chunk":
            return None
        try:
            payload = base64.b64decode(entry["records"], validate=True)
            if (zlib.crc32(payload) & 0xFFFFFFFF) != entry["crc32"]:
                return None
            records = pickle.loads(payload)
            chunk_id = int(entry["chunk"])
            indexes = [int(index) for index in entry["indexes"]]
        except (KeyError, ValueError, TypeError, binascii.Error,
                pickle.UnpicklingError, EOFError, AttributeError):
            return None
        if not (0 <= chunk_id < header["chunks"]):
            return None
        if sorted(record[0] for record in records) != sorted(indexes):
            return None
        return chunk_id, indexes, records

    # -- introspection ---------------------------------------------------------
    def __len__(self):
        return len(self.replayed)

    def __repr__(self):
        return "ChunkJournal(path={!r}, chunks={})".format(
            self.path, len(self.replayed))
