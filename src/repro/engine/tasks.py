"""Picklable task adapters around the library's experiment entry points.

Each task is a small value object holding a :class:`CloudSpec` plus the
experiment's own parameters.  ``run()`` builds a private cloud inside the
worker process, executes the underlying flow — a sampling campaign, a
progressive-sampling analysis, a temporal series, or a routing study —
and returns the flow's **existing result type** (``CampaignResult``,
``ProgressiveAnalysis``, lists thereof, ``StudyResult``).  No live
simulator object ever crosses the process boundary in either direction.

Tasks deliberately reference workloads and routing policies by *name/spec*
rather than by object, so the transported payload stays primitive and the
worker resolves them against its own interpreter state.
"""

from repro.common.errors import ConfigurationError
from repro.engine.spec import CloudSpec


def run_task(task):
    """Module-level trampoline so executors can submit tasks by value."""
    return task.run()


class SweepTask(object):
    """Base class: a cloud spec plus a stable cell identity."""

    kind = "abstract"

    def __init__(self, spec):
        if not isinstance(spec, CloudSpec):
            raise ConfigurationError(
                "task needs a CloudSpec, got {!r}".format(type(spec)))
        self.spec = spec

    def cell_id(self):
        """A short human-readable identity for progress events."""
        return "{}:{}".format(self.kind, self.spec.seed)

    def run(self):
        raise NotImplementedError

    def __repr__(self):
        return "{}({})".format(type(self).__name__, self.cell_id())


def _deploy_sampling_endpoints(cloud, account, zone_id, count,
                               memory_base_mb=None):
    """The CLI's endpoint recipe, shared by every sampling-style task."""
    from repro.skymesh import SkyMesh
    region = cloud.region_of_zone(zone_id)
    if memory_base_mb is None:
        memory_base_mb = min(2048,
                             region.provider.memory_options_mb[-1] - count)
    mesh = SkyMesh(cloud)
    return mesh.deploy_sampling_endpoints(account, zone_id, count=count,
                                          memory_base_mb=memory_base_mb)


def _auto_requests(cloud, zone_id, n_requests):
    if n_requests is not None:
        return int(n_requests)
    provider = cloud.region_of_zone(zone_id).provider
    return min(1000, provider.concurrency_quota)


class CampaignSummary(object):
    """Compact campaign outcome: aggregates + the final characterization.

    A full :class:`~repro.sampling.campaign.CampaignResult` carries every
    poll observation — tens of thousands of small objects for a long
    campaign, which the parent process must unpickle *serially* as workers
    return.  Cells that only need the end state (``CampaignTask`` with
    ``summary=True``) ship this instead: fixed-size, a few hundred bytes.

    Cells that *do* need every observation no longer have to eat that
    unpickle cost up front: ``SweepEngine(lazy=True)`` keeps each full
    result as a :class:`~repro.engine.lazy.LazyPayload` (pickle bytes)
    until the caller loads it, so the summary is an aggregation choice,
    not a memory workaround.
    """

    __slots__ = ("zone_id", "polls_run", "total_requests", "total_fis",
                 "saturated", "total_cost", "profile")

    def __init__(self, zone_id, polls_run, total_requests, total_fis,
                 saturated, total_cost, profile):
        self.zone_id = zone_id
        self.polls_run = polls_run
        self.total_requests = total_requests
        self.total_fis = total_fis
        self.saturated = saturated
        self.total_cost = total_cost
        self.profile = profile

    @classmethod
    def of(cls, result):
        """Summarize a :class:`CampaignResult` (ground-truth profile)."""
        return cls(result.zone_id, result.polls_run, result.total_requests,
                   result.total_fis, result.saturated, result.total_cost,
                   result.ground_truth())

    def ground_truth(self):
        """The saturation-time characterization (mirrors CampaignResult)."""
        return self.profile

    def shares(self):
        return self.profile.shares()

    def __repr__(self):
        return ("CampaignSummary({}, polls={}, fis={}, saturated={}, "
                "cost={})".format(self.zone_id, self.polls_run,
                                  self.total_fis, self.saturated,
                                  self.total_cost))


class CampaignTask(SweepTask):
    """One saturation campaign in one zone on a private cloud.

    ``n_requests=None`` resolves to the CLI default
    ``min(1000, provider quota)`` inside the worker.  ``summary=True``
    returns a :class:`CampaignSummary` instead of the full
    :class:`CampaignResult`, shrinking what crosses the process boundary
    from one object per request down to a fixed-size digest — the right
    choice for wide grids where only the final characterization matters.
    """

    kind = "campaign"

    def __init__(self, spec, zone_id, endpoints=10, n_requests=None,
                 max_polls=None, failure_threshold=0.5, inter_poll_gap=2.5,
                 memory_base_mb=None, summary=False):
        super().__init__(spec)
        self.zone_id = zone_id
        self.endpoints = int(endpoints)
        self.n_requests = n_requests
        self.max_polls = max_polls
        self.failure_threshold = float(failure_threshold)
        self.inter_poll_gap = float(inter_poll_gap)
        self.memory_base_mb = memory_base_mb
        self.summary = bool(summary)

    def cell_id(self):
        return "{}:{}:{}".format(self.kind, self.zone_id, self.spec.seed)

    def _campaign(self):
        from repro.sampling.campaign import SamplingCampaign
        cloud, account = self.spec.build_with_account(self.zone_id)
        endpoints = _deploy_sampling_endpoints(
            cloud, account, self.zone_id, self.endpoints,
            memory_base_mb=self.memory_base_mb)
        return SamplingCampaign(
            cloud, endpoints,
            n_requests=_auto_requests(cloud, self.zone_id, self.n_requests),
            failure_threshold=self.failure_threshold,
            max_polls=self.max_polls,
            inter_poll_gap=self.inter_poll_gap)

    def run(self):
        """Returns the :class:`CampaignResult` (or its summary)."""
        result = self._campaign().run()
        if self.summary:
            return CampaignSummary.of(result)
        return result


class ProgressiveTask(CampaignTask):
    """A saturation campaign plus its accuracy-versus-cost analysis."""

    kind = "progressive"

    def run(self):
        """Returns the :class:`ProgressiveAnalysis` over the campaign."""
        from repro.sampling.progressive import ProgressiveAnalysis
        return ProgressiveAnalysis(self._campaign().run())


class TemporalTask(SweepTask):
    """A daily or hourly campaign series in one zone (EX-4)."""

    kind = "temporal"
    MODES = ("daily", "hourly")

    def __init__(self, spec, zone_id, mode="daily", periods=7,
                 polls_per_period=6, endpoints=10, n_requests=None,
                 cadence_hours=22.0, memory_base_mb=None):
        super().__init__(spec)
        if mode not in self.MODES:
            raise ConfigurationError(
                "unknown temporal mode {!r}; pick one of {}".format(
                    mode, self.MODES))
        self.zone_id = zone_id
        self.mode = mode
        self.periods = int(periods)
        self.polls_per_period = int(polls_per_period)
        self.endpoints = int(endpoints)
        self.n_requests = n_requests
        self.cadence_hours = float(cadence_hours)
        self.memory_base_mb = memory_base_mb

    def cell_id(self):
        return "{}:{}:{}:{}".format(self.kind, self.mode, self.zone_id,
                                    self.spec.seed)

    def run(self):
        """Daily mode returns ``[CampaignResult]``; hourly mode returns
        ``[CPUCharacterization]`` — both picklable value objects."""
        from repro.sampling.temporal import DailyCampaignSeries, HourlySeries
        cloud, account = self.spec.build_with_account(self.zone_id)
        endpoints = _deploy_sampling_endpoints(
            cloud, account, self.zone_id, self.endpoints,
            memory_base_mb=self.memory_base_mb)
        n_requests = _auto_requests(cloud, self.zone_id, self.n_requests)
        if self.mode == "daily":
            series = DailyCampaignSeries(
                cloud, endpoints, days=self.periods,
                cadence_hours=self.cadence_hours, n_requests=n_requests,
                max_polls=self.polls_per_period)
        else:
            series = HourlySeries(
                cloud, endpoints, hours=self.periods,
                polls_per_hour=self.polls_per_period, n_requests=n_requests)
        return series.run()


#: Default policy roster for study cells: the paper's Figure-10/11 lineup.
DEFAULT_POLICY_SPECS = (("baseline",), ("retry", "retry_slow"),
                        ("retry", "focus_fastest"),
                        ("hybrid", "focus_fastest"))


def build_policy(spec, baseline_zone):
    """Resolve a primitive policy spec tuple into a RoutingPolicy.

    Specs: ``("baseline",)``, ``("retry", variant)``,
    ``("hybrid", variant)``, ``("regional",)``, ``("cheapest",)``.
    """
    from repro.core.policies import (
        BaselinePolicy,
        CheapestCostPolicy,
        HybridPolicy,
        RegionalPolicy,
        RetryRoutingPolicy,
    )
    kind = spec[0]
    if kind == "baseline":
        return BaselinePolicy(baseline_zone)
    if kind == "retry":
        return RetryRoutingPolicy(baseline_zone, spec[1])
    if kind == "hybrid":
        return HybridPolicy(spec[1])
    if kind == "regional":
        return RegionalPolicy()
    if kind == "cheapest":
        return CheapestCostPolicy()
    raise ConfigurationError("unknown policy spec {!r}".format(spec))


class StudyTask(SweepTask):
    """One multi-day routing study (one workload, several zones)."""

    kind = "study"

    def __init__(self, spec, workload_name, zones, baseline_zone=None,
                 days=7, burst_size=1000, polls_per_day=6,
                 sampling_count=10, policy_specs=DEFAULT_POLICY_SPECS):
        super().__init__(spec)
        if not zones:
            raise ConfigurationError("study task needs candidate zones")
        self.workload_name = workload_name
        self.zones = tuple(zones)
        self.baseline_zone = baseline_zone or self.zones[0]
        self.days = int(days)
        self.burst_size = int(burst_size)
        self.polls_per_day = int(polls_per_day)
        self.sampling_count = int(sampling_count)
        self.policy_specs = tuple(tuple(s) for s in policy_specs)

    def cell_id(self):
        return "{}:{}:{}".format(self.kind, self.workload_name,
                                 self.spec.seed)

    def run(self):
        """Returns the :class:`StudyResult`."""
        from repro.core.study import RoutingStudy
        cloud = self.spec.build()
        study = RoutingStudy.from_names(
            cloud, self.workload_name, self.zones,
            sampling_count=self.sampling_count, days=self.days,
            burst_size=self.burst_size, polls_per_day=self.polls_per_day)
        policies = [build_policy(spec, self.baseline_zone)
                    for spec in self.policy_specs]
        return study.run(policies)
