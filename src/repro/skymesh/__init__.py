"""The sky mesh: pre-deployed dynamic functions across the whole sky.

Paper §3.3: "The sky mesh consists of a large deployment of dynamic
functions to every region on AWS Lambda, IBM Code Engine, and Digital Ocean
functions" — with the full memory ladder and both CPU architectures on AWS
(>1,600 deployments), and the much smaller configuration space on the other
providers.  The mesh is the substrate the smart router selects targets from.
"""

from repro.skymesh.mesh import SkyMesh, MeshKey
from repro.skymesh.faaset import ExperimentRunner, ExperimentResult

__all__ = ["SkyMesh", "MeshKey", "ExperimentRunner", "ExperimentResult"]
