"""FaaSET-style experiment helpers.

The FaaS Experiment Toolkit (FaaSET) streamlines running repeatable
experiments against deployed functions and collecting SAAF reports.  The
:class:`ExperimentRunner` here plays that role for the simulator: it fires
repetitions, gathers per-invocation reports, and produces summary tables.
"""

import math

from repro.common.errors import InvocationError
from repro.saaf import report_from_invocation


class ExperimentResult(object):
    """Collected reports plus summary statistics for one experiment."""

    def __init__(self, name, reports, failures=0):
        self.name = name
        self.reports = list(reports)
        self.failures = failures

    def __len__(self):
        return len(self.reports)

    def runtimes_ms(self):
        return [report.runtime_ms for report in self.reports]

    def mean_runtime_ms(self):
        runtimes = self.runtimes_ms()
        return sum(runtimes) / len(runtimes) if runtimes else 0.0

    def stdev_runtime_ms(self):
        runtimes = self.runtimes_ms()
        if len(runtimes) < 2:
            return 0.0
        mean = self.mean_runtime_ms()
        return math.sqrt(sum((r - mean) ** 2 for r in runtimes)
                         / (len(runtimes) - 1))

    def cold_start_fraction(self):
        if not self.reports:
            return 0.0
        return sum(1 for r in self.reports if r.is_cold) / len(self.reports)

    def cpu_breakdown(self):
        """cpu_key -> (count, mean runtime ms)."""
        groups = {}
        for report in self.reports:
            groups.setdefault(report.cpu_key, []).append(report.runtime_ms)
        return {cpu: (len(rts), sum(rts) / len(rts))
                for cpu, rts in groups.items()}

    def __repr__(self):
        return "ExperimentResult({!r}, n={}, mean={:.1f}ms)".format(
            self.name, len(self.reports), self.mean_runtime_ms())


class ExperimentRunner(object):
    """Run repetition experiments against deployments and collect reports."""

    def __init__(self, cloud):
        self.cloud = cloud

    def run(self, deployment, repetitions, payload=None, gap_seconds=0.0,
            name=None, force_new=False):
        """Invoke ``deployment`` ``repetitions`` times, collecting reports.

        ``gap_seconds`` advances the simulated clock between invocations
        (0 keeps them back-to-back, reusing warm FIs; a gap larger than the
        keep-alive forces fresh FIs each time).
        """
        reports = []
        failures = 0
        for _ in range(repetitions):
            try:
                invocation = self.cloud.invoke(deployment, payload=payload,
                                               force_new=force_new)
            except InvocationError:
                failures += 1
            else:
                reports.append(report_from_invocation(invocation))
            if gap_seconds:
                self.cloud.clock.advance(gap_seconds)
        return ExperimentResult(name or deployment.function_name, reports,
                                failures)

    def compare(self, deployments, repetitions, payload=None,
                gap_seconds=0.0):
        """Run the same experiment against several deployments.

        Returns ``{deployment_id: ExperimentResult}`` — FaaSET's side-by-side
        comparison mode.
        """
        return {
            deployment.deployment_id: self.run(
                deployment, repetitions, payload=payload,
                gap_seconds=gap_seconds,
                name="{}@{}".format(deployment.function_name,
                                    deployment.zone_id))
            for deployment in deployments
        }
