"""Sky mesh construction and lookup.

A mesh key is ``(zone_id, memory_mb, arch, function_name)``; the mesh maps
keys to live :class:`~repro.cloudsim.cloud.Deployment` objects and offers
the two bulk builders the experiments need:

* :meth:`SkyMesh.deploy_everywhere` — the dynamic-function ladder in every
  zone (every memory setting × architecture the provider offers);
* :meth:`SkyMesh.deploy_sampling_endpoints` — the paper's 100 near-identical
  sampling functions in one zone, each with a unique memory setting and a
  unique code package so polls against different endpoints never share warm
  FIs.
"""

import collections

from repro.common.errors import ConfigurationError, DeploymentError
from repro.cloudsim.handlers import SleepHandler

MeshKey = collections.namedtuple(
    "MeshKey", ["zone_id", "memory_mb", "arch", "function_name"])

# The paper's AWS ladder: 128 MB .. 10 GB, x86 and ARM.
AWS_MESH_MEMORY_LADDER = (128, 256, 512, 1024, 2048, 4096, 6144, 8192,
                          10240)


class SkyMesh(object):
    """Registry of dynamic-function deployments across the sky."""

    def __init__(self, cloud):
        self.cloud = cloud
        self._deployments = {}

    def __len__(self):
        return len(self._deployments)

    # -- registration/lookup ------------------------------------------------------
    def register(self, deployment):
        key = MeshKey(deployment.zone_id, deployment.memory_mb,
                      deployment.arch, deployment.function_name)
        if key in self._deployments:
            raise ConfigurationError(
                "mesh already has a deployment at {}".format((key,)))
        self._deployments[key] = deployment
        return key

    def endpoint(self, zone_id, memory_mb, arch="x86_64",
                 function_name="dynamic"):
        key = MeshKey(zone_id, memory_mb, arch, function_name)
        try:
            return self._deployments[key]
        except KeyError:
            raise DeploymentError(
                "no mesh deployment at {}".format((key,)))

    def lookup(self, zone_id=None, region=None, provider=None,
               memory_mb=None, arch=None, function_name=None):
        """All deployments matching the given filters."""
        matches = []
        for key, deployment in sorted(self._deployments.items()):
            if zone_id is not None and key.zone_id != zone_id:
                continue
            if region is not None and deployment.region_name != region:
                continue
            if provider is not None and deployment.provider.name != provider:
                continue
            if memory_mb is not None and key.memory_mb != memory_mb:
                continue
            if arch is not None and key.arch != arch:
                continue
            if (function_name is not None
                    and key.function_name != function_name):
                continue
            matches.append(deployment)
        return matches

    def zones(self):
        return sorted({key.zone_id for key in self._deployments})

    def deployment_count(self, provider=None):
        if provider is None:
            return len(self._deployments)
        return sum(1 for d in self._deployments.values()
                   if d.provider.name == provider)

    # -- bulk builders -----------------------------------------------------------------
    def deploy_everywhere(self, accounts, handler_factory,
                          memory_ladder=None, function_name="dynamic",
                          providers=None):
        """Deploy a dynamic function across every zone of the sky.

        ``accounts`` maps provider name -> :class:`CloudAccount`.
        ``handler_factory(zone_id, memory_mb, arch)`` builds the handler for
        each deployment.  ``memory_ladder`` overrides the per-provider
        ladder (defaults: the paper's AWS ladder; each other provider's full
        memory option list).  Returns the deployments created.
        """
        created = []
        for region_name in self.cloud.region_names():
            region = self.cloud.region(region_name)
            provider = region.provider
            if providers is not None and provider.name not in providers:
                continue
            account = accounts.get(provider.name)
            if account is None:
                continue
            if memory_ladder is not None:
                ladder = memory_ladder
            elif provider.name == "aws":
                ladder = AWS_MESH_MEMORY_LADDER
            else:
                ladder = provider.memory_options_mb
            for zone_id in region.zone_ids():
                for memory_mb in ladder:
                    for arch in provider.archs:
                        deployment = self.cloud.deploy(
                            account, zone_id, function_name, memory_mb,
                            arch=arch,
                            handler=handler_factory(zone_id, memory_mb,
                                                    arch))
                        self.register(deployment)
                        created.append(deployment)
        return created

    def deploy_sampling_endpoints(self, account, zone_id, count=100,
                                  sleep_s=0.25, memory_base_mb=2048):
        """Deploy the paper's sampling endpoint set to one zone.

        ``count`` near-identical sleep functions, each with a **unique
        memory setting** (base, base+1, ...) and its own code package, so
        that successive polls hit disjoint warm-FI sets (paper §3.1 deploys
        100 such functions with memory 10,140-10,240 MB; we default the
        base to the 2 GB setting EX-1 found cost-optimal).
        """
        if count <= 0:
            raise ConfigurationError("endpoint count must be positive")
        endpoints = []
        for index in range(count):
            deployment = self.cloud.deploy(
                account, zone_id,
                "sampler-{:03d}".format(index),
                memory_base_mb + index,
                handler=SleepHandler(sleep_s))
            self.register(deployment)
            endpoints.append(deployment)
        return endpoints
