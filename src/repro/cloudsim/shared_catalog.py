"""Build the region catalog's plan once and share it across sweep workers.

:meth:`~repro.engine.spec.CloudSpec.build` used to re-derive every zone's
build parameters from the catalog spec tables for every grid cell — in a
42-worker sweep that is tens of thousands of redundant table scans and
affinity/scaling resolutions.  This module splits catalog installation
into two phases:

1. **Plan** (:func:`catalog_plan`) — a pure-data description of every
   region: provider name, geo coordinates, and each zone's build recipe
   (:func:`repro.cloudsim.catalog.zone_recipe`).  Computed once per
   process and memoized; plans are picklable and never mutated.
2. **Install** (:func:`install_plan`) — materialize live zones from the
   plan into a :class:`~repro.cloudsim.cloud.Cloud`, honouring the same
   ``aws_only`` / ``regions`` filters and the same region/zone ordering
   as :func:`~repro.cloudsim.catalog.install_catalog` (which remains the
   executable reference; an equivalence test pins the two together).

For process-pool sweeps, :class:`CatalogShare` exports the pickled plan
into :mod:`multiprocessing.shared_memory`; the pool's initializer
(:func:`attach_worker`) maps it read-only, unpickles once per worker,
and every subsequent :meth:`CloudSpec.build` in that worker reuses the
attached plan — zero per-cell table work and one catalog build per
process tree instead of one per worker spawn.  Everything degrades
gracefully: no shared memory → each worker memoizes its own plan.
"""

import pickle

from repro.cloudsim.catalog import (
    AWS_REGION_SPECS,
    DO_REGION_SPECS,
    IBM_REGION_SPECS,
    PACK_REGION_SPECS,
    zone_from_recipe,
    zone_recipe,
)
from repro.cloudsim.network import GeoPoint
from repro.cloudsim.provider import provider_by_name
from repro.cloudsim.region import Region

try:  # gated: absent on platforms without POSIX/Windows shared memory
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exercised via the None path
    _shared_memory = None

#: Memoized full-catalog plan for this process.
_PLAN = None

#: Plan attached from another process's shared-memory export (workers).
_ATTACHED_PLAN = None


def catalog_plan():
    """The full catalog as pure data, memoized per process.

    A tuple of region entries ``{"name", "provider", "lat", "lon",
    "zones": (recipe, ...)}`` in exactly the order
    :func:`install_catalog` installs them: AWS regions sorted by name,
    then IBM, then Digital Ocean.  Filtering (``aws_only``/``regions``)
    happens at install time so one plan serves every restriction.
    """
    global _PLAN
    if _PLAN is None:
        entries = []
        aws = provider_by_name("aws")
        for name in sorted(AWS_REGION_SPECS):
            lat, lon, zones = AWS_REGION_SPECS[name]
            entries.append({
                "name": name, "provider": "aws", "lat": lat, "lon": lon,
                "zones": tuple(
                    zone_recipe(name + suffix, zones[suffix], aws)
                    for suffix in sorted(zones)),
            })
        for provider_name, specs in (("ibm", IBM_REGION_SPECS),
                                     ("do", DO_REGION_SPECS)):
            provider = provider_by_name(provider_name)
            for name in sorted(specs):
                lat, lon, spec = specs[name]
                entries.append({
                    "name": name, "provider": provider_name,
                    "lat": lat, "lon": lon,
                    "zones": (zone_recipe(name, spec, provider),),
                })
        # Scenario-pack regions ride the same plan (adapters survive the
        # pickle round-trip with it), flagged so install_plan only
        # materializes them when explicitly named — mirroring
        # install_catalog's opt-in behaviour.
        for provider_name in sorted(PACK_REGION_SPECS):
            pack_specs = PACK_REGION_SPECS[provider_name]
            provider = provider_by_name(provider_name)
            for name in sorted(pack_specs):
                lat, lon, zones = pack_specs[name]
                entries.append({
                    "name": name, "provider": provider_name,
                    "lat": lat, "lon": lon, "pack": True,
                    "zones": tuple(
                        zone_recipe(name + suffix, zones[suffix], provider)
                        for suffix in sorted(zones)),
                })
        _PLAN = tuple(entries)
    return _PLAN


def active_plan():
    """The plan builds should use: the attached share, else the local memo."""
    if _ATTACHED_PLAN is not None:
        return _ATTACHED_PLAN
    return catalog_plan()


def install_plan(cloud, plan, aws_only=False, regions=None):
    """Install ``plan``'s regions into ``cloud``.

    Mirrors :func:`~repro.cloudsim.catalog.install_catalog` exactly —
    same filters, same ordering, same zone construction (both funnel
    through :func:`zone_from_recipe`) — so a plan-based build is
    indistinguishable from a table-based one.
    """
    for entry in plan:
        if aws_only and entry["provider"] != "aws":
            continue
        if regions is not None and entry["name"] not in regions:
            continue
        if entry.get("pack") and regions is None:
            # Pack regions are opt-in: installed only when named.
            continue
        provider = provider_by_name(entry["provider"])
        region = Region(entry["name"], provider,
                        GeoPoint(entry["lat"], entry["lon"]))
        for recipe in entry["zones"]:
            region.add_zone(zone_from_recipe(recipe, cloud.clock,
                                             cloud.seed))
        cloud.add_region(region)
    return cloud


class CatalogShare(object):
    """A pickled catalog plan living in OS shared memory.

    The parent exports once before spawning the pool, passes
    ``(share.name, share.size)`` to the pool initializer, and disposes
    after the pool shuts down.  Workers attach by name, unpickle once,
    and close their mapping immediately — the plan itself lives on as
    ordinary objects in the worker.
    """

    __slots__ = ("_shm", "size")

    def __init__(self, shm, size):
        self._shm = shm
        self.size = size

    @property
    def name(self):
        return self._shm.name

    @classmethod
    def export(cls):
        """Export the memoized plan; None when shared memory is unusable."""
        if _shared_memory is None:
            return None
        payload = pickle.dumps(catalog_plan(),
                               protocol=pickle.HIGHEST_PROTOCOL)
        try:
            shm = _shared_memory.SharedMemory(create=True,
                                              size=len(payload))
        except (OSError, ValueError):
            return None
        shm.buf[:len(payload)] = payload
        return cls(shm, len(payload))

    def dispose(self):
        """Close the mapping and unlink the segment (parent side)."""
        try:
            self._shm.close()
            self._shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass


def attach_worker(name, size):
    """Pool-initializer: attach the parent's exported plan in this worker.

    Never raises — a worker that cannot attach (segment gone, platform
    quirk) silently falls back to memoizing its own plan, which is
    slower but identical.
    """
    global _ATTACHED_PLAN
    if _shared_memory is None:
        return
    try:
        shm = _shared_memory.SharedMemory(name=name)
        try:
            _ATTACHED_PLAN = pickle.loads(bytes(shm.buf[:size]))
        finally:
            shm.close()
    except Exception:  # noqa: BLE001 — degrade, never kill the worker
        _ATTACHED_PLAN = None


def detach_worker():
    """Drop an attached plan (tests; no-op when nothing is attached)."""
    global _ATTACHED_PLAN
    _ATTACHED_PLAN = None
