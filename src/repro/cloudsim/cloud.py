"""The top-level cloud facade: accounts, deployments, invocations, polls.

:class:`Cloud` owns the simulated clock, the region/zone topology, and the
accounts.  Everything above this layer (sampling, sky mesh, smart routing)
talks to the cloud exclusively through:

* :meth:`Cloud.deploy` — create a function deployment in a zone;
* :meth:`Cloud.invoke` — one request, with warm reuse and retry hooks;
* :meth:`Cloud.place_batch` / :meth:`Cloud.poll` — a burst of parallel
  requests (the sampling hot path);
* :meth:`Cloud.hold` — keep an FI busy (billed!) so a re-issued request
  must land elsewhere.
"""

from repro.common.errors import (
    ConfigurationError,
    DeploymentError,
    UnknownRegionError,
    UnknownZoneError,
)
from repro.common.ids import make_id_factory
from repro.common.rng import derive_rng
from repro.faults.injector import NULL_INJECTOR
from repro.obs.hooks import NULL_BUS
from repro.simclock import SimClock
from repro.cloudsim.account import CloudAccount
from repro.cloudsim.handlers import SleepHandler
from repro.cloudsim.network import NetworkModel
from repro.cloudsim.provider import provider_by_name


class Deployment(object):
    """A function deployed to one availability zone.

    ``billing`` and ``arrival_window_s`` are invariants of the deployment
    (provider pricing table, memory-dependent scheduling spread); they are
    resolved once here so the per-request and per-poll hot paths do not
    repeat the lookups on every call.
    """

    __slots__ = ("deployment_id", "account", "provider", "region_name",
                 "zone_id", "function_name", "memory_mb", "arch", "handler",
                 "billing", "arrival_window_s")

    def __init__(self, deployment_id, account, provider, region_name,
                 zone_id, function_name, memory_mb, arch, handler):
        self.deployment_id = deployment_id
        self.account = account
        self.provider = provider
        self.region_name = region_name
        self.zone_id = zone_id
        self.function_name = function_name
        self.memory_mb = memory_mb
        self.arch = arch
        self.handler = handler
        self.billing = provider.billing
        self.arrival_window_s = provider.arrival_window(memory_mb)

    def __repr__(self):
        return ("Deployment({!r}: {!r} @ {} {}MB {})".format(
            self.deployment_id, self.function_name, self.zone_id,
            self.memory_mb, self.arch))


class Invocation(object):
    """The observable outcome of a single request."""

    __slots__ = ("request_id", "deployment_id", "zone_id", "cpu_key",
                 "instance_id", "host_id", "reused", "cold_start_s",
                 "runtime_s", "latency_s", "bill", "timestamp", "response")

    def __init__(self, request_id, deployment_id, zone_id, cpu_key,
                 instance_id, host_id, reused, cold_start_s, runtime_s,
                 latency_s, bill, timestamp, response):
        self.request_id = request_id
        self.deployment_id = deployment_id
        self.zone_id = zone_id
        self.cpu_key = cpu_key
        self.instance_id = instance_id
        self.host_id = host_id
        self.reused = reused
        self.cold_start_s = cold_start_s
        self.runtime_s = runtime_s
        self.latency_s = latency_s
        self.bill = bill
        self.timestamp = timestamp
        self.response = response

    @property
    def is_cold(self):
        return not self.reused

    def __repr__(self):
        return "Invocation({} on {} cpu={} {:.3f}s)".format(
            self.request_id, self.zone_id, self.cpu_key, self.runtime_s)


class Cloud(object):
    """A multi-provider, multi-region simulated sky of FaaS platforms."""

    def __init__(self, clock=None, seed=0, network=None):
        self.clock = clock if clock is not None else SimClock()
        self.seed = seed
        self.rng = derive_rng(seed, "cloud")
        self.network = network or NetworkModel()
        self.regions = {}
        self._zone_index = {}
        self.accounts = {}
        self._deployments = {}
        self._new_request_id = make_id_factory("req")
        self._new_deployment_id = make_id_factory("dep")
        self.bus = NULL_BUS
        self.faults = NULL_INJECTOR

    # -- observability ------------------------------------------------------------
    def attach_bus(self, bus):
        """Opt in to observability: wire ``bus`` through every zone and
        host pool.  Zones added later inherit it automatically."""
        self.bus = bus
        for region, zone in self._zone_index.values():
            zone.attach_bus(bus)
        return bus

    # -- fault injection -----------------------------------------------------------
    def attach_faults(self, injector):
        """Opt in to fault injection: wire ``injector`` through every zone.
        Zones added later inherit it automatically."""
        self.faults = injector
        for region, zone in self._zone_index.values():
            zone.attach_faults(injector)
        return injector

    # -- topology ---------------------------------------------------------------
    def add_region(self, region):
        if region.name in self.regions:
            raise ConfigurationError(
                "duplicate region {!r}".format(region.name))
        self.regions[region.name] = region
        for zone_id, zone in region.zones.items():
            if zone_id in self._zone_index:
                raise ConfigurationError(
                    "duplicate zone {!r}".format(zone_id))
            self._zone_index[zone_id] = (region, zone)
            if self.bus is not NULL_BUS:
                zone.attach_bus(self.bus)
            if self.faults is not NULL_INJECTOR:
                zone.attach_faults(self.faults)
        return region

    def region(self, name):
        try:
            return self.regions[name]
        except KeyError:
            raise UnknownRegionError(name)

    def zone(self, zone_id):
        try:
            return self._zone_index[zone_id][1]
        except KeyError:
            raise UnknownZoneError(zone_id)

    def region_of_zone(self, zone_id):
        try:
            return self._zone_index[zone_id][0]
        except KeyError:
            raise UnknownZoneError(zone_id)

    def region_names(self, provider=None):
        names = sorted(self.regions)
        if provider is not None:
            names = [n for n in names
                     if self.regions[n].provider.name == provider]
        return names

    def zone_ids(self, provider=None):
        ids = []
        for name in self.region_names(provider):
            ids.extend(self.regions[name].zone_ids())
        return ids

    # -- accounts -----------------------------------------------------------------
    def create_account(self, account_id, provider="aws"):
        if account_id in self.accounts:
            raise ConfigurationError(
                "duplicate account {!r}".format(account_id))
        account = CloudAccount(account_id, provider_by_name(provider))
        self.accounts[account_id] = account
        return account

    # -- deployments ---------------------------------------------------------------
    def deploy(self, account, zone_id, function_name, memory_mb,
               arch="x86_64", handler=None):
        """Deploy ``function_name`` to ``zone_id`` under ``account``.

        The zone's provider must match the account's; memory and
        architecture are validated against the provider's envelope.
        """
        region = self.region_of_zone(zone_id)
        provider = region.provider
        if provider.name != account.provider.name:
            raise DeploymentError(
                "account {!r} is on {!r} but zone {!r} belongs to "
                "{!r}".format(account.account_id, account.provider.name,
                              zone_id, provider.name))
        memory_mb = provider.validate_memory(memory_mb)
        arch = provider.validate_arch(arch)
        if handler is None:
            handler = SleepHandler(0.25)
        deployment = Deployment(
            deployment_id=self._new_deployment_id(),
            account=account,
            provider=provider,
            region_name=region.name,
            zone_id=zone_id,
            function_name=function_name,
            memory_mb=memory_mb,
            arch=arch,
            handler=handler,
        )
        self._deployments[deployment.deployment_id] = deployment
        account.register_deployment(deployment)
        return deployment

    def deployment(self, deployment_id):
        try:
            return self._deployments[deployment_id]
        except KeyError:
            raise DeploymentError(
                "unknown deployment {!r}".format(deployment_id))

    # -- invocation: single request ---------------------------------------------------
    def invoke(self, deployment, payload=None, now=None, force_new=False,
               client=None, bill_category="invocation"):
        """Execute one request against ``deployment``.

        Returns an :class:`Invocation`.  Raises
        :class:`~repro.common.errors.SaturationError` if the zone is full.
        """
        now = self.clock.now if now is None else float(now)
        zone = self.zone(deployment.zone_id)
        handler = deployment.handler
        faults = self.faults
        if faults.enabled:
            faults.before_invoke(deployment.zone_id, now)
            force_new = force_new or faults.forces_cold(deployment.zone_id,
                                                        now)

        def duration_fn(cpu_key):
            return handler.duration_on(cpu_key, self.rng, payload)

        fi, reused = zone.invoke_one(deployment.deployment_id, duration_fn,
                                     now=now, force_new=force_new)
        runtime = fi.busy_until - now
        cold_start = 0.0 if reused else deployment.provider.cold_start_s
        if faults.enabled and cold_start:
            cold_start *= faults.cold_start_multiplier(deployment.zone_id,
                                                       now)
        latency = runtime + cold_start
        spike = (faults.extra_latency(deployment.zone_id, now)
                 if faults.enabled else 0.0)
        if client is not None:
            region = self.region_of_zone(deployment.zone_id)
            latency += self.network.round_trip(client, region.geo,
                                               rng=self.rng, extra_s=spike)
        else:
            latency += spike
        bill = deployment.billing.bill(
            deployment.memory_mb, runtime, deployment.arch, requests=1)
        deployment.account.record_bill(bill, category=bill_category)
        bus = self.bus
        if bus.enabled:
            bus.emit("cloud.invoke", now,
                     zone=deployment.zone_id, cpu=fi.cpu_key, reused=reused,
                     latency_s=latency, runtime_s=runtime,
                     cost_usd=float(bill.total),
                     deployment=deployment.deployment_id,
                     category=bill_category)
        return Invocation(
            request_id=self._new_request_id(),
            deployment_id=deployment.deployment_id,
            zone_id=deployment.zone_id,
            cpu_key=fi.cpu_key,
            instance_id=fi.instance_id,
            host_id=fi.host_id,
            reused=reused,
            cold_start_s=cold_start,
            runtime_s=runtime,
            latency_s=latency,
            bill=bill,
            timestamp=now,
            response=handler.respond(fi.cpu_key, payload),
        )

    def hold(self, deployment, invocation_or_fi, hold_seconds, now=None,
             bill_category="retry-hold"):
        """Keep an FI busy for ``hold_seconds`` — billed runtime.

        Retry strategies hold poorly-placed FIs so that re-issued requests
        cannot be routed back onto them.
        """
        now = self.clock.now if now is None else float(now)
        zone = self.zone(deployment.zone_id)
        fi = invocation_or_fi
        if isinstance(invocation_or_fi, Invocation):
            fi = self._find_fi(zone, deployment, invocation_or_fi.instance_id)
        if fi is not None:
            zone.hold_instance(fi, hold_seconds, now=now)
        # A hold extends an in-flight request, so there is no per-request
        # fee — only the extra billed compute time.
        bill = deployment.billing.bill(
            deployment.memory_mb, hold_seconds, deployment.arch, requests=1)
        bill.request.usd = 0.0
        deployment.account.record_bill(bill, category=bill_category)
        bus = self.bus
        if bus.enabled:
            bus.emit("cloud.hold", now, zone=deployment.zone_id,
                     hold_s=float(hold_seconds), cost_usd=float(bill.total))
        return bill

    # -- invocation: batched ------------------------------------------------------------
    def place_batch(self, deployment, n_requests, duration, window=None,
                    now=None, bill_category="poll", charge=True):
        """Fire ``n_requests`` parallel requests of ``duration`` seconds.

        ``window`` defaults to the provider's arrival-window model for the
        deployment's memory setting.  The account's concurrency quota caps
        the batch; zone saturation failures surface in the result's
        ``failed`` count.  Only served requests are billed; callers that
        compute exact per-CPU bills themselves (the batched burst runner)
        pass ``charge=False``.
        """
        now = self.clock.now if now is None else float(now)
        zone = self.zone(deployment.zone_id)
        if self.faults.enabled:
            self.faults.before_batch(deployment.zone_id, now)
        admitted = deployment.account.admit_batch(n_requests)
        if window is None:
            window = deployment.arrival_window_s
        result = zone.place_batch(deployment.deployment_id, admitted,
                                  duration, window, now=now)
        bill = deployment.billing.bill(
            deployment.memory_mb, duration, deployment.arch,
            requests=result.served)
        if charge:
            deployment.account.record_bill(bill, category=bill_category)
        return result, bill

    def poll(self, deployment, n_requests=1000, now=None,
             bill_category="poll"):
        """One sampling poll: a parallel burst against a sleep function."""
        handler = deployment.handler
        duration = handler.duration_on(None, self.rng)
        return self.place_batch(deployment, n_requests, duration,
                                now=now, bill_category=bill_category)

    # -- internals ------------------------------------------------------------------------
    @staticmethod
    def _find_fi(zone, deployment, instance_id):
        for fi in zone._fi_index.get(deployment.deployment_id, []):
            if fi.instance_id == instance_id:
                return fi
        return None

    def __repr__(self):
        return "Cloud(regions={}, accounts={})".format(
            len(self.regions), len(self.accounts))
