"""The top-level cloud facade: accounts, deployments, invocations, polls.

:class:`Cloud` owns the simulated clock, the region/zone topology, and the
accounts.  Everything above this layer (sampling, sky mesh, smart routing)
talks to the cloud exclusively through:

* :meth:`Cloud.deploy` — create a function deployment in a zone;
* :meth:`Cloud.invoke` — one request, with warm reuse and retry hooks;
* :meth:`Cloud.place_batch` / :meth:`Cloud.poll` — a burst of parallel
  requests (the sampling hot path);
* :meth:`Cloud.hold` — keep an FI busy (billed!) so a re-issued request
  must land elsewhere.
"""

import numpy as np

from repro.common.distributions import CategoricalDistribution
from repro.common.errors import (
    ConfigurationError,
    DeploymentError,
    UnknownRegionError,
    UnknownZoneError,
)
from repro.common.ids import make_id_factory
from repro.common.rng import derive_rng
from repro.cloudsim.billing import duration_ticks
from repro.faults.injector import NULL_INJECTOR
from repro.obs.hooks import NULL_BUS
from repro.simclock import SimClock
from repro.cloudsim.account import CloudAccount
from repro.cloudsim.handlers import SleepHandler
from repro.cloudsim.network import NetworkModel
from repro.cloudsim.provider import provider_by_name


class Deployment(object):
    """A function deployed to one availability zone.

    ``billing`` and ``arrival_window_s`` are invariants of the deployment
    (provider pricing table, memory-dependent scheduling spread); they are
    resolved once here so the per-request and per-poll hot paths do not
    repeat the lookups on every call.
    """

    __slots__ = ("deployment_id", "account", "provider", "region_name",
                 "zone_id", "function_name", "memory_mb", "arch", "handler",
                 "billing", "arrival_window_s", "cold_start",
                 "function_timeout")

    def __init__(self, deployment_id, account, provider, region_name,
                 zone_id, function_name, memory_mb, arch, handler):
        self.deployment_id = deployment_id
        self.account = account
        self.provider = provider
        self.region_name = region_name
        self.zone_id = zone_id
        self.function_name = function_name
        self.memory_mb = memory_mb
        self.arch = arch
        self.handler = handler
        self.billing = provider.billing
        self.arrival_window_s = provider.arrival_window(memory_mb)
        # Adapter-resolved invariants, cached off the provider so the
        # per-request and per-poll hot paths never re-dereference the
        # adapter: the cold-start distribution and the enforced runtime
        # ceiling.
        self.cold_start = provider.adapter.cold_start
        self.function_timeout = provider.function_timeout

    def __repr__(self):
        return ("Deployment({!r}: {!r} @ {} {}MB {})".format(
            self.deployment_id, self.function_name, self.zone_id,
            self.memory_mb, self.arch))


class Invocation(object):
    """The observable outcome of a single request."""

    __slots__ = ("request_id", "deployment_id", "zone_id", "cpu_key",
                 "instance_id", "host_id", "reused", "cold_start_s",
                 "runtime_s", "latency_s", "bill", "timestamp", "response",
                 "timed_out")

    def __init__(self, request_id, deployment_id, zone_id, cpu_key,
                 instance_id, host_id, reused, cold_start_s, runtime_s,
                 latency_s, bill, timestamp, response, timed_out=False):
        self.request_id = request_id
        self.deployment_id = deployment_id
        self.zone_id = zone_id
        self.cpu_key = cpu_key
        self.instance_id = instance_id
        self.host_id = host_id
        self.reused = reused
        self.cold_start_s = cold_start_s
        self.runtime_s = runtime_s
        self.latency_s = latency_s
        self.bill = bill
        self.timestamp = timestamp
        self.response = response
        #: True when the runtime hit the provider's ``function_timeout``:
        #: the platform killed the request at the ceiling and billed the
        #: full timeout.
        self.timed_out = timed_out

    @property
    def is_cold(self):
        return not self.reused

    def __repr__(self):
        return "Invocation({} on {} cpu={} {:.3f}s)".format(
            self.request_id, self.zone_id, self.cpu_key, self.runtime_s)


def _request_order_total(chunks):
    """Sum float64 chunks in request order with numpy's pairwise reduction.

    Both ``poll_batch`` paths feed this the same values in the same order
    (one chunk per CPU group), so the result is bit-identical no matter
    how the chunks were produced.
    """
    if not chunks:
        return 0.0
    if len(chunks) == 1:
        return float(np.sum(chunks[0]))
    return float(np.sum(np.concatenate(chunks)))


class BatchInvocation(object):
    """Per-request record from the looped ``poll_batch`` spec path.

    Deliberately minimal — the vectorized path never materializes these;
    they exist so the executable spec stays inspectable in tests.
    """

    __slots__ = ("cpu_key", "reused", "runtime_s", "cold_start_s",
                 "latency_s", "billed_ticks")

    def __init__(self, cpu_key, reused, runtime_s, cold_start_s, latency_s,
                 billed_ticks):
        self.cpu_key = cpu_key
        self.reused = reused
        self.runtime_s = runtime_s
        self.cold_start_s = cold_start_s
        self.latency_s = latency_s
        self.billed_ticks = billed_ticks

    @property
    def is_cold(self):
        return not self.reused

    def __repr__(self):
        return "BatchInvocation(cpu={} reused={} {:.3f}s)".format(
            self.cpu_key, self.reused, self.runtime_s)


class BatchPollResult(object):
    """Aggregated outcome of one :meth:`Cloud.poll_batch` burst.

    One object per batch regardless of ``n_requests``: counts, per-CPU
    request/cold maps, exact integer billing ticks, and float64 totals.
    ``records`` is None on the vectorized path and the list of
    :class:`BatchInvocation` on the looped spec path.
    """

    __slots__ = ("deployment_id", "zone_id", "requested", "served",
                 "failed", "cold_starts", "request_cpu_counts",
                 "cold_cpu_counts", "billed_ticks", "runtime_total_s",
                 "latency_total_s", "bill", "duration", "timestamp",
                 "placement", "records", "latencies", "timeouts")

    def __init__(self, deployment_id, zone_id, requested, served, failed,
                 cold_starts, request_cpu_counts, cold_cpu_counts,
                 billed_ticks, runtime_total_s, latency_total_s, bill,
                 duration, timestamp, placement, records=None,
                 latencies=None, timeouts=0):
        self.deployment_id = deployment_id
        self.zone_id = zone_id
        self.requested = requested
        self.served = served
        self.failed = failed
        self.cold_starts = cold_starts
        self.request_cpu_counts = request_cpu_counts
        self.cold_cpu_counts = cold_cpu_counts
        self.billed_ticks = billed_ticks
        self.runtime_total_s = runtime_total_s
        self.latency_total_s = latency_total_s
        self.bill = bill
        self.duration = duration
        self.timestamp = timestamp
        self.placement = placement
        self.records = records
        #: Optional float64 array of per-request latencies in request
        #: order (``keep_latencies=True``); the serving gateway feeds it
        #: into p50/p95/p99 accounting without per-request objects.
        self.latencies = latencies
        #: Requests whose drawn runtime exceeded the provider's
        #: ``function_timeout`` — they still count as served (and billed,
        #: at the capped timeout), so this is a subset of ``served``.
        self.timeouts = timeouts

    @property
    def failure_rate(self):
        if self.requested == 0:
            return 0.0
        return self.failed / float(self.requested)

    @property
    def mean_runtime_s(self):
        return self.runtime_total_s / self.served if self.served else 0.0

    @property
    def mean_latency_s(self):
        return self.latency_total_s / self.served if self.served else 0.0

    def cpu_distribution(self):
        """Served requests per CPU as a categorical distribution."""
        return CategoricalDistribution(self.request_cpu_counts)

    def aggregate_key(self):
        """Bit-exact fingerprint of every aggregate.

        Floats are rendered with ``float.hex`` so two results compare
        equal only when each total matches to the last bit — the form the
        vectorized-vs-looped equivalence tests and the benchmark's
        byte-equality gate compare.
        """
        return (
            self.requested, self.served, self.failed, self.cold_starts,
            tuple(sorted(self.request_cpu_counts.items())),
            tuple(sorted(self.cold_cpu_counts.items())),
            int(self.billed_ticks),
            float(self.runtime_total_s).hex(),
            float(self.latency_total_s).hex(),
            float(self.bill.compute).hex(),
            float(self.bill.total).hex(),
            self.bill.requests,
            self.timeouts,
        )

    def __repr__(self):
        return ("BatchPollResult({} served={}/{} cold={} "
                "ticks={})".format(self.zone_id, self.served,
                                   self.requested, self.cold_starts,
                                   self.billed_ticks))


class Cloud(object):
    """A multi-provider, multi-region simulated sky of FaaS platforms."""

    def __init__(self, clock=None, seed=0, network=None):
        self.clock = clock if clock is not None else SimClock()
        self.seed = seed
        self.rng = derive_rng(seed, "cloud")
        self.network = network or NetworkModel()
        self.regions = {}
        self._zone_index = {}
        self.accounts = {}
        self._deployments = {}
        self._new_request_id = make_id_factory("req")
        self._new_deployment_id = make_id_factory("dep")
        self.bus = NULL_BUS
        self.faults = NULL_INJECTOR

    # -- observability ------------------------------------------------------------
    def attach_bus(self, bus):
        """Opt in to observability: wire ``bus`` through every zone and
        host pool.  Zones added later inherit it automatically."""
        self.bus = bus
        for region, zone in self._zone_index.values():
            zone.attach_bus(bus)
        return bus

    # -- fault injection -----------------------------------------------------------
    def attach_faults(self, injector):
        """Opt in to fault injection: wire ``injector`` through every zone.
        Zones added later inherit it automatically."""
        self.faults = injector
        for region, zone in self._zone_index.values():
            zone.attach_faults(injector)
        return injector

    # -- topology ---------------------------------------------------------------
    def add_region(self, region):
        if region.name in self.regions:
            raise ConfigurationError(
                "duplicate region {!r}".format(region.name))
        self.regions[region.name] = region
        for zone_id, zone in region.zones.items():
            if zone_id in self._zone_index:
                raise ConfigurationError(
                    "duplicate zone {!r}".format(zone_id))
            self._zone_index[zone_id] = (region, zone)
            if self.bus is not NULL_BUS:
                zone.attach_bus(self.bus)
            if self.faults is not NULL_INJECTOR:
                zone.attach_faults(self.faults)
        return region

    def region(self, name):
        try:
            return self.regions[name]
        except KeyError:
            raise UnknownRegionError(name)

    def zone(self, zone_id):
        try:
            return self._zone_index[zone_id][1]
        except KeyError:
            raise UnknownZoneError(zone_id)

    def region_of_zone(self, zone_id):
        try:
            return self._zone_index[zone_id][0]
        except KeyError:
            raise UnknownZoneError(zone_id)

    def region_names(self, provider=None):
        names = sorted(self.regions)
        if provider is not None:
            names = [n for n in names
                     if self.regions[n].provider.name == provider]
        return names

    def zone_ids(self, provider=None):
        ids = []
        for name in self.region_names(provider):
            ids.extend(self.regions[name].zone_ids())
        return ids

    # -- accounts -----------------------------------------------------------------
    def create_account(self, account_id, provider="aws"):
        if account_id in self.accounts:
            raise ConfigurationError(
                "duplicate account {!r}".format(account_id))
        account = CloudAccount(account_id, provider_by_name(provider))
        self.accounts[account_id] = account
        return account

    # -- deployments ---------------------------------------------------------------
    def deploy(self, account, zone_id, function_name, memory_mb,
               arch="x86_64", handler=None):
        """Deploy ``function_name`` to ``zone_id`` under ``account``.

        The zone's provider must match the account's; memory and
        architecture are validated against the provider's envelope.
        """
        region = self.region_of_zone(zone_id)
        provider = region.provider
        if provider.name != account.provider.name:
            raise DeploymentError(
                "account {!r} is on {!r} but zone {!r} belongs to "
                "{!r}".format(account.account_id, account.provider.name,
                              zone_id, provider.name))
        memory_mb = provider.validate_memory(memory_mb)
        arch = provider.validate_arch(arch)
        if handler is None:
            handler = SleepHandler(0.25)
        deployment = Deployment(
            deployment_id=self._new_deployment_id(),
            account=account,
            provider=provider,
            region_name=region.name,
            zone_id=zone_id,
            function_name=function_name,
            memory_mb=memory_mb,
            arch=arch,
            handler=handler,
        )
        self._deployments[deployment.deployment_id] = deployment
        account.register_deployment(deployment)
        return deployment

    def deployment(self, deployment_id):
        try:
            return self._deployments[deployment_id]
        except KeyError:
            raise DeploymentError(
                "unknown deployment {!r}".format(deployment_id))

    # -- invocation: single request ---------------------------------------------------
    def invoke(self, deployment, payload=None, now=None, force_new=False,
               client=None, bill_category="invocation"):
        """Execute one request against ``deployment``.

        Returns an :class:`Invocation`.  Raises
        :class:`~repro.common.errors.SaturationError` if the zone is full.
        """
        now = self.clock.now if now is None else float(now)
        zone = self.zone(deployment.zone_id)
        handler = deployment.handler
        faults = self.faults
        if faults.enabled:
            faults.before_invoke(deployment.zone_id, now)
            force_new = force_new or faults.forces_cold(deployment.zone_id,
                                                        now)
        timeout = deployment.function_timeout
        timed_out = []

        def duration_fn(cpu_key):
            drawn = handler.duration_on(cpu_key, self.rng, payload)
            if drawn > timeout:
                # The platform kills the request at the ceiling: it runs
                # (and is billed) for exactly ``function_timeout``.
                timed_out.append(drawn)
                return timeout
            return drawn

        fi, reused = zone.invoke_one(deployment.deployment_id, duration_fn,
                                     now=now, force_new=force_new)
        runtime = fi.busy_until - now
        cold_start = (0.0 if reused
                      else deployment.cold_start.sample(self.rng))
        if faults.enabled and cold_start:
            cold_start *= faults.cold_start_multiplier(deployment.zone_id,
                                                       now)
        latency = runtime + cold_start
        spike = (faults.extra_latency(deployment.zone_id, now)
                 if faults.enabled else 0.0)
        if client is not None:
            region = self.region_of_zone(deployment.zone_id)
            latency += self.network.round_trip(client, region.geo,
                                               rng=self.rng, extra_s=spike)
        else:
            latency += spike
        bill = deployment.billing.bill(
            deployment.memory_mb, runtime, deployment.arch, requests=1)
        deployment.account.record_bill(bill, category=bill_category)
        bus = self.bus
        if bus.enabled:
            bus.emit("cloud.invoke", now,
                     zone=deployment.zone_id, cpu=fi.cpu_key, reused=reused,
                     latency_s=latency, runtime_s=runtime,
                     cost_usd=float(bill.total),
                     deployment=deployment.deployment_id,
                     category=bill_category)
        return Invocation(
            request_id=self._new_request_id(),
            deployment_id=deployment.deployment_id,
            zone_id=deployment.zone_id,
            cpu_key=fi.cpu_key,
            instance_id=fi.instance_id,
            host_id=fi.host_id,
            reused=reused,
            cold_start_s=cold_start,
            runtime_s=runtime,
            latency_s=latency,
            bill=bill,
            timestamp=now,
            response=handler.respond(fi.cpu_key, payload),
            timed_out=bool(timed_out),
        )

    def hold(self, deployment, invocation_or_fi, hold_seconds, now=None,
             bill_category="retry-hold"):
        """Keep an FI busy for ``hold_seconds`` — billed runtime.

        Retry strategies hold poorly-placed FIs so that re-issued requests
        cannot be routed back onto them.
        """
        now = self.clock.now if now is None else float(now)
        zone = self.zone(deployment.zone_id)
        fi = invocation_or_fi
        if isinstance(invocation_or_fi, Invocation):
            fi = self._find_fi(zone, deployment, invocation_or_fi.instance_id)
        if fi is not None:
            zone.hold_instance(fi, hold_seconds, now=now)
        # A hold extends an in-flight request, so there is no per-request
        # fee — only the extra billed compute time.
        bill = deployment.billing.bill(
            deployment.memory_mb, hold_seconds, deployment.arch, requests=1)
        bill.request.usd = 0.0
        deployment.account.record_bill(bill, category=bill_category)
        bus = self.bus
        if bus.enabled:
            bus.emit("cloud.hold", now, zone=deployment.zone_id,
                     hold_s=float(hold_seconds), cost_usd=float(bill.total))
        return bill

    # -- invocation: batched ------------------------------------------------------------
    def place_batch(self, deployment, n_requests, duration, window=None,
                    now=None, bill_category="poll", charge=True):
        """Fire ``n_requests`` parallel requests of ``duration`` seconds.

        ``window`` defaults to the provider's arrival-window model for the
        deployment's memory setting.  The account's concurrency quota caps
        the batch; zone saturation failures surface in the result's
        ``failed`` count.  Only served requests are billed; callers that
        compute exact per-CPU bills themselves (the batched burst runner)
        pass ``charge=False``.
        """
        now = self.clock.now if now is None else float(now)
        zone = self.zone(deployment.zone_id)
        force_new = False
        if self.faults.enabled:
            self.faults.before_batch(deployment.zone_id, now)
            force_new = self.faults.forces_cold(deployment.zone_id, now)
        timeout = deployment.function_timeout
        if duration > timeout:
            duration = timeout
        admitted = deployment.account.admit_batch(n_requests, now)
        if window is None:
            window = deployment.arrival_window_s
        result = zone.invoke_batch(deployment.deployment_id, admitted,
                                   duration, window, now=now,
                                   force_new=force_new)
        bill = deployment.billing.bill(
            deployment.memory_mb, duration, deployment.arch,
            requests=result.served)
        if charge:
            deployment.account.record_bill(bill, category=bill_category)
        return result, bill

    def poll(self, deployment, n_requests=1000, now=None,
             bill_category="poll"):
        """One sampling poll: a parallel burst against a sleep function."""
        handler = deployment.handler
        duration = handler.duration_on(None, self.rng)
        return self.place_batch(deployment, n_requests, duration,
                                now=now, bill_category=bill_category)

    def poll_batch(self, deployment, n_requests=1000, now=None,
                   bill_category="poll", vectorize=True, payload=None,
                   keep_latencies=False):
        """Resolve an ``n_requests`` burst columnarly: one
        :class:`BatchPollResult`, one aggregated bill, no per-request
        objects.

        This is the vectorized successor to :meth:`poll` for hot loops
        that only consume aggregates.  Placement is the zone's batch core
        (:meth:`~repro.cloudsim.az.AvailabilityZone.invoke_batch`); on top
        of it this method classifies cold/warm requests with one
        multinomial per mixed CPU group, draws all runtimes through the
        handler's vectorized :meth:`~repro.cloudsim.handlers.Handler.durations_on`,
        quantizes billing as exact integer ticks, and reduces with numpy.

        **RNG stream contract.**  ``vectorize=False`` runs the looped
        executable spec — per-request records, scalar tick quantization —
        but consumes the cloud RNG identically: (1) one scalar occupancy
        draw, (2) the zone's placement draw, (3) per CPU group in sorted
        order, one cold/warm split then one ``durations_on`` call, then
        (4) one batched cold-start draw when the provider's cold-start
        distribution is stochastic (the default fixed distribution draws
        nothing).  Both
        paths therefore produce **bit-identical** aggregates for the same
        seed (``BatchPollResult.aggregate_key()`` compares equal), which
        the property tests and the benchmark's byte-equality check
        enforce.

        ``payload`` is threaded into both handler draw calls so dynamic
        mesh deployments (whose runtime model is payload-selected) can be
        batch-polled; it occupies the same argument position on both
        paths, preserving the contract above.  ``keep_latencies=True``
        additionally returns the per-request latency array (request
        order) on the result for quantile accounting — one
        ``np.concatenate``, still no per-request objects.
        """
        now = self.clock.now if now is None else float(now)
        zone = self.zone(deployment.zone_id)
        handler = deployment.handler
        force_new = False
        fault_mult = 1.0
        fault_spike = 0.0
        if self.faults.enabled:
            # Fault-hook parity with the per-request path: all three
            # hooks fire once per batch, on both the vectorized and the
            # looped spec path.  ``forces_cold``/``cold_start_multiplier``
            # draw no RNG; ``extra_latency`` draws from the injector's own
            # stream, never the cloud stream.
            self.faults.before_batch(deployment.zone_id, now)
            force_new = self.faults.forces_cold(deployment.zone_id, now)
            fault_mult = self.faults.cold_start_multiplier(
                deployment.zone_id, now)
            fault_spike = self.faults.extra_latency(deployment.zone_id, now)
        # Draw order step 1: the occupancy duration, exactly like poll().
        duration = handler.duration_on(None, self.rng, payload)
        timeout = deployment.function_timeout
        if duration > timeout:
            duration = timeout
        admitted = deployment.account.admit_batch(n_requests, now)
        # Draw order step 2: the zone's placement multinomial.
        placement = zone.invoke_batch(
            deployment.deployment_id, admitted, duration,
            deployment.arrival_window_s, now=now, force_new=force_new)

        billing = deployment.billing
        granularity = billing.granularity
        min_billed = billing.min_billed_duration
        cold_dist = deployment.cold_start
        cold_start_s = cold_dist.cold_start_s if cold_dist.is_fixed else None
        if cold_start_s is not None and fault_mult != 1.0:
            cold_start_s = cold_start_s * fault_mult
        cpu_counts = placement.request_cpu_counts
        rng = self.rng

        cold_cpu_counts = {}
        ticks_total = 0
        timeouts_total = 0
        records = None if vectorize else []
        runtime_chunks = []
        latency_chunks = []
        # Draw order step 3: per CPU group in sorted order — one cold/warm
        # split, then one batched runtime draw.
        for cpu_key in sorted(cpu_counts):
            served_c = cpu_counts[cpu_key]
            cold_c = self._cold_split(cpu_key, served_c,
                                      placement.new_fi_counts,
                                      placement.reused_fi_counts, rng)
            if cold_c:
                cold_cpu_counts[cpu_key] = cold_c
            runtimes = handler.durations_on(cpu_key, rng, served_c, payload)
            # Draw order step 4: one batched cold-start draw per group
            # when the distribution is stochastic — shared by both paths,
            # so the RNG layout stays identical.  Fixed distributions
            # (the default adapter) consume nothing here.
            cold_samples = None
            if cold_c and cold_start_s is None:
                cold_samples = cold_dist.sample_n(rng, cold_c)
                if fault_mult != 1.0:
                    cold_samples = cold_samples * fault_mult
            if vectorize:
                if float(runtimes.max()) > timeout:
                    over = runtimes > timeout
                    timeouts_total += int(np.count_nonzero(over))
                    runtimes = np.where(over, timeout, runtimes)
                ticks_total += int(duration_ticks(
                    runtimes, granularity, min_billed).sum())
                latencies = runtimes.copy()
                if cold_samples is not None:
                    latencies[:cold_c] += cold_samples
                elif cold_c and cold_start_s:
                    latencies[:cold_c] += cold_start_s
                if fault_spike:
                    latencies += fault_spike
                runtime_chunks.append(runtimes)
                latency_chunks.append(latencies)
            else:
                # Looped executable spec: request by request, scalar
                # quantization, one record object each.
                group_runtimes = []
                group_latencies = []
                for i, runtime in enumerate(runtimes.tolist()):
                    if runtime > timeout:
                        runtime = timeout
                        timeouts_total += 1
                    reused = i >= cold_c
                    if reused:
                        cold = 0.0
                    elif cold_samples is not None:
                        cold = float(cold_samples[i])
                    else:
                        cold = cold_start_s
                    latency = runtime + cold
                    if fault_spike:
                        latency += fault_spike
                    ticks = int(duration_ticks(runtime, granularity,
                                               min_billed))
                    ticks_total += ticks
                    group_runtimes.append(runtime)
                    group_latencies.append(latency)
                    records.append(BatchInvocation(
                        cpu_key, reused, runtime, cold, latency, ticks))
                runtime_chunks.append(
                    np.asarray(group_runtimes, dtype=np.float64))
                latency_chunks.append(
                    np.asarray(group_latencies, dtype=np.float64))

        # Totals reduce the identical request-ordered float64 array in
        # both paths, so numpy's pairwise summation yields the same bits.
        runtime_total = _request_order_total(runtime_chunks)
        latency_total = _request_order_total(latency_chunks)
        if keep_latencies:
            latencies = (np.concatenate(latency_chunks) if latency_chunks
                         else np.zeros(0, dtype=np.float64))
        else:
            latencies = None
        served = placement.served
        bill = billing.bill_ticks(deployment.memory_mb, ticks_total,
                                  deployment.arch, requests=served)
        deployment.account.record_bill(bill, category=bill_category)
        cold_total = sum(cold_cpu_counts.values())
        bus = self.bus
        if bus.enabled:
            bus.emit("cloud.poll_batch", now,
                     zone=deployment.zone_id,
                     requested=placement.requested, served=served,
                     failed=placement.failed, cold_starts=cold_total,
                     timeouts=timeouts_total,
                     runtime_total_s=runtime_total,
                     cost_usd=float(bill.total),
                     deployment=deployment.deployment_id,
                     category=bill_category)
        return BatchPollResult(
            deployment_id=deployment.deployment_id,
            zone_id=deployment.zone_id,
            requested=placement.requested,
            served=served,
            failed=placement.failed,
            cold_starts=cold_total,
            request_cpu_counts=dict(cpu_counts),
            cold_cpu_counts=cold_cpu_counts,
            billed_ticks=ticks_total,
            runtime_total_s=runtime_total,
            latency_total_s=latency_total,
            bill=bill,
            duration=duration,
            timestamp=now,
            placement=placement,
            records=records,
            latencies=latencies,
            timeouts=timeouts_total,
        )

    # -- internals ------------------------------------------------------------------------
    @staticmethod
    def _cold_split(cpu_key, served_c, new_fi_counts, reused_fi_counts, rng):
        """Cold-request count for one CPU's request group.

        Requests landing on freshly-placed FIs pay the cold start.  When
        a CPU has both new and reused FIs, the split over ``served_c``
        requests is one multinomial draw weighted by the FI counts
        (:meth:`CategoricalDistribution.sample_counts`); a single-category
        group is deterministic and consumes no randomness.  Both
        ``poll_batch`` paths call this identically, keeping the RNG
        stream layout fixed.
        """
        new_c = new_fi_counts.get(cpu_key, 0)
        reused_c = (reused_fi_counts.get(cpu_key, 0)
                    if reused_fi_counts else 0)
        if not new_c:
            return 0
        if not reused_c:
            return served_c
        split = CategoricalDistribution(
            {"cold": new_c, "warm": reused_c}).sample_counts(rng, served_c)
        return split.get("cold", 0)

    @staticmethod
    def _find_fi(zone, deployment, instance_id):
        # O(1) id lookup in the zone's live-instance dict (pruned on
        # release by the expiry heap's callback).
        return zone.find_instance(instance_id)

    def __repr__(self):
        return "Cloud(regions={}, accounts={})".format(
            len(self.regions), len(self.accounts))
