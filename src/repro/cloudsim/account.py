"""Cloud accounts: quota isolation and a spending ledger.

EX-1 validates saturation with a *second, fully independent account*: its
requests fail immediately after the first account exhausts the zone, proving
the bottleneck is the shared zone pool rather than per-account rate
limiting.  Accounts therefore own quotas and ledgers, while zones own
capacity.
"""

from repro.common.errors import ConfigurationError
from repro.cloudsim.billing import InvocationBill


class CloudAccount(object):
    """An account on one provider, with its own concurrency quota."""

    def __init__(self, account_id, provider):
        self.account_id = account_id
        self.provider = provider
        self._ledger = []
        self._throttled = 0
        self._deployments = {}
        # Admission is delegated to the provider adapter's quota model;
        # the default hard cap is stateless and reproduces the historical
        # ``min(n, quota)`` exactly.
        self._quota_model = provider.adapter.quota
        self._quota_state = self._quota_model.new_state()

    # -- quota ------------------------------------------------------------------
    @property
    def concurrency_quota(self):
        return self.provider.concurrency_quota

    def admit_batch(self, n_requests, now=0.0):
        """How many of ``n_requests`` simultaneous requests the quota admits.

        The excess is throttled client-side and recorded.  ``now`` feeds
        time-windowed quota models (burst-then-throttle, token refill);
        the default hard cap ignores it.
        """
        admitted = self._quota_model.admit(self._quota_state, n_requests,
                                           now)
        self._throttled += n_requests - admitted
        return admitted

    @property
    def throttled_requests(self):
        return self._throttled

    # -- ledger -----------------------------------------------------------------
    def record_bill(self, bill, category="invocation"):
        self._ledger.append((category, bill))

    def total_spend(self, category=None):
        total = InvocationBill.zero()
        for entry_category, bill in self._ledger:
            if category is None or entry_category == category:
                total = total + bill
        return total.total

    def spend_breakdown(self):
        """Total spend per ledger category."""
        breakdown = {}
        for category, bill in self._ledger:
            breakdown[category] = breakdown.get(category, 0.0) + float(
                bill.total)
        return breakdown

    # -- deployments --------------------------------------------------------------
    def register_deployment(self, deployment):
        if deployment.deployment_id in self._deployments:
            raise ConfigurationError(
                "duplicate deployment id {!r}".format(
                    deployment.deployment_id))
        self._deployments[deployment.deployment_id] = deployment

    def deployments(self):
        return list(self._deployments.values())

    def __repr__(self):
        return "CloudAccount({!r}, provider={!r})".format(
            self.account_id, self.provider.name)
