"""The CPU models observed by the paper, as a typed catalog.

The paper (EX-2, Figure 2) identifies:

* **AWS Lambda** — three Intel Xeon processors at 2.5, 2.9, and 3.0 GHz plus
  one (rare) AMD EPYC;
* **IBM Code Engine** — Intel Cascade Lake at 2.4 and 2.5 GHz;
* **Digital Ocean Functions** — Intel Xeon at 2.6 and 2.7 GHz.

``/proc/cpuinfo`` style model strings follow what SAAF reports on those
platforms.  ``base_speed`` is a *generic* relative throughput (higher is
faster) used as the default when a workload has no dedicated profile;
workload-specific sensitivity lives in :mod:`repro.workloads.profiles`.
"""

from repro.common.errors import ConfigurationError


class CPUModel(object):
    """An immutable CPU model descriptor."""

    __slots__ = ("key", "vendor", "model_name", "clock_ghz", "arch",
                 "base_speed")

    def __init__(self, key, vendor, model_name, clock_ghz, arch, base_speed):
        self.key = key
        self.vendor = vendor
        self.model_name = model_name
        self.clock_ghz = float(clock_ghz)
        self.arch = arch
        self.base_speed = float(base_speed)

    def __eq__(self, other):
        return isinstance(other, CPUModel) and other.key == self.key

    def __hash__(self):
        return hash(self.key)

    def __repr__(self):
        return "CPUModel({!r})".format(self.key)


# Keys are stable identifiers used throughout characterizations and routing
# policies; model_name is what the in-FI inspector "reads" from cpuinfo.
_CATALOG = [
    # ---- AWS Lambda x86_64 -------------------------------------------------
    CPUModel(
        key="xeon-2.5",
        vendor="Intel",
        model_name="Intel(R) Xeon(R) Processor @ 2.50GHz",
        clock_ghz=2.5,
        arch="x86_64",
        base_speed=1.00,
    ),
    CPUModel(
        key="xeon-2.9",
        vendor="Intel",
        model_name="Intel(R) Xeon(R) Processor @ 2.90GHz",
        clock_ghz=2.9,
        arch="x86_64",
        # Counter-intuitively slower than the 2.5 GHz baseline in the paper's
        # measurements (older generation): 15-30 % slower for most functions.
        base_speed=0.82,
    ),
    CPUModel(
        key="xeon-3.0",
        vendor="Intel",
        model_name="Intel(R) Xeon(R) Processor @ 3.00GHz",
        clock_ghz=3.0,
        arch="x86_64",
        # The consistently fastest CPU: 5-15 % faster than the baseline.
        base_speed=1.11,
    ),
    CPUModel(
        key="amd-epyc",
        vendor="AMD",
        model_name="AMD EPYC",
        clock_ghz=2.65,
        arch="x86_64",
        # Slowest overall; up to 50 % longer runtimes for compute-bound code.
        base_speed=0.72,
    ),
    # ---- AWS Lambda arm64 ----------------------------------------------------
    CPUModel(
        key="graviton2",
        vendor="AWS",
        model_name="ARM Neoverse-N1 (Graviton2)",
        clock_ghz=2.5,
        arch="arm64",
        base_speed=0.95,
    ),
    # ---- IBM Code Engine -----------------------------------------------------
    CPUModel(
        key="cascadelake-2.4",
        vendor="Intel",
        model_name="Intel(R) Xeon(R) Gold 6248 CPU @ 2.40GHz",
        clock_ghz=2.4,
        arch="x86_64",
        base_speed=0.93,
    ),
    CPUModel(
        key="cascadelake-2.5",
        vendor="Intel",
        model_name="Intel(R) Xeon(R) Gold 6268 CPU @ 2.50GHz",
        clock_ghz=2.5,
        arch="x86_64",
        base_speed=0.97,
    ),
    # ---- Digital Ocean Functions ---------------------------------------------
    CPUModel(
        key="do-xeon-2.6",
        vendor="Intel",
        model_name="Intel(R) Xeon(R) CPU @ 2.60GHz",
        clock_ghz=2.6,
        arch="x86_64",
        base_speed=0.96,
    ),
    CPUModel(
        key="do-xeon-2.7",
        vendor="Intel",
        model_name="Intel(R) Xeon(R) CPU @ 2.70GHz",
        clock_ghz=2.7,
        arch="x86_64",
        base_speed=0.99,
    ),
]

CPU_CATALOG = {cpu.key: cpu for cpu in _CATALOG}

# The four CPUs relevant to the AWS-only experiments (EX-3 through EX-5).
AWS_X86_CPUS = ("xeon-2.5", "xeon-2.9", "xeon-3.0", "amd-epyc")


def cpu_by_key(key):
    """Look up a :class:`CPUModel` by its stable key.

    Raises :class:`ConfigurationError` for unknown keys so typos in zone
    specs fail fast.
    """
    try:
        return CPU_CATALOG[key]
    except KeyError:
        raise ConfigurationError("unknown CPU key: {!r}".format(key))


def cpu_by_model_name(model_name):
    """Reverse lookup from a cpuinfo model string (used by SAAF parsing)."""
    for cpu in CPU_CATALOG.values():
        if cpu.model_name == model_name:
            return cpu
    raise ConfigurationError("unknown CPU model name: {!r}".format(model_name))


def fastest_cpu(keys, speed_of=None):
    """Return the fastest CPU key among ``keys``.

    ``speed_of`` maps a key to a relative speed; defaults to the generic
    ``base_speed``.
    """
    keys = list(keys)
    if not keys:
        raise ConfigurationError("no CPU keys given")
    if speed_of is None:
        speed_of = lambda key: cpu_by_key(key).base_speed
    return max(keys, key=lambda key: (speed_of(key), key))


def slowest_cpus(keys, count, speed_of=None):
    """Return the ``count`` slowest CPU keys among ``keys``, slowest first."""
    keys = list(keys)
    if speed_of is None:
        speed_of = lambda key: cpu_by_key(key).base_speed
    ranked = sorted(keys, key=lambda key: (speed_of(key), key))
    return ranked[:count]
