"""The global region catalog: 41 regions across AWS, IBM, and Digital Ocean.

This module encodes the sky-mesh footprint the paper profiles in EX-2
(Figure 2): 33 AWS Lambda regions, 4 IBM Code Engine regions, and 4 Digital
Ocean Functions regions.  Each zone spec carries:

* ``mix`` — the provisioned CPU share per model, honouring the paper's
  observations: every AWS region hosts the 2.5 GHz Xeon; all but
  ``af-south-1`` host the 3.0 GHz part; the AMD EPYC is rare except in
  ``il-central-1``; ``us-west-2`` is the region where the 3.0 GHz part
  dominates; ``us-east-2a`` is single-CPU (the EX-3 zone with 0 % error).
* ``slots`` — provisioned FI capacity, setting the saturation point
  (eu-north-1a fails after ~5k requests; eu-central-1a sustains ~10×).
* ``drift`` — temporal class: ``stable`` (sa-east-1a, eu-north-1a),
  ``volatile`` (ca-central-1a, us-west-1a, us-west-1b), ``default`` (mild),
  or ``frozen``.
* ``affinity`` — placement-priority overrides; low-affinity pools surface
  late in a sampling campaign (the EX-3 "previously unseen hardware"
  anomaly, calibrated for us-east-2b's 25 % single-poll error).

IBM and DO zones are (near-)homogeneous, matching the paper's finding of no
exploitable heterogeneity outside AWS.
"""

from repro.common.errors import UnknownZoneError
from repro.cloudsim.adapters import (
    PreemptionProcess,
    keepalive_policy_from_spec,
)
from repro.cloudsim.az import AvailabilityZone, ScalingPolicy
from repro.cloudsim.cloud import Cloud
from repro.cloudsim.drift import DriftProfile, DriftProcess
from repro.cloudsim.host import HostPool
from repro.cloudsim.network import GeoPoint
from repro.cloudsim.provider import provider_by_name
from repro.cloudsim.region import Region


class ZoneSpec(object):
    """Declarative description of one availability zone."""

    __slots__ = ("mix", "slots", "drift", "affinity")

    def __init__(self, mix, slots, drift="default", affinity=None):
        self.mix = dict(mix)
        self.slots = int(slots)
        self.drift = drift
        self.affinity = dict(affinity or {})


def _aws(mix, slots, drift="default", affinity=None):
    return ZoneSpec(mix, slots, drift, affinity)


# -- AWS Lambda: 33 regions ---------------------------------------------------
# Mix shorthand: the four CPUs the paper observed on Lambda.
X25, X29, X30, EPYC = "xeon-2.5", "xeon-2.9", "xeon-3.0", "amd-epyc"

AWS_REGION_SPECS = {
    # name: (lat, lon, {zone_suffix: ZoneSpec})
    "us-east-1": (38.9, -77.4, {
        "a": _aws({X25: 0.52, X30: 0.30, X29: 0.15, EPYC: 0.03}, 30720),
    }),
    "us-east-2": (40.0, -83.0, {
        "a": _aws({X25: 1.0}, 12032),
        "b": _aws({X25: 0.38, X30: 0.27, X29: 0.22, EPYC: 0.13}, 16000,
                  affinity={EPYC: 0.45}),
        "c": _aws({X25: 0.55, X30: 0.33, X29: 0.12}, 14080),
    }),
    "us-west-1": (37.4, -121.9, {
        "a": _aws({X25: 0.36, X30: 0.26, X29: 0.22, EPYC: 0.16}, 20480,
                  drift="volatile"),
        "b": _aws({X25: 0.32, X30: 0.24, X29: 0.24, EPYC: 0.20}, 18432,
                  drift="volatile"),
    }),
    "us-west-2": (45.8, -119.7, {
        "a": _aws({X30: 0.48, X25: 0.38, X29: 0.10, EPYC: 0.04}, 28672),
    }),
    "af-south-1": (-33.9, 18.4, {
        "a": _aws({X25: 0.70, X29: 0.30}, 8064),
    }),
    "ap-east-1": (22.3, 114.2, {
        "a": _aws({X25: 0.60, X30: 0.28, X29: 0.12}, 10240),
    }),
    "ap-east-2": (25.0, 121.5, {
        "a": _aws({X25: 0.50, X30: 0.40, X29: 0.10}, 9216),
    }),
    "ap-south-1": (19.1, 72.9, {
        "a": _aws({X25: 0.56, X30: 0.30, X29: 0.12, EPYC: 0.02}, 21504),
    }),
    "ap-south-2": (17.4, 78.5, {
        "a": _aws({X25: 0.62, X30: 0.30, X29: 0.08}, 9984),
    }),
    "ap-northeast-1": (35.7, 139.7, {
        # The EX-3 "anomalous spike" zone: its EPYC pool has near-zero
        # placement affinity, so the hardware stays invisible until the
        # mainstream pools fill late in a campaign.
        "a": _aws({X25: 0.52, X30: 0.30, X29: 0.14, EPYC: 0.04}, 22528,
                  affinity={EPYC: 0.02}),
    }),
    "ap-northeast-2": (37.6, 127.0, {
        "a": _aws({X25: 0.50, X30: 0.34, X29: 0.16}, 17408),
    }),
    "ap-northeast-3": (34.7, 135.5, {
        "a": _aws({X25: 0.64, X30: 0.24, X29: 0.12}, 9472),
    }),
    "ap-southeast-1": (1.35, 103.8, {
        "a": _aws({X25: 0.48, X30: 0.34, X29: 0.16, EPYC: 0.02}, 23552),
    }),
    "ap-southeast-2": (-33.9, 151.2, {
        "a": _aws({X25: 0.48, X30: 0.36, X29: 0.16}, 18944),
    }),
    "ap-southeast-3": (-6.2, 106.8, {
        "a": _aws({X25: 0.58, X30: 0.30, X29: 0.12}, 10752),
    }),
    "ap-southeast-4": (-37.8, 145.0, {
        "a": _aws({X25: 0.44, X30: 0.42, X29: 0.14}, 9728),
    }),
    "ap-southeast-5": (3.1, 101.7, {
        "a": _aws({X25: 0.46, X30: 0.44, X29: 0.10}, 8448),
    }),
    "ap-southeast-7": (13.8, 100.5, {
        "a": _aws({X25: 0.52, X30: 0.42, X29: 0.06}, 8192),
    }),
    "ca-central-1": (45.5, -73.6, {
        "a": _aws({X25: 0.42, X30: 0.30, X29: 0.20, EPYC: 0.08}, 13312,
                  drift="volatile"),
    }),
    "ca-west-1": (51.0, -114.1, {
        "a": _aws({X25: 0.40, X30: 0.46, X29: 0.14}, 8704),
    }),
    "eu-central-1": (50.1, 8.7, {
        "a": _aws({X25: 0.50, X30: 0.32, X29: 0.15, EPYC: 0.03}, 49920),
    }),
    "eu-central-2": (47.4, 8.5, {
        "a": _aws({X25: 0.54, X30: 0.36, X29: 0.10}, 9600),
    }),
    "eu-west-1": (53.3, -6.3, {
        "a": _aws({X25: 0.50, X30: 0.30, X29: 0.17, EPYC: 0.03}, 27648),
    }),
    "eu-west-2": (51.5, -0.1, {
        "a": _aws({X25: 0.54, X30: 0.30, X29: 0.16}, 19456),
    }),
    "eu-west-3": (48.9, 2.4, {
        "a": _aws({X25: 0.56, X30: 0.28, X29: 0.16}, 16896),
    }),
    "eu-north-1": (59.3, 18.1, {
        "a": _aws({X25: 0.58, X30: 0.34, X29: 0.08}, 4992, drift="stable"),
    }),
    "eu-south-1": (45.5, 9.2, {
        "a": _aws({X25: 0.60, X30: 0.32, X29: 0.08}, 9344),
    }),
    "eu-south-2": (40.4, -3.7, {
        "a": _aws({X25: 0.58, X30: 0.36, X29: 0.06}, 8832),
    }),
    "il-central-1": (32.1, 34.8, {
        "a": _aws({X25: 0.40, X30: 0.25, EPYC: 0.25, X29: 0.10}, 9088,
                  affinity={EPYC: 1.0}),
    }),
    "me-central-1": (24.5, 54.4, {
        "a": _aws({X25: 0.54, X30: 0.38, X29: 0.08}, 9856),
    }),
    "me-south-1": (26.2, 50.6, {
        "a": _aws({X25: 0.62, X30: 0.28, X29: 0.10}, 9472),
    }),
    "sa-east-1": (-23.5, -46.6, {
        "a": _aws({X25: 0.40, X30: 0.38, X29: 0.18, EPYC: 0.04}, 16384,
                  drift="stable"),
    }),
    "mx-central-1": (20.6, -100.4, {
        "a": _aws({X25: 0.48, X30: 0.44, X29: 0.08}, 8320),
    }),
}

# -- IBM Code Engine: 4 regions (near-homogeneous Cascade Lake) ---------------
CL24, CL25 = "cascadelake-2.4", "cascadelake-2.5"

IBM_REGION_SPECS = {
    "us-south": (32.8, -96.8, ZoneSpec({CL25: 0.95, CL24: 0.05}, 4800)),
    "us-east-ibm": (38.9, -77.0, ZoneSpec({CL24: 1.0}, 3840)),
    "eu-de": (50.1, 8.7, ZoneSpec({CL25: 1.0}, 4320)),
    "eu-gb": (51.5, -0.1, ZoneSpec({CL24: 0.92, CL25: 0.08}, 3360)),
}

# -- Digital Ocean Functions: 4 regions ----------------------------------------
DO26, DO27 = "do-xeon-2.6", "do-xeon-2.7"

DO_REGION_SPECS = {
    "nyc1": (40.7, -74.0, ZoneSpec({DO27: 1.0}, 1920)),
    "sfo3": (37.8, -122.4, ZoneSpec({DO26: 0.9, DO27: 0.1}, 1600)),
    "ams3": (52.4, 4.9, ZoneSpec({DO26: 1.0}, 1760)),
    "lon1": (51.5, -0.1, ZoneSpec({DO27: 0.88, DO26: 0.12}, 1440)),
}

# -- Scenario-pack regions ------------------------------------------------------
# One synthetic region per pack provider (see ``repro.cloudsim.packs``).
# These are *opt-in*: they install only when explicitly named via the
# ``regions=`` filter, so the default 41-region catalog (and every seeded
# transcript derived from it) is untouched.  CPU keys reuse the Xeon/EPYC
# models the workload tables already know.
PACK_REGION_SPECS = {
    # provider name: {region name: (lat, lon, {zone_suffix: ZoneSpec})}
    "gcp": {
        "gcp-us-central1": (41.3, -93.6, {
            "a": ZoneSpec({X25: 0.55, X30: 0.35, X29: 0.10}, 12288),
            "b": ZoneSpec({X25: 0.60, X30: 0.40}, 10240),
        }),
    },
    "azure": {
        "azure-eastus": (37.4, -79.2, {
            "a": ZoneSpec({X25: 0.58, X29: 0.42}, 9216),
            "b": ZoneSpec({X25: 0.66, X29: 0.34}, 7680),
        }),
    },
    "openwhisk": {
        "ow-onprem-1": (45.0, -93.3, {
            "a": ZoneSpec({X29: 1.0}, 2048),
            "b": ZoneSpec({X29: 0.85, X25: 0.15}, 1536),
        }),
    },
    "ce-caas": {
        "ce-caas-1": (32.8, -96.8, {
            "a": ZoneSpec({X30: 0.70, X25: 0.30}, 4608),
            "b": ZoneSpec({X30: 1.0}, 3840),
        }),
    },
    "spot": {
        "spot-us-1": (39.0, -77.5, {
            "a": ZoneSpec({X25: 0.44, X30: 0.30, X29: 0.16, EPYC: 0.10},
                          20480, drift="volatile"),
            "b": ZoneSpec({X25: 0.40, X30: 0.28, X29: 0.20, EPYC: 0.12},
                          18432, drift="volatile"),
        }),
    },
}

# The eleven AZs of the EX-3 progressive-sampling study.
EX3_ZONES = (
    "ca-central-1a", "eu-north-1a", "ap-northeast-1a", "sa-east-1a",
    "eu-central-1a", "ap-southeast-2a", "us-west-1a", "us-west-1b",
    "us-east-2a", "us-east-2b", "us-east-2c",
)

# The five AZs of the EX-4 two-week temporal study (also EX-5 profiling).
EX4_ZONES = ("us-west-1a", "us-west-1b", "sa-east-1a", "eu-north-1a",
             "ca-central-1a")

_DRIFT_FACTORIES = {
    "stable": DriftProfile.stable,
    "volatile": DriftProfile.volatile,
    "frozen": DriftProfile.frozen,
    "default": DriftProfile,
}


def _default_affinity(cpu_key, share, overrides):
    if cpu_key in overrides:
        return overrides[cpu_key]
    # Rare EPYC pools are hardware being phased in/out: the scheduler mildly
    # under-places on them until the mainstream pools fill up.
    if cpu_key == EPYC and share < 0.15:
        return 0.7
    return 1.0


def zone_recipe(zone_id, spec, provider):
    """Resolve a :class:`ZoneSpec` into a pure-data build recipe.

    The recipe is everything :func:`zone_from_recipe` needs to construct
    the zone — pool sizes, affinities, scaling envelope, drift class — as
    plain tuples/dicts.  Recipes are picklable and immutable in practice,
    which is what lets the sweep engine compute the full catalog's plan
    once and share it across workers (:mod:`repro.cloudsim.shared_catalog`)
    instead of re-deriving it from the spec tables per cell.
    """
    pools = []
    slots_per_host = provider.slots_per_host
    for cpu_key, share in sorted(spec.mix.items()):
        hosts = max(1, int(round(spec.slots * share / slots_per_host)))
        affinity = _default_affinity(cpu_key, share, spec.affinity)
        pools.append((cpu_key, hosts, slots_per_host, affinity))
    adapter = provider.adapter
    recipe = {
        "zone_id": zone_id,
        "pools": tuple(pools),
        "keepalive": provider.keepalive,
        # The default PoolScalingRule reproduces the historical envelope
        # ``(0.85, 8, max(256, slots // 12))`` exactly.
        "scaling": adapter.scaling.recipe(spec.slots),
        "drift": spec.drift,
    }
    # Non-default adapter axes appear as *extra* keys only, so default
    # recipes stay byte-identical to what earlier plans pickled.
    policy = adapter.keepalive
    if policy.kind != "sliding":
        recipe["keepalive_policy"] = policy.spec()
    if adapter.preemption is not None:
        recipe["preemption"] = adapter.preemption
    return recipe


def zone_from_recipe(recipe, clock, seed):
    """Construct a live :class:`AvailabilityZone` from a build recipe."""
    pools = [HostPool(cpu_key, hosts, slots_per_host, affinity=affinity)
             for cpu_key, hosts, slots_per_host, affinity
             in recipe["pools"]]
    pressure, per_minute, max_surge = recipe["scaling"]
    scaling = ScalingPolicy(
        pressure_threshold=pressure,
        slots_per_minute=per_minute,
        max_surge_slots=max_surge,
    )
    policy_spec = recipe.get("keepalive_policy")
    keepalive_policy = (keepalive_policy_from_spec(policy_spec)
                        if policy_spec is not None else None)
    zone = AvailabilityZone(recipe["zone_id"], pools, clock,
                            keepalive=recipe["keepalive"],
                            scaling=scaling, rng=seed,
                            keepalive_policy=keepalive_policy)
    profile = _DRIFT_FACTORIES[recipe["drift"]]()
    total_hosts = sum(p.hosts for p in pools)
    drift = DriftProcess(recipe["zone_id"], zone.cpu_slot_shares(),
                         total_hosts, profile, seed=seed)
    zone.attach_drift(drift)
    preemption = recipe.get("preemption")
    if preemption is not None:
        interval_s, fraction = preemption
        zone.attach_preemption(PreemptionProcess(
            recipe["zone_id"], interval_s, fraction, seed=seed))
    return zone


def _build_zone(zone_id, spec, provider, clock, seed):
    return zone_from_recipe(zone_recipe(zone_id, spec, provider), clock,
                            seed)


def build_global_catalog(seed=0, clock=None, aws_only=False):
    """Construct a fully-populated :class:`Cloud` with all 41 regions.

    ``aws_only=True`` restricts the sky to AWS Lambda, which is what the
    paper does for EX-3 through EX-5 after finding no heterogeneity on the
    other providers.
    """
    cloud = Cloud(clock=clock, seed=seed)
    install_catalog(cloud, aws_only=aws_only)
    return cloud


def install_catalog(cloud, aws_only=False, regions=None):
    """Install catalog regions into an existing :class:`Cloud`.

    ``regions`` optionally restricts installation to a subset of region
    names (useful for focused tests that do not need the whole planet).
    """
    aws = provider_by_name("aws")
    for name in sorted(AWS_REGION_SPECS):
        if regions is not None and name not in regions:
            continue
        lat, lon, zones = AWS_REGION_SPECS[name]
        region = Region(name, aws, GeoPoint(lat, lon))
        for suffix in sorted(zones):
            zone_id = name + suffix
            region.add_zone(_build_zone(zone_id, zones[suffix], aws,
                                        cloud.clock, cloud.seed))
        cloud.add_region(region)
    if aws_only:
        return cloud
    for provider_name, specs in (("ibm", IBM_REGION_SPECS),
                                 ("do", DO_REGION_SPECS)):
        provider = provider_by_name(provider_name)
        for name in sorted(specs):
            if regions is not None and name not in regions:
                continue
            lat, lon, spec = specs[name]
            region = Region(name, provider, GeoPoint(lat, lon))
            region.add_zone(_build_zone(name, spec, provider, cloud.clock,
                                        cloud.seed))
            cloud.add_region(region)
    # Scenario-pack regions install only when named explicitly — never as
    # part of the default 41-region sky.
    if regions is not None:
        for provider_name in sorted(PACK_REGION_SPECS):
            specs = PACK_REGION_SPECS[provider_name]
            wanted = sorted(n for n in specs if n in regions)
            if not wanted:
                continue
            provider = provider_by_name(provider_name)
            for name in wanted:
                lat, lon, zones = specs[name]
                region = Region(name, provider, GeoPoint(lat, lon))
                for suffix in sorted(zones):
                    zone_id = name + suffix
                    region.add_zone(_build_zone(zone_id, zones[suffix],
                                                provider, cloud.clock,
                                                cloud.seed))
                cloud.add_region(region)
    return cloud


def catalog_region_names(provider=None):
    """All catalog region names, optionally filtered by provider.

    Scenario-pack regions are listed only when their pack is named
    explicitly (``provider="ce-caas"`` etc.) — the unfiltered listing
    remains the default 41-region sky.
    """
    names = []
    if provider in (None, "aws"):
        names.extend(sorted(AWS_REGION_SPECS))
    if provider in (None, "ibm"):
        names.extend(sorted(IBM_REGION_SPECS))
    if provider in (None, "do"):
        names.extend(sorted(DO_REGION_SPECS))
    if provider is not None and provider in PACK_REGION_SPECS:
        names.extend(sorted(PACK_REGION_SPECS[provider]))
    return names


#: zone_id -> (region_name, provider_name, ZoneSpec), built lazily once.
#: The spec tables are module constants, so a single memoized pass
#: replaces the O(catalog) scans the per-zone lookups used to do.
_ZONE_TABLE = None


def _zone_table():
    global _ZONE_TABLE
    if _ZONE_TABLE is None:
        table = {}
        for name, (_, _, zones) in AWS_REGION_SPECS.items():
            for suffix, spec in zones.items():
                table[name + suffix] = (name, "aws", spec)
        for provider_name, specs in (("ibm", IBM_REGION_SPECS),
                                     ("do", DO_REGION_SPECS)):
            for name, (_, _, spec) in specs.items():
                table[name] = (name, provider_name, spec)
        for provider_name, pack_specs in PACK_REGION_SPECS.items():
            for name, (_, _, zones) in pack_specs.items():
                for suffix, spec in zones.items():
                    table[name + suffix] = (name, provider_name, spec)
        _ZONE_TABLE = table
    return _ZONE_TABLE


def zone_spec(zone_id):
    """Return the declarative :class:`ZoneSpec` behind a zone id."""
    try:
        return _zone_table()[zone_id][2]
    except KeyError:
        raise UnknownZoneError(zone_id)


def region_name_of_zone(zone_id):
    """Map a catalog zone id to its region name (without building a sky).

    The parallel engine uses this to install only the regions a grid cell
    actually touches, keeping per-worker cloud construction cheap.
    """
    try:
        return _zone_table()[zone_id][0]
    except KeyError:
        raise UnknownZoneError(zone_id)


def provider_name_of_zone(zone_id):
    """Map a catalog zone id to its provider name."""
    try:
        return _zone_table()[zone_id][1]
    except KeyError:
        raise UnknownZoneError(zone_id)
