"""Provider adapters: pluggable platform behavior behind ``ProviderConfig``.

The seed simulator hard-coded one FaaS flavor as scalars on
:class:`~repro.cloudsim.provider.ProviderConfig` — a single ``cold_start_s``,
a sliding keep-alive float, a hard concurrency cap, and one pool-scaling
tuple baked into :func:`~repro.cloudsim.catalog.zone_recipe`.  Real
platforms differ on every one of those axes ("Serverless Computing: Behind
the Scenes of Major Platforms"), so each axis is now a small strategy
object collected on a :class:`ProviderAdapter`:

* **cold-start distribution** — how long a cold request's init takes.
  :class:`FixedColdStart` reproduces the seed behavior bit-identically
  (it consumes *no* randomness); :class:`LognormalColdStart` and
  :class:`BimodalColdStart` sample on the shared cloud RNG stream, with
  a batched :meth:`~ColdStartDistribution.sample_n` so the vectorized
  and looped ``poll_batch`` paths draw identically;
* **keep-alive policy** — sliding idle window (the default), a fixed
  lease that caps an instance's total lifetime, or CaaS-style container
  reuse with a pinned min-instance floor;
* **quota model** — hard cap (the default), burst-then-throttle, or a
  token-refill bucket, holding per-account state;
* **pool-scaling rule** — the surge-capacity envelope written into zone
  recipes;
* **preemption** — an optional ``(interval_s, fraction)`` schedule of
  seeded capacity reclaims (spot-style), applied by
  :class:`PreemptionProcess`.

Pricing stays the :class:`~repro.cloudsim.billing.BillingModel` already
carried by ``ProviderConfig.billing``; scenario packs supply their own.

Every default component is constructed so the seed RNG stream and every
seeded outcome are **bit-identical** to the pre-adapter code: fixed
cold starts draw nothing, the default scaling rule emits the exact
legacy tuple, the hard cap admits ``min(n, quota)``, and the sliding
keep-alive adds zero work to the allocation path.
"""

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import derive_rng


# -- cold-start distributions --------------------------------------------------

class ColdStartDistribution(object):
    """How long a cold request's initialization takes, in seconds.

    ``sample``/``sample_n`` share one contract: a distribution either
    consumes **no** randomness (``is_fixed`` true — the bit-identical
    default) or consumes exactly one generator call per invocation
    (scalar path) / one batched call per CPU group (batch path), so the
    vectorized and looped ``poll_batch`` specs stay equivalent.
    """

    __slots__ = ()
    is_fixed = False

    def sample(self, rng):
        raise NotImplementedError

    def sample_n(self, rng, count):
        raise NotImplementedError


class FixedColdStart(ColdStartDistribution):
    """The seed behavior: every cold start costs exactly ``cold_start_s``.

    Consumes no randomness on either path, which is what keeps the
    default adapter's RNG stream identical to the pre-adapter code.
    """

    __slots__ = ("cold_start_s",)
    is_fixed = True

    def __init__(self, cold_start_s):
        if cold_start_s < 0:
            raise ConfigurationError("cold_start_s must be >= 0")
        self.cold_start_s = float(cold_start_s)

    def sample(self, rng):
        return self.cold_start_s

    def sample_n(self, rng, count):
        return np.full(count, self.cold_start_s, dtype=np.float64)

    def __repr__(self):
        return "FixedColdStart({:g}s)".format(self.cold_start_s)


class LognormalColdStart(ColdStartDistribution):
    """Lognormal cold starts: ``median_s * exp(N(0, sigma))``.

    The shape most platform measurement studies report — a tight body
    with a heavy right tail (image pulls, placement retries).
    """

    __slots__ = ("median_s", "sigma")

    def __init__(self, median_s, sigma=0.35):
        if median_s <= 0 or sigma < 0:
            raise ConfigurationError(
                "lognormal cold start needs median_s > 0 and sigma >= 0")
        self.median_s = float(median_s)
        self.sigma = float(sigma)

    def sample(self, rng):
        # np.exp, not math.exp: the two differ by an ulp on some inputs,
        # and scalar draws must match sample_n bit-for-bit.
        return self.median_s * float(np.exp(rng.normal(0.0, self.sigma)))

    def sample_n(self, rng, count):
        return self.median_s * np.exp(
            rng.normal(0.0, self.sigma, size=count))

    def __repr__(self):
        return "LognormalColdStart(median={:g}s, sigma={:g})".format(
            self.median_s, self.sigma)


class BimodalColdStart(ColdStartDistribution):
    """Two-mode cold starts: a fast common path and a rare slow one.

    Azure-style behavior — most cold starts reuse a pre-provisioned
    worker quickly, a ``slow_share`` minority pays full VM/worker
    provisioning.
    """

    __slots__ = ("fast_s", "slow_s", "slow_share")

    def __init__(self, fast_s, slow_s, slow_share=0.1):
        if fast_s < 0 or slow_s < fast_s:
            raise ConfigurationError(
                "bimodal cold start needs 0 <= fast_s <= slow_s")
        if not 0.0 <= slow_share <= 1.0:
            raise ConfigurationError("slow_share must be in [0, 1]")
        self.fast_s = float(fast_s)
        self.slow_s = float(slow_s)
        self.slow_share = float(slow_share)

    def sample(self, rng):
        return (self.slow_s if rng.random() < self.slow_share
                else self.fast_s)

    def sample_n(self, rng, count):
        draws = rng.random(size=count)
        return np.where(draws < self.slow_share, self.slow_s, self.fast_s)

    def __repr__(self):
        return "BimodalColdStart({:g}s/{:g}s @ {:.0%})".format(
            self.fast_s, self.slow_s, self.slow_share)


# -- keep-alive policies -------------------------------------------------------

class SlidingWindowKeepAlive(object):
    """The seed behavior: every request refreshes a fixed idle TTL."""

    __slots__ = ("idle_ttl",)
    kind = "sliding"

    def __init__(self, idle_ttl):
        if idle_ttl <= 0:
            raise ConfigurationError("idle_ttl must be positive")
        self.idle_ttl = float(idle_ttl)

    def spec(self):
        return ("sliding", self.idle_ttl)

    def __repr__(self):
        return "SlidingWindowKeepAlive({:g}s)".format(self.idle_ttl)


class FixedLeaseKeepAlive(object):
    """Instances live at most ``lease_s`` from creation, reuse or not.

    Models platforms that recycle sandboxes on a fixed schedule: warm
    reuse still refreshes the idle window, but never past the lease.
    """

    __slots__ = ("idle_ttl", "lease_s")
    kind = "lease"

    def __init__(self, idle_ttl, lease_s):
        if idle_ttl <= 0 or lease_s <= 0:
            raise ConfigurationError(
                "idle_ttl and lease_s must be positive")
        self.idle_ttl = float(idle_ttl)
        self.lease_s = float(lease_s)

    def spec(self):
        return ("lease", self.idle_ttl, self.lease_s)

    def __repr__(self):
        return "FixedLeaseKeepAlive(idle={:g}s, lease={:g}s)".format(
            self.idle_ttl, self.lease_s)


class ContainerReuseKeepAlive(object):
    """CaaS-style container reuse with a pinned min-instance floor.

    The first ``min_instances`` instances of each deployment are pinned:
    they never expire, so repeat traffic after an arbitrarily long idle
    gap still lands warm — the Code Engine ``minScale`` semantics.
    Instances beyond the floor behave like the sliding window.
    """

    __slots__ = ("idle_ttl", "min_instances")
    kind = "container-reuse"

    def __init__(self, idle_ttl, min_instances):
        if idle_ttl <= 0:
            raise ConfigurationError("idle_ttl must be positive")
        if min_instances <= 0:
            raise ConfigurationError("min_instances must be positive")
        self.idle_ttl = float(idle_ttl)
        self.min_instances = int(min_instances)

    def spec(self):
        return ("container-reuse", self.idle_ttl, self.min_instances)

    def __repr__(self):
        return "ContainerReuseKeepAlive(idle={:g}s, min={})".format(
            self.idle_ttl, self.min_instances)


def keepalive_policy_from_spec(spec):
    """Rebuild a keep-alive policy from its pure-data ``spec()`` tuple.

    This is how policies survive the pickled catalog plan: recipes carry
    the tuple, :func:`~repro.cloudsim.catalog.zone_from_recipe` rebuilds
    the object.
    """
    kind = spec[0]
    if kind == "sliding":
        return SlidingWindowKeepAlive(spec[1])
    if kind == "lease":
        return FixedLeaseKeepAlive(spec[1], spec[2])
    if kind == "container-reuse":
        return ContainerReuseKeepAlive(spec[1], spec[2])
    raise ConfigurationError(
        "unknown keep-alive policy kind {!r}".format(kind))


# -- quota models --------------------------------------------------------------

class QuotaModel(object):
    """Per-account admission control for parallel bursts.

    ``new_state()`` creates the per-account mutable state (None for
    stateless models); ``admit(state, n, now)`` returns how many of the
    ``n`` simultaneous requests pass.  Models never consume randomness.
    """

    __slots__ = ()

    def new_state(self):
        return None

    def admit(self, state, n_requests, now):
        raise NotImplementedError


class HardCapQuota(QuotaModel):
    """The seed behavior: ``min(n, cap)`` — stateless, history-free."""

    __slots__ = ("cap",)

    def __init__(self, cap):
        if cap <= 0:
            raise ConfigurationError("quota cap must be positive")
        self.cap = int(cap)

    def admit(self, state, n_requests, now):
        cap = self.cap
        return n_requests if n_requests <= cap else cap

    def __repr__(self):
        return "HardCapQuota({})".format(self.cap)


class BurstThenThrottleQuota(QuotaModel):
    """A burst allowance per window, then a lower sustained cap.

    Within each ``window_s``, the first ``burst`` admissions pass at
    full concurrency; once consumed, batches are throttled to
    ``sustained`` until the window rolls over.
    """

    __slots__ = ("burst", "sustained", "window_s")

    def __init__(self, burst, sustained, window_s=60.0):
        if burst <= 0 or sustained <= 0 or window_s <= 0:
            raise ConfigurationError(
                "burst, sustained, and window_s must be positive")
        self.burst = int(burst)
        self.sustained = int(sustained)
        self.window_s = float(window_s)

    def new_state(self):
        # [window_start, used_in_window]
        return [None, 0]

    def admit(self, state, n_requests, now):
        start = state[0]
        if start is None or now - start >= self.window_s:
            state[0] = now
            state[1] = 0
        headroom = self.burst - state[1]
        allowance = headroom if headroom > 0 else self.sustained
        admitted = n_requests if n_requests <= allowance else allowance
        state[1] += admitted
        return admitted

    def __repr__(self):
        return "BurstThenThrottleQuota(burst={}, sustained={})".format(
            self.burst, self.sustained)


class TokenRefillQuota(QuotaModel):
    """A token bucket refilled in sim time.

    ``capacity`` tokens at rest; each admitted request consumes one;
    tokens refill at ``refill_per_s``.  Sustained pressure converges on
    the refill rate — the GCP-style behavior where quota recovers
    continuously rather than per window.
    """

    __slots__ = ("capacity", "refill_per_s")

    def __init__(self, capacity, refill_per_s):
        if capacity <= 0 or refill_per_s <= 0:
            raise ConfigurationError(
                "capacity and refill_per_s must be positive")
        self.capacity = int(capacity)
        self.refill_per_s = float(refill_per_s)

    def new_state(self):
        # [tokens, last_refill_at]
        return [float(self.capacity), None]

    def admit(self, state, n_requests, now):
        last = state[1]
        if last is not None and now > last:
            state[0] = min(float(self.capacity),
                           state[0] + (now - last) * self.refill_per_s)
        state[1] = now
        available = int(state[0])
        admitted = n_requests if n_requests <= available else available
        state[0] -= admitted
        return admitted

    def __repr__(self):
        return "TokenRefillQuota(capacity={}, refill={:g}/s)".format(
            self.capacity, self.refill_per_s)


# -- pool scaling --------------------------------------------------------------

class PoolScalingRule(object):
    """The surge-scaling envelope written into zone recipes.

    The default instance reproduces the seed recipe tuple exactly:
    ``(0.85, 8, max(256, slots // 12))``.
    """

    __slots__ = ("pressure_threshold", "slots_per_minute", "surge_floor",
                 "surge_divisor")

    def __init__(self, pressure_threshold=0.85, slots_per_minute=8,
                 surge_floor=256, surge_divisor=12):
        if not 0 < pressure_threshold <= 1:
            raise ConfigurationError("pressure_threshold must be in (0, 1]")
        if slots_per_minute < 0 or surge_floor < 0 or surge_divisor <= 0:
            raise ConfigurationError("invalid scaling rule parameters")
        self.pressure_threshold = pressure_threshold
        self.slots_per_minute = slots_per_minute
        self.surge_floor = int(surge_floor)
        self.surge_divisor = int(surge_divisor)

    def recipe(self, slots):
        """The ``(pressure, slots/min, max_surge)`` recipe tuple."""
        return (self.pressure_threshold, self.slots_per_minute,
                max(self.surge_floor, slots // self.surge_divisor))

    def __repr__(self):
        return ("PoolScalingRule(threshold={}, per_minute={}, "
                "floor={}, divisor={})".format(
                    self.pressure_threshold, self.slots_per_minute,
                    self.surge_floor, self.surge_divisor))


# -- the adapter ---------------------------------------------------------------

class ProviderAdapter(object):
    """One platform's pluggable behavior bundle.

    ``preemption`` is ``None`` or a pure-data ``(interval_s, fraction)``
    tuple; zone recipes carry it and :func:`zone_from_recipe` attaches a
    seeded :class:`PreemptionProcess`.  Pricing lives on the owning
    ``ProviderConfig.billing`` — packs ship their own billing models.
    """

    __slots__ = ("cold_start", "keepalive", "quota", "scaling", "preemption")

    def __init__(self, cold_start, keepalive, quota, scaling=None,
                 preemption=None):
        self.cold_start = cold_start
        self.keepalive = keepalive
        self.quota = quota
        self.scaling = scaling if scaling is not None else PoolScalingRule()
        if preemption is not None:
            interval_s, fraction = preemption
            if interval_s <= 0 or not 0.0 < fraction <= 1.0:
                raise ConfigurationError(
                    "preemption needs interval_s > 0 and fraction in "
                    "(0, 1]")
            preemption = (float(interval_s), float(fraction))
        self.preemption = preemption

    def __repr__(self):
        return "ProviderAdapter(cold={!r}, keepalive={!r}, quota={!r})".format(
            self.cold_start, self.keepalive, self.quota)


# -- spot-style preemption -----------------------------------------------------

class PreemptionProcess(object):
    """Seeded capacity reclaims on a fixed interval (spot semantics).

    At every crossed ``interval_s`` boundary, each live non-pinned FI
    bucket in the zone is independently reclaimed with probability
    ``fraction``.  Draws come from a dedicated per-zone stream
    (``derive_rng(seed, "preempt", zone_id)``), so attaching the process
    never perturbs placement or runtime draws, and the strike sequence
    is a pure function of the seed and the request history — the same
    lazy ``apply_if_due`` contract as
    :class:`~repro.cloudsim.drift.DriftProcess`.
    """

    __slots__ = ("zone_id", "interval_s", "fraction", "rng",
                 "_next_strike", "preempted")

    def __init__(self, zone_id, interval_s, fraction, seed=0):
        if interval_s <= 0:
            raise ConfigurationError("interval_s must be positive")
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError("fraction must be in (0, 1]")
        self.zone_id = zone_id
        self.interval_s = float(interval_s)
        self.fraction = float(fraction)
        self.rng = derive_rng(seed, "preempt", zone_id)
        self._next_strike = None
        self.preempted = 0

    def apply_if_due(self, zone, now):
        nxt = self._next_strike
        if nxt is None:
            # Catch up from t=0, not from the first call: every crossed
            # boundary strikes, keeping the timeline a pure function of
            # the seed and history even when the first poll comes late.
            nxt = self.interval_s
        while nxt <= now:
            self._strike(zone, nxt)
            nxt += self.interval_s
        self._next_strike = nxt

    def _strike(self, zone, at):
        rng = self.rng
        fraction = self.fraction
        reclaimed = 0
        # Pools in sorted key order, buckets in admit order: the draw
        # sequence is deterministic given the allocation history.
        for cpu_key in sorted(zone.pools):
            pool = zone.pools[cpu_key]
            victims = 0
            for bucket in pool._buckets:
                if (bucket._released or bucket._pinned
                        or bucket.is_expired(at)):
                    continue
                if rng.random() < fraction:
                    # Shortening the expiry re-keys the bucket eagerly in
                    # the pool's heap; the sweep below releases it.
                    bucket.expire_at = at
                    victims += bucket._count
            if victims:
                pool.expire(at)
                reclaimed += victims
        if reclaimed:
            self.preempted += reclaimed
            if zone._bus.enabled:
                zone._bus.emit("az.preempt", at, zone=zone.zone_id,
                               reclaimed=reclaimed)

    def __repr__(self):
        return "PreemptionProcess({!r}, every {:g}s @ {:.0%})".format(
            self.zone_id, self.interval_s, self.fraction)


def default_adapter(provider):
    """The adapter reproducing ``provider``'s legacy scalars bit-identically.

    Fixed cold start (no RNG draws), sliding keep-alive at the provider's
    TTL, a hard concurrency cap, the legacy scaling tuple, no preemption.
    """
    return ProviderAdapter(
        cold_start=FixedColdStart(provider.cold_start_s),
        keepalive=SlidingWindowKeepAlive(provider.keepalive),
        quota=HardCapQuota(provider.concurrency_quota),
        scaling=PoolScalingRule(),
        preemption=None,
    )
