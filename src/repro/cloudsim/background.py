"""Background tenant load: other customers sharing the zone's pool.

The paper's saturation curves (Figure 4) fluctuate in the 80-98 % band
rather than pinning at 100 %, because other tenants' function instances
constantly claim and release slots in the shared pool.  This module models
that churn: a :class:`BackgroundLoad` process keeps a time-varying fraction
of each zone's capacity occupied by a synthetic ``__background__``
deployment, re-targeted on a fixed cadence with a diurnal swing plus noise.

Attach to any zone::

    load = BackgroundLoad(zone_id, profile=BackgroundProfile(), seed=7)
    zone.attach_background(load)

The catalog leaves background load off by default so that the calibrated
saturation points stay exact; the ablation benchmark
(`bench_ablation_background.py`) demonstrates its effect.
"""

import math

from repro.common.errors import ConfigurationError
from repro.common.rng import derive_rng
from repro.common.units import DAYS, HOURS, MINUTES

BACKGROUND_DEPLOYMENT = "__background__"


class BackgroundProfile(object):
    """Shape of the background occupancy over time.

    ``base_fraction`` — mean share of zone capacity held by other tenants;
    ``diurnal_amplitude`` — peak-to-mean swing following the local day
    (the "Night Shift" effect);
    ``noise_sigma`` — per-step lognormal jitter;
    ``peak_hour`` — local hour of maximum load;
    ``cadence`` — how often the target is re-drawn (seconds).
    """

    __slots__ = ("base_fraction", "diurnal_amplitude", "noise_sigma",
                 "peak_hour", "cadence")

    def __init__(self, base_fraction=0.10, diurnal_amplitude=0.05,
                 noise_sigma=0.20, peak_hour=14.0, cadence=5 * MINUTES):
        if not 0 <= base_fraction < 1:
            raise ConfigurationError("base_fraction must be in [0, 1)")
        if diurnal_amplitude < 0 or noise_sigma < 0:
            raise ConfigurationError("amplitudes must be non-negative")
        if cadence <= 0:
            raise ConfigurationError("cadence must be positive")
        self.base_fraction = float(base_fraction)
        self.diurnal_amplitude = float(diurnal_amplitude)
        self.noise_sigma = float(noise_sigma)
        self.peak_hour = float(peak_hour)
        self.cadence = float(cadence)


class BackgroundLoad(object):
    """Keeps a drifting share of a zone's slots busy with tenant FIs."""

    def __init__(self, zone_id, profile=None, seed=0):
        self.zone_id = zone_id
        self.profile = profile or BackgroundProfile()
        self._seed = seed
        self._last_bucket = None
        self._held = []  # buckets we created, for explicit release

    def target_fraction(self, now):
        """Deterministic occupancy target at simulated time ``now``."""
        profile = self.profile
        hour = (now % DAYS) / HOURS
        phase = (hour - profile.peak_hour) / 24.0 * 2.0 * math.pi
        diurnal = profile.diurnal_amplitude * math.cos(phase)
        bucket = int(now // profile.cadence)
        rng = derive_rng(self._seed, "background", self.zone_id, bucket)
        noise = math.exp(rng.normal(0.0, profile.noise_sigma))
        fraction = (profile.base_fraction + diurnal) * noise
        return min(max(fraction, 0.0), 0.95)

    def apply_if_due(self, zone, now):
        """Re-target the background occupancy if a cadence tick passed."""
        bucket = int(now // self.profile.cadence)
        if bucket == self._last_bucket:
            return False
        self._last_bucket = bucket
        target_slots = int(zone.capacity * self.target_fraction(now))
        current = sum(b.count for b in self._held if not b.is_expired(now))
        if target_slots > current:
            self._grow(zone, target_slots - current, now)
        elif target_slots < current:
            self._shrink(zone, current - target_slots, now)
        return True

    # -- internals ------------------------------------------------------------
    def _grow(self, zone, slots, now):
        grown = 0
        for pool in zone.pools.values():
            if grown >= slots:
                break
            free = pool.free_slots(now)
            take = min(free, slots - grown)
            if take > 0:
                # Background FIs stay "busy" for a long stretch; the next
                # re-target shrinks them explicitly.
                bucket = pool.allocate(BACKGROUND_DEPLOYMENT, take, now,
                                       duration=self.profile.cadence * 4,
                                       keepalive=zone.keepalive)
                self._held.append(bucket)
                grown += take

    def _shrink(self, zone, slots, now):
        remaining = slots
        survivors = []
        for bucket in self._held:
            if bucket.is_expired(now):
                continue
            if remaining >= bucket.count:
                remaining -= bucket.count
                bucket.expire_at = now  # release immediately
            elif remaining > 0:
                bucket.count -= remaining
                remaining = 0
                survivors.append(bucket)
            else:
                survivors.append(bucket)
        self._held = survivors
        for pool in zone.pools.values():
            pool.expire(now)
