"""Scenario packs: named providers with genuinely different semantics.

The paper's sky mesh spans AWS Lambda, IBM Code Engine, and Digital
Ocean; Lithops-style adapter registries target a dozen FaaS *and* CaaS
backends beyond those.  Each pack here is a full
:class:`~repro.cloudsim.provider.ProviderConfig` with its own
:class:`~repro.cloudsim.adapters.ProviderAdapter` and billing model,
registered by name so it works everywhere a provider name is accepted
today — catalog install (each pack owns a synthetic region in
``PACK_REGION_SPECS``), ``CloudSpec.for_zones``, ``repro sweep``,
``repro serve``, and the CLI ``--provider`` filter:

* ``gcp`` — lognormal cold starts, token-refill quota, 100 ms billing;
* ``azure`` — bimodal cold starts (fast worker reuse vs rare slow
  provisioning), burst-then-throttle quota, 100 ms minimum bill;
* ``openwhisk`` — lognormal cold starts and a fixed one-hour container
  lease capping warm reuse;
* ``ce-caas`` — Code-Engine-style CaaS: slow container cold starts,
  container reuse with a pinned min-instance floor, per-second billing;
* ``spot`` — Lambda-like semantics at a steep discount with seeded
  interval preemption reclaiming warm capacity.

Numbers are representative of published measurement studies, not
quotes; they exist to exercise the adapter axes, not to price real
bills.  Importing this module registers every pack (idempotently);
:func:`~repro.cloudsim.provider.provider_by_name` imports it lazily on
the first unknown-name lookup.
"""

from repro.cloudsim.adapters import (
    BimodalColdStart,
    BurstThenThrottleQuota,
    ContainerReuseKeepAlive,
    FixedColdStart,
    FixedLeaseKeepAlive,
    HardCapQuota,
    LognormalColdStart,
    PoolScalingRule,
    ProviderAdapter,
    SlidingWindowKeepAlive,
    TokenRefillQuota,
)
from repro.cloudsim.billing import BillingModel
from repro.cloudsim.provider import PROVIDERS, ProviderConfig

# -- pack billing models -------------------------------------------------------

# GCP-style: memory + folded vCPU rate, billed at 100 ms granularity.
GCP_BILLING = BillingModel(
    gb_second_rates={"x86_64": 1.65e-5},
    per_request=4e-7,
    granularity=0.1,
)

# Azure-consumption-style: 1 ms granularity but a 100 ms minimum bill.
AZURE_BILLING = BillingModel(
    gb_second_rates={"x86_64": 1.6e-5},
    per_request=2e-7,
    granularity=1e-3,
    min_billed_duration=0.1,
)

# OpenWhisk-style (IBM Cloud Functions pricing): flat GB-s, 100 ms ticks.
OPENWHISK_BILLING = BillingModel(
    gb_second_rates={"x86_64": 1.7e-5},
    per_request=0.0,
    granularity=0.1,
)

# CaaS: allocated container-seconds (memory + coupled vCPU), per-second.
CE_CAAS_BILLING = BillingModel(
    gb_second_rates={"x86_64": 3.56e-6 + 0.5 * 3.431e-5},
    per_request=0.0,
    granularity=1.0,
)

# Spot: Lambda-shaped pricing at a deep discount — the whole point.
SPOT_BILLING = BillingModel(
    gb_second_rates={"x86_64": 1.66667e-5 * 0.35,
                     "arm64": 1.33334e-5 * 0.35},
    per_request=2e-7,
    granularity=1e-3,
)

# -- pack providers ------------------------------------------------------------

GCP_FUNCTIONS = ProviderConfig(
    name="gcp",
    memory_options_mb=(128, 256, 512, 1024, 2048, 4096, 8192),
    archs=("x86_64",),
    concurrency_quota=1000,
    billing=GCP_BILLING,
    keepalive=900.0,
    cold_start_s=0.45,
    slots_per_host=64,
    base_arrival_window=0.30,
    function_timeout=540.0,
    adapter=ProviderAdapter(
        cold_start=LognormalColdStart(median_s=0.45, sigma=0.35),
        keepalive=SlidingWindowKeepAlive(900.0),
        quota=TokenRefillQuota(capacity=1000, refill_per_s=250.0),
        scaling=PoolScalingRule(slots_per_minute=12),
    ),
)

AZURE_FUNCTIONS = ProviderConfig(
    name="azure",
    memory_options_mb=(128, 256, 512, 1024, 1536),
    archs=("x86_64",),
    concurrency_quota=600,
    billing=AZURE_BILLING,
    keepalive=1200.0,
    cold_start_s=0.25,
    slots_per_host=48,
    base_arrival_window=0.40,
    function_timeout=600.0,
    adapter=ProviderAdapter(
        cold_start=BimodalColdStart(fast_s=0.25, slow_s=2.5,
                                    slow_share=0.15),
        keepalive=SlidingWindowKeepAlive(1200.0),
        quota=BurstThenThrottleQuota(burst=600, sustained=200,
                                     window_s=60.0),
    ),
)

OPENWHISK = ProviderConfig(
    name="openwhisk",
    memory_options_mb=(128, 256, 512, 1024, 2048),
    archs=("x86_64",),
    concurrency_quota=300,
    billing=OPENWHISK_BILLING,
    keepalive=600.0,
    cold_start_s=0.30,
    slots_per_host=32,
    base_arrival_window=0.45,
    function_timeout=300.0,
    adapter=ProviderAdapter(
        cold_start=LognormalColdStart(median_s=0.30, sigma=0.5),
        keepalive=FixedLeaseKeepAlive(idle_ttl=600.0, lease_s=3600.0),
        quota=HardCapQuota(300),
        scaling=PoolScalingRule(slots_per_minute=4, surge_floor=128),
    ),
)

CODE_ENGINE_CAAS = ProviderConfig(
    name="ce-caas",
    memory_options_mb=(1024, 2048, 4096, 8192),
    archs=("x86_64",),
    concurrency_quota=250,
    billing=CE_CAAS_BILLING,
    keepalive=600.0,
    cold_start_s=2.2,
    slots_per_host=48,
    base_arrival_window=0.45,
    function_timeout=600.0,
    adapter=ProviderAdapter(
        cold_start=LognormalColdStart(median_s=2.2, sigma=0.3),
        keepalive=ContainerReuseKeepAlive(idle_ttl=600.0,
                                          min_instances=96),
        quota=HardCapQuota(250),
    ),
)

SPOT_LAMBDA = ProviderConfig(
    name="spot",
    memory_options_mb=(128, 256, 512, 1024, 2048, 4096, 6144, 8192,
                       10240),
    archs=("x86_64", "arm64"),
    concurrency_quota=1000,
    billing=SPOT_BILLING,
    keepalive=300.0,
    cold_start_s=0.18,
    slots_per_host=64,
    base_arrival_window=0.25,
    adapter=ProviderAdapter(
        cold_start=FixedColdStart(0.18),
        keepalive=SlidingWindowKeepAlive(300.0),
        quota=HardCapQuota(1000),
        preemption=(300.0, 0.25),
    ),
)

#: Pack name -> ProviderConfig, in registration order.
PACK_PROVIDERS = {
    "gcp": GCP_FUNCTIONS,
    "azure": AZURE_FUNCTIONS,
    "openwhisk": OPENWHISK,
    "ce-caas": CODE_ENGINE_CAAS,
    "spot": SPOT_LAMBDA,
}

for _config in PACK_PROVIDERS.values():
    # Idempotent: re-importing (or a user re-registering the same pack)
    # must not raise, so register directly rather than via
    # register_provider's duplicate check.
    PROVIDERS.setdefault(_config.name, _config)
del _config
