"""FaaS billing models.

Serverless platforms bill **GB-seconds of allocated memory** (duration
rounded up to a granularity, usually 1 ms) plus a small per-request fee.
Crucially for the paper's regional routing strategy: *network latency is not
billed* — only time spent inside the FI — so routing to a distant zone with
faster CPUs lowers cost even though round-trip time grows.

Rates are the providers' published on-demand prices (2024/2025 era):

* AWS Lambda: $1.66667e-5 / GB-s (x86_64), $1.33334e-5 / GB-s (arm64),
  $0.20 per million requests;
* IBM Code Engine: memory $3.56e-6 / GB-s plus vCPU $3.431e-5 / vCPU-s
  (vCPU scales with the memory setting), folded into an effective GB-s rate;
* Digital Ocean Functions: $1.85e-5 / GB-s, no per-request fee.
"""

import math

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.units import Money


def duration_ticks(durations_s, granularity, min_billed_duration=0.0):
    """Billed granularity ticks per duration, as exact integers.

    Vectorized form of the ``ceil(round(d / g, 9))`` quantization inside
    :meth:`BillingModel.bill`.  Works elementwise on arrays *and* scalars
    through the same numpy ufuncs, so a per-request loop calling this on
    scalars produces bit-identical ticks to one call on the full array —
    the contract that lets the batch poll path aggregate billing as an
    integer tick total (exact summation, no float ordering effects)
    while the looped executable spec quantizes request by request.
    """
    d = np.asarray(durations_s, dtype=np.float64)
    if min_billed_duration > 0.0:
        d = np.maximum(d, min_billed_duration)
    return np.ceil(np.round(d / granularity, 9)).astype(np.int64)


class InvocationBill(object):
    """Cost breakdown for one or more invocations."""

    __slots__ = ("compute", "request", "billed_duration", "requests")

    def __init__(self, compute, request, billed_duration, requests):
        self.compute = compute
        self.request = request
        self.billed_duration = billed_duration
        self.requests = requests

    @property
    def total(self):
        return self.compute + self.request

    def __add__(self, other):
        return InvocationBill(
            self.compute + other.compute,
            self.request + other.request,
            self.billed_duration + other.billed_duration,
            self.requests + other.requests,
        )

    def __repr__(self):
        return "InvocationBill(total={}, requests={})".format(
            self.total, self.requests)

    @classmethod
    def zero(cls):
        return cls(Money(0), Money(0), 0.0, 0)


class BillingModel(object):
    """Per-provider pricing: GB-second rates by architecture plus request fee."""

    __slots__ = ("gb_second_rates", "per_request", "granularity",
                 "min_billed_duration")

    def __init__(self, gb_second_rates, per_request=0.0, granularity=1e-3,
                 min_billed_duration=0.0):
        if not gb_second_rates:
            raise ConfigurationError("need at least one GB-second rate")
        self.gb_second_rates = dict(gb_second_rates)
        self.per_request = float(per_request)
        self.granularity = float(granularity)
        self.min_billed_duration = float(min_billed_duration)

    def billed_duration(self, duration_s):
        """Round a raw duration up to the billing granularity."""
        duration_s = max(duration_s, self.min_billed_duration)
        ticks = math.ceil(round(duration_s / self.granularity, 9))
        return ticks * self.granularity

    def rate_for(self, arch):
        try:
            return self.gb_second_rates[arch]
        except KeyError:
            raise ConfigurationError(
                "no billing rate for architecture {!r}".format(arch))

    def bill(self, memory_mb, duration_s, arch="x86_64", requests=1):
        """Bill ``requests`` invocations of ``duration_s`` each."""
        if requests < 0:
            raise ConfigurationError("requests must be non-negative")
        # billed_duration / rate_for / gb_seconds, inlined with the same
        # operation order: this runs once per invocation and per poll.
        granularity = self.granularity
        if duration_s < self.min_billed_duration:
            duration_s = self.min_billed_duration
        billed = math.ceil(round(duration_s / granularity, 9)) * granularity
        try:
            rate = self.gb_second_rates[arch]
        except KeyError:
            raise ConfigurationError(
                "no billing rate for architecture {!r}".format(arch))
        compute = Money(rate * (memory_mb / 1024.0 * billed) * requests)
        request_fee = Money(self.per_request * requests)
        return InvocationBill(compute, request_fee, billed * requests,
                              requests)

    def bill_ticks(self, memory_mb, ticks, arch="x86_64", requests=1):
        """Bill an aggregate of ``ticks`` granularity ticks over
        ``requests`` invocations (see :func:`duration_ticks`).

        The batch poll path sums per-request integer ticks — an exact
        sum regardless of order — and converts to money once, so its
        total is bit-identical whether the ticks were accumulated by a
        vectorized reduction or a per-request loop.
        """
        if requests < 0 or ticks < 0:
            raise ConfigurationError(
                "ticks and requests must be non-negative")
        billed = int(ticks) * self.granularity
        try:
            rate = self.gb_second_rates[arch]
        except KeyError:
            raise ConfigurationError(
                "no billing rate for architecture {!r}".format(arch))
        compute = Money(rate * (memory_mb / 1024.0 * billed))
        request_fee = Money(self.per_request * requests)
        return InvocationBill(compute, request_fee, billed, requests)


AWS_LAMBDA_BILLING = BillingModel(
    gb_second_rates={"x86_64": 1.66667e-5, "arm64": 1.33334e-5},
    per_request=2e-7,
    granularity=1e-3,
)

# IBM Code Engine couples vCPU to memory (0.5 vCPU per GB in its standard
# profiles); effective rate per GB-s = mem + 0.5 * vcpu rate.
IBM_CODE_ENGINE_BILLING = BillingModel(
    gb_second_rates={"x86_64": 3.56e-6 + 0.5 * 3.431e-5},
    per_request=0.0,
    granularity=0.1,
)

DIGITAL_OCEAN_BILLING = BillingModel(
    gb_second_rates={"x86_64": 1.85e-5},
    per_request=0.0,
    granularity=1e-3,
    min_billed_duration=0.0,
)
