"""Function-instance records.

The simulator tracks FIs at two granularities:

* :class:`FIBucket` — an aggregate of ``count`` identical FIs created
  together (same deployment, same CPU pool, same lifecycle timestamps).
  Sampling campaigns place 1,000 requests per poll, so bucketing keeps the
  hot path allocation-free.
* :class:`FunctionInstance` — a bucket of count 1 with identity (instance
  id, host id) used by the per-request invocation path that the smart router
  drives, where retry logic needs to reason about *this specific* FI.

Lifecycle: an FI is **busy** until ``busy_until`` (it is executing a
request), then **warm-idle** until ``expire_at`` (the platform's keep-alive,
~5 minutes on AWS Lambda), after which its slot is released.
"""


class FIBucket(object):
    """``count`` FIs sharing a deployment, CPU, and lifecycle window."""

    __slots__ = ("deployment", "cpu_key", "count", "busy_until", "expire_at")

    def __init__(self, deployment, cpu_key, count, busy_until, expire_at):
        self.deployment = deployment
        self.cpu_key = cpu_key
        self.count = int(count)
        self.busy_until = float(busy_until)
        self.expire_at = float(expire_at)

    def is_expired(self, now):
        return now >= self.expire_at

    def is_idle(self, now):
        """Warm and not executing: eligible for reuse by its deployment."""
        return self.busy_until <= now < self.expire_at

    def touch(self, now, duration, keepalive):
        """Serve another request: busy for ``duration``, then fresh keep-alive."""
        self.busy_until = now + duration
        self.expire_at = self.busy_until + keepalive

    def __repr__(self):
        return ("FIBucket({}x {} for {!r}, busy_until={:.2f}, "
                "expire_at={:.2f})".format(self.count, self.cpu_key,
                                           self.deployment, self.busy_until,
                                           self.expire_at))


class FunctionInstance(FIBucket):
    """A single FI with identity, as observed by in-function profiling."""

    __slots__ = ("instance_id", "host_id", "created_at", "invocations")

    def __init__(self, instance_id, host_id, deployment, cpu_key,
                 created_at, busy_until, expire_at):
        super(FunctionInstance, self).__init__(
            deployment, cpu_key, 1, busy_until, expire_at)
        self.instance_id = instance_id
        self.host_id = host_id
        self.created_at = float(created_at)
        self.invocations = 0

    def touch(self, now, duration, keepalive):
        super(FunctionInstance, self).touch(now, duration, keepalive)
        self.invocations += 1

    @property
    def is_cold(self):
        """True until the FI has served its first request."""
        return self.invocations == 0

    def __repr__(self):
        return "FunctionInstance({!r} on {!r}, cpu={})".format(
            self.instance_id, self.host_id, self.cpu_key)
