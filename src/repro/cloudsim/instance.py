"""Function-instance records.

The simulator tracks FIs at two granularities:

* :class:`FIBucket` — an aggregate of ``count`` identical FIs created
  together (same deployment, same CPU pool, same lifecycle timestamps).
  Sampling campaigns place 1,000 requests per poll, so bucketing keeps the
  hot path allocation-free.
* :class:`FunctionInstance` — a bucket of count 1 with identity (instance
  id, host id) used by the per-request invocation path that the smart router
  drives, where retry logic needs to reason about *this specific* FI.

Lifecycle: an FI is **busy** until ``busy_until`` (it is executing a
request), then **warm-idle** until ``expire_at`` (the platform's keep-alive,
~5 minutes on AWS Lambda), after which its slot is released.

Capacity-accounting hooks
-------------------------
Host pools keep an O(1) cached ``occupied`` counter and a min-heap of bucket
expiry times instead of sweeping every bucket on every capacity read.  For
the cache to stay exact, buckets notify their owning pool whenever the two
accounting-relevant fields change out from under it:

* ``count`` — shrunk by warm-claim splits and background-load re-targets;
  the delta flows straight into the pool's occupancy counter;
* ``expire_at`` — refreshed by :meth:`touch` and force-expired by the
  background process; the pool re-keys the bucket in its expiry heap.

``busy_until`` only affects idleness (never slot accounting), so it stays a
plain attribute.  Buckets not yet admitted to a pool (``_pool is None``)
behave exactly like the plain records they used to be.
"""


class FIBucket(object):
    """``count`` FIs sharing a deployment, CPU, and lifecycle window."""

    __slots__ = ("deployment", "cpu_key", "busy_until",
                 "_count", "_expire_at", "_pool", "_heap_key", "_released",
                 "_lease_until", "_pinned")

    # Identity defaults: anonymous buckets answer ``instance_id is None``
    # with a plain attribute read, so release-path type checks never pay
    # for a raising ``getattr``.  :class:`FunctionInstance` shadows both
    # with real slots.
    instance_id = None
    host_id = None

    def __init__(self, deployment, cpu_key, count, busy_until, expire_at):
        self.deployment = deployment
        self.cpu_key = cpu_key
        self._pool = None
        self._heap_key = None
        self._released = False
        # Keep-alive-policy state (set by the zone's policy hook, never
        # on the default sliding-window path): ``_lease_until`` caps the
        # total lifetime; ``_pinned`` marks CaaS min-instance floors that
        # never expire.
        self._lease_until = None
        self._pinned = False
        self._count = int(count)
        self.busy_until = float(busy_until)
        self._expire_at = float(expire_at)

    # -- accounting-tracked fields ------------------------------------------
    @property
    def count(self):
        return self._count

    @count.setter
    def count(self, value):
        value = int(value)
        pool = self._pool
        if pool is not None and not self._released:
            pool._occupied += value - self._count
        self._count = value

    @property
    def expire_at(self):
        return self._expire_at

    @expire_at.setter
    def expire_at(self, value):
        value = float(value)
        self._expire_at = value
        pool = self._pool
        # Lazy re-key: extensions (warm reuse refreshing the keep-alive) keep
        # the old heap entry — the pool re-pushes it when it pops early.
        # Only a *shortened* expiry must be re-keyed eagerly, or the heap
        # would release the slot late.
        if (pool is not None and not self._released
                and value < self._heap_key):
            pool._schedule_expiry(self)

    # -- lifecycle ----------------------------------------------------------
    def is_expired(self, now):
        return now >= self._expire_at

    def is_idle(self, now):
        """Warm and not executing: eligible for reuse by its deployment."""
        return self.busy_until <= now < self._expire_at

    def touch(self, now, duration, keepalive):
        """Serve another request: busy for ``duration``, then fresh keep-alive.

        A fixed-lease policy caps the refresh: the keep-alive never
        extends past ``_lease_until`` (None on the default path).
        """
        self.busy_until = now + duration
        expire = self.busy_until + keepalive
        lease = self._lease_until
        if lease is not None and expire > lease:
            expire = lease
        self.expire_at = expire

    def __repr__(self):
        return ("FIBucket({}x {} for {!r}, busy_until={:.2f}, "
                "expire_at={:.2f})".format(self._count, self.cpu_key,
                                           self.deployment, self.busy_until,
                                           self._expire_at))


class FunctionInstance(FIBucket):
    """A single FI with identity, as observed by in-function profiling."""

    __slots__ = ("instance_id", "host_id", "created_at", "invocations")

    def __init__(self, instance_id, host_id, deployment, cpu_key,
                 created_at, busy_until, expire_at):
        super(FunctionInstance, self).__init__(
            deployment, cpu_key, 1, busy_until, expire_at)
        self.instance_id = instance_id
        self.host_id = host_id
        self.created_at = float(created_at)
        self.invocations = 0

    def touch(self, now, duration, keepalive):
        super(FunctionInstance, self).touch(now, duration, keepalive)
        self.invocations += 1

    @property
    def is_cold(self):
        """True until the FI has served its first request."""
        return self.invocations == 0

    def __repr__(self):
        return "FunctionInstance({!r} on {!r}, cpu={})".format(
            self.instance_id, self.host_id, self.cpu_key)
