"""Regions: named groups of availability zones with a geographic location."""

from repro.common.errors import ConfigurationError, UnknownZoneError
from repro.cloudsim.network import GeoPoint


class Region(object):
    """A provider region containing one or more availability zones."""

    def __init__(self, name, provider, geo):
        if not isinstance(geo, GeoPoint):
            raise ConfigurationError("region geo must be a GeoPoint")
        self.name = name
        self.provider = provider
        self.geo = geo
        self.zones = {}

    def add_zone(self, zone):
        if zone.zone_id in self.zones:
            raise ConfigurationError(
                "duplicate zone {!r} in region {!r}".format(
                    zone.zone_id, self.name))
        self.zones[zone.zone_id] = zone
        return zone

    def zone(self, zone_id):
        try:
            return self.zones[zone_id]
        except KeyError:
            raise UnknownZoneError(zone_id)

    def zone_ids(self):
        return sorted(self.zones)

    def first_zone(self):
        """The region's alphabetically first zone (its default target)."""
        if not self.zones:
            raise ConfigurationError(
                "region {!r} has no zones".format(self.name))
        return self.zones[self.zone_ids()[0]]

    def aggregate_cpu_shares(self):
        """Capacity-weighted CPU distribution across the region's zones."""
        from repro.common.distributions import CategoricalDistribution
        counts = {}
        for zone in self.zones.values():
            for cpu_key, pool in zone.pools.items():
                if pool.capacity > 0:
                    counts[cpu_key] = counts.get(cpu_key, 0) + pool.capacity
        return CategoricalDistribution(counts)

    def __repr__(self):
        return "Region({!r}, provider={!r}, zones={})".format(
            self.name, self.provider.name, len(self.zones))
