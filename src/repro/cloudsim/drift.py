"""Temporal drift of a zone's provisioned infrastructure.

EX-4 shows that some AZs (ca-central-1a, us-west-1a, us-west-1b) change
their CPU mix substantially day to day — 20-50 % characterization error by
day two — while others (sa-east-1a, eu-north-1a) stay within 10 % for two
weeks.  Hour-scale variation exists but is mostly small (22 of 24 hours
within 10 % in us-west-1b), with occasional excursions.

We model this with a **logit-space random walk** over the zone's CPU shares:

* a *daily* step with standard deviation ``daily_sigma`` (volatile zones use
  a large sigma, stable zones a small one);
* an *hourly* perturbation around the daily target with ``hourly_sigma``,
  occasionally amplified by ``excursion_scale`` with probability
  ``excursion_prob`` per hour;
* a lognormal *capacity* walk with ``capacity_sigma`` reproducing the
  temporal variation in samples-to-failure the paper notes;
* optional Poisson **hardware events** that introduce a previously unseen
  CPU model at a small share (the EX-3 anomaly).

Everything is a pure function of (zone seed, day, hour), so experiments are
reproducible regardless of query order.
"""

import math

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import derive_rng
from repro.common.units import DAYS, HOURS


class DriftProfile(object):
    """Parameters of a zone's drift behaviour."""

    __slots__ = ("daily_sigma", "hourly_sigma", "excursion_prob",
                 "excursion_scale", "capacity_sigma", "hardware_event_rate",
                 "candidate_cpus")

    def __init__(self, daily_sigma=0.05, hourly_sigma=0.02,
                 excursion_prob=0.08, excursion_scale=5.0,
                 capacity_sigma=0.10, hardware_event_rate=0.0,
                 candidate_cpus=()):
        for name, value in [("daily_sigma", daily_sigma),
                            ("hourly_sigma", hourly_sigma),
                            ("capacity_sigma", capacity_sigma)]:
            if value < 0:
                raise ConfigurationError(name + " must be non-negative")
        if not 0 <= excursion_prob <= 1:
            raise ConfigurationError("excursion_prob must be in [0, 1]")
        self.daily_sigma = float(daily_sigma)
        self.hourly_sigma = float(hourly_sigma)
        self.excursion_prob = float(excursion_prob)
        self.excursion_scale = float(excursion_scale)
        self.capacity_sigma = float(capacity_sigma)
        self.hardware_event_rate = float(hardware_event_rate)
        self.candidate_cpus = tuple(candidate_cpus)

    @classmethod
    def stable(cls):
        """A zone whose mix stays within ~10 % APE for weeks."""
        return cls(daily_sigma=0.035, hourly_sigma=0.015,
                   excursion_prob=0.04, capacity_sigma=0.08)

    @classmethod
    def volatile(cls):
        """A zone whose mix shifts 20-50 % APE within a day or two."""
        return cls(daily_sigma=0.38, hourly_sigma=0.05,
                   excursion_prob=0.08, excursion_scale=4.0,
                   capacity_sigma=0.15)

    @classmethod
    def frozen(cls):
        """No drift at all (unit tests, single-CPU zones)."""
        return cls(daily_sigma=0.0, hourly_sigma=0.0, excursion_prob=0.0,
                   capacity_sigma=0.0)


class DriftProcess(object):
    """Deterministic drift trajectory for one zone.

    ``target_for(day, hour)`` returns ``(shares, total_hosts)``; the zone
    rebalances to those targets lazily when the simulated clock crosses an
    hour boundary (:meth:`apply_if_due`).
    """

    def __init__(self, zone_id, base_shares, base_hosts, profile, seed=0):
        self.zone_id = zone_id
        self.profile = profile
        self.base_hosts = int(base_hosts)
        self._seed = seed
        self._base_logits = {c: math.log(max(base_shares.share(c), 1e-6))
                             for c in base_shares.categories}
        self._daily_cache = {}
        self._last_applied = None
        self._next_due = float("-inf")

    # -- trajectory -------------------------------------------------------------
    def _daily_state(self, day):
        """Logits and capacity multiplier for ``day`` (cached cumulative walk)."""
        if day in self._daily_cache:
            return self._daily_cache[day]
        if day == 0:
            state = (dict(self._base_logits), 1.0)
        else:
            prev_logits, prev_cap = self._daily_state(day - 1)
            rng = derive_rng(self._seed, "drift", self.zone_id, "day", day)
            logits = {c: v + rng.normal(0.0, self.profile.daily_sigma)
                      for c, v in prev_logits.items()}
            cap = prev_cap * float(np.exp(
                rng.normal(0.0, self.profile.capacity_sigma)))
            cap = min(max(cap, 0.4), 2.5)
            if (self.profile.hardware_event_rate > 0
                    and self.profile.candidate_cpus):
                if rng.random() < self.profile.hardware_event_rate:
                    newcomer = str(rng.choice(self.profile.candidate_cpus))
                    if newcomer not in logits:
                        # Enter at a small share relative to the leaders.
                        logits[newcomer] = max(logits.values()) - 3.0
            state = (logits, cap)
        self._daily_cache[day] = state
        return state

    def target_for(self, day, hour=0):
        """CPU shares and host count at (day, hour)."""
        logits, cap = self._daily_state(int(day))
        hour = int(hour) % 24
        rng = derive_rng(self._seed, "drift", self.zone_id, "hour", day, hour)
        sigma = self.profile.hourly_sigma
        if sigma > 0 and rng.random() < self.profile.excursion_prob:
            sigma *= self.profile.excursion_scale
        perturbed = {c: v + (rng.normal(0.0, sigma) if sigma > 0 else 0.0)
                     for c, v in logits.items()}
        shares = _softmax(perturbed)
        hosts = max(1, int(round(self.base_hosts * cap)))
        return shares, hosts

    # -- zone hook ------------------------------------------------------------------
    def apply_if_due(self, zone, now):
        """Rebalance ``zone`` if the clock entered a new hour bucket.

        The hot paths call this once per request; the cached next hour
        boundary turns the common no-op case into a single comparison.
        """
        if now < self._next_due:
            return False
        bucket = (int(now // DAYS), int((now % DAYS) // HOURS))
        self._next_due = (bucket[0] * 24 + bucket[1] + 1) * HOURS
        if bucket == self._last_applied:
            return False
        self._last_applied = bucket
        shares, hosts = self.target_for(*bucket)
        zone.rebalance(shares, now=now, total_hosts=hosts)
        return True


def _softmax(logits):
    values = np.array(list(logits.values()), dtype=float)
    values -= values.max()
    exp = np.exp(values)
    probs = exp / exp.sum()
    return {c: float(p) for c, p in zip(logits.keys(), probs)}
