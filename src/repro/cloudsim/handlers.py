"""Function handlers: what runs inside a simulated FI.

A handler answers one question for the simulator — *how long does this
request run on a given CPU?* — and optionally produces a response payload.
Real workload code lives in :mod:`repro.workloads`; inside the simulator we
use calibrated runtime models so that 10,000-invocation profiling runs stay
fast while preserving the per-CPU sensitivity that routing exploits.
"""

import math

import numpy as np

from repro.common.errors import ConfigurationError


class Handler(object):
    """Base handler interface."""

    def duration_on(self, cpu_key, rng, payload=None):
        """Billed runtime (seconds) of one request on ``cpu_key``."""
        raise NotImplementedError

    def durations_on(self, cpu_key, rng, count, payload=None):
        """Runtimes of ``count`` requests on ``cpu_key`` as a float64 array.

        The base implementation is the executable spec: ``count``
        sequential :meth:`duration_on` draws.  Vectorized overrides must
        consume the *same RNG stream* — for numpy Generators a single
        ``rng.normal(mu, sigma, size=n)`` call advances the stream exactly
        like ``n`` scalar ``rng.normal(mu, sigma)`` calls, which is what
        makes the batch poll path (:meth:`repro.cloudsim.Cloud.poll_batch`)
        seed-compatible between its vectorized and looped forms.
        """
        return np.asarray([self.duration_on(cpu_key, rng, payload)
                           for _ in range(count)], dtype=np.float64)

    def respond(self, cpu_key, payload=None):
        """Response body returned to the client (may be None)."""
        return None


class SleepHandler(Handler):
    """The paper's sampling function: sleep for a fixed interval.

    Sleep time is CPU-independent; a tiny per-request overhead models the
    interpreter's dispatch cost.
    """

    def __init__(self, sleep_s, overhead_s=1e-3):
        if sleep_s <= 0:
            raise ConfigurationError("sleep must be positive")
        self.sleep_s = float(sleep_s)
        self.overhead_s = float(overhead_s)

    def duration_on(self, cpu_key, rng, payload=None):
        return self.sleep_s + self.overhead_s

    def durations_on(self, cpu_key, rng, count, payload=None):
        # Constant duration, no RNG consumed — exactly like the scalar path.
        return np.full(count, self.sleep_s + self.overhead_s)

    def respond(self, cpu_key, payload=None):
        return {"slept": self.sleep_s, "cpu": cpu_key}


class ModeledWorkloadHandler(Handler):
    """A workload whose runtime is ``base × cpu_factor × lognormal noise``.

    ``cpu_factors`` maps cpu_key -> relative runtime (1.0 = the reference
    CPU; >1 is slower).  Factors for the paper's 12 workloads live in
    :mod:`repro.workloads.profiles` (Figure 9).
    """

    def __init__(self, name, base_seconds, cpu_factors, noise_sigma=0.04,
                 default_factor=None):
        if base_seconds <= 0:
            raise ConfigurationError("base_seconds must be positive")
        self.name = name
        self.base_seconds = float(base_seconds)
        self.cpu_factors = dict(cpu_factors)
        self.noise_sigma = float(noise_sigma)
        self.default_factor = default_factor

    def factor_for(self, cpu_key):
        factor = self.cpu_factors.get(cpu_key, self.default_factor)
        if factor is None:
            raise ConfigurationError(
                "workload {!r} has no runtime factor for CPU {!r}".format(
                    self.name, cpu_key))
        return factor

    def mean_duration_on(self, cpu_key):
        """Noise-free expected runtime on ``cpu_key``."""
        return self.base_seconds * self.factor_for(cpu_key)

    def duration_on(self, cpu_key, rng, payload=None):
        factor = self.cpu_factors.get(cpu_key, self.default_factor)
        if factor is None:
            raise ConfigurationError(
                "workload {!r} has no runtime factor for CPU {!r}".format(
                    self.name, cpu_key))
        mean = self.base_seconds * factor
        if rng is not None and self.noise_sigma > 0:
            # (base * factor) * noise, same association as before.
            return mean * float(math.exp(rng.normal(0.0, self.noise_sigma)))
        return mean

    def durations_on(self, cpu_key, rng, count, payload=None):
        """Vectorized draw: one ``rng.normal(size=count)`` call consumes the
        stream exactly like ``count`` scalar draws (numpy Generator
        contract), so batch and per-request polls stay seed-compatible.
        ``np.exp`` and ``math.exp`` may differ in the last ulp, which is
        why the batch API is defined on *this* method in both of its
        forms rather than mixing it with :meth:`duration_on`."""
        mean = self.base_seconds * self.factor_for(cpu_key)
        if rng is not None and self.noise_sigma > 0 and count > 0:
            return mean * np.exp(rng.normal(0.0, self.noise_sigma,
                                            size=count))
        return np.full(count, mean)

    def respond(self, cpu_key, payload=None):
        return {"workload": self.name, "cpu": cpu_key}


class ScaledWorkloadHandler(Handler):
    """Wraps a workload model with a fixed runtime multiplier.

    Used for deployment-level effects that scale every run the same way —
    e.g. the memory-dependent CPU allocation of a specific mesh rung.
    """

    def __init__(self, inner, scale):
        if scale <= 0:
            raise ConfigurationError("scale must be positive")
        self.inner = inner
        self.scale = float(scale)

    @property
    def name(self):
        return self.inner.name

    @property
    def noise_sigma(self):
        return self.inner.noise_sigma

    def mean_duration_on(self, cpu_key):
        return self.inner.mean_duration_on(cpu_key) * self.scale

    def duration_on(self, cpu_key, rng, payload=None):
        return self.inner.duration_on(cpu_key, rng, payload) * self.scale

    def durations_on(self, cpu_key, rng, count, payload=None):
        return self.inner.durations_on(cpu_key, rng, count,
                                       payload) * self.scale

    def respond(self, cpu_key, payload=None):
        return self.inner.respond(cpu_key, payload)


class CallableHandler(Handler):
    """Adapter for ad-hoc handlers in tests and examples."""

    def __init__(self, duration_fn, respond_fn=None):
        self._duration_fn = duration_fn
        self._respond_fn = respond_fn

    def duration_on(self, cpu_key, rng, payload=None):
        return self._duration_fn(cpu_key, rng, payload)

    def respond(self, cpu_key, payload=None):
        if self._respond_fn is None:
            return None
        return self._respond_fn(cpu_key, payload)
