"""A discrete-event simulator of commercial FaaS platforms.

This package is the substrate that stands in for live AWS Lambda, IBM Code
Engine, and Digital Ocean Functions accounts (see DESIGN.md §2).  It models
the mechanisms the paper's methodology depends on:

* **heterogeneous host pools** — each availability zone is backed by a finite
  set of bare-metal hosts with differing CPU models (`cpu`, `host`);
* **function-instance lifecycle** — cold starts, ~5 minute keep-alive, warm
  reuse, and placement of new instances onto hosts (`instance`, `az`);
* **quotas and saturation** — per-account concurrency limits plus zone-wide
  capacity exhaustion with slow scaling (`account`, `az`);
* **temporal drift** — daily churn, diurnal load, and hardware introduction
  events that change a zone's CPU mix over time (`drift`);
* **billing and latency** — GB-second billing per provider and a
  geo-distance network latency model (`billing`, `network`);
* **a 41-region catalog** mirroring the paper's global deployment
  (`catalog`).

The top-level entry point is :class:`repro.cloudsim.cloud.Cloud`.
"""

from repro.cloudsim.cpu import CPU_CATALOG, CPUModel, cpu_by_key
from repro.cloudsim.host import HostPool
from repro.cloudsim.instance import FunctionInstance
from repro.cloudsim.az import AvailabilityZone, PlacementResult
from repro.cloudsim.region import Region
from repro.cloudsim.provider import ProviderConfig, PROVIDERS
from repro.cloudsim.billing import BillingModel, InvocationBill
from repro.cloudsim.background import BackgroundLoad, BackgroundProfile
from repro.cloudsim.drift import DriftProfile
from repro.cloudsim.network import NetworkModel, GeoPoint
from repro.cloudsim.account import CloudAccount
from repro.cloudsim.cloud import (
    BatchInvocation,
    BatchPollResult,
    Cloud,
    Invocation,
)
from repro.cloudsim.catalog import (
    build_global_catalog,
    catalog_region_names,
    zone_spec,
)

__all__ = [
    "CPU_CATALOG",
    "CPUModel",
    "cpu_by_key",
    "HostPool",
    "FunctionInstance",
    "AvailabilityZone",
    "PlacementResult",
    "Region",
    "ProviderConfig",
    "PROVIDERS",
    "BillingModel",
    "InvocationBill",
    "BackgroundLoad",
    "BackgroundProfile",
    "DriftProfile",
    "NetworkModel",
    "GeoPoint",
    "CloudAccount",
    "Cloud",
    "Invocation",
    "BatchInvocation",
    "BatchPollResult",
    "build_global_catalog",
    "catalog_region_names",
    "zone_spec",
]
