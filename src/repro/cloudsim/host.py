"""Host pools: the bare-metal capacity behind an availability zone.

A :class:`HostPool` aggregates every host of one CPU model inside an AZ.
Hosts expose a fixed number of FI *slots* (microVM capacity); slots are
consumed by live FIs (busy or warm-idle) and released when an FI's
keep-alive expires.

``affinity`` models the platform's packing preference.  Pools with high
affinity fill first; low-affinity pools (rare hardware being phased in or
out) only receive placements once the preferred pools are under pressure.
This is what makes "previously unseen hardware" appear late in a sampling
campaign — the anomaly the paper observes in EX-3.
"""

from repro.common.errors import ConfigurationError
from repro.cloudsim.instance import FIBucket, FunctionInstance
from repro.obs.hooks import NULL_BUS


class HostPool(object):
    """All hosts of one CPU model within an AZ."""

    def __init__(self, cpu_key, hosts, slots_per_host, affinity=1.0):
        if hosts < 0 or slots_per_host <= 0:
            raise ConfigurationError(
                "host pool needs hosts >= 0 and slots_per_host > 0")
        if affinity <= 0:
            raise ConfigurationError("affinity must be positive")
        self.cpu_key = cpu_key
        self.hosts = int(hosts)
        self.slots_per_host = int(slots_per_host)
        self.affinity = float(affinity)
        self._buckets = []
        self.bus = NULL_BUS
        self.zone_id = ""

    def attach_bus(self, bus, zone_id):
        """Opt in to slot-churn events (allocate / reuse / expire)."""
        self.bus = bus
        self.zone_id = zone_id
        return bus

    # -- capacity accounting -------------------------------------------------
    @property
    def capacity(self):
        """Total FI slots across the pool's hosts."""
        return self.hosts * self.slots_per_host

    def expire(self, now):
        """Drop buckets whose keep-alive has lapsed, releasing their slots."""
        if not self._buckets:
            return
        live = [b for b in self._buckets if not b.is_expired(now)]
        if self.bus.enabled and len(live) != len(self._buckets):
            released = (sum(b.count for b in self._buckets)
                        - sum(b.count for b in live))
            self.bus.emit("host.expire", now, zone=self.zone_id,
                          cpu=self.cpu_key, released=released)
        self._buckets = live

    def occupied(self, now):
        """Slots held by live (busy or warm) FIs."""
        self.expire(now)
        return sum(b.count for b in self._buckets)

    def free_slots(self, now):
        return max(0, self.capacity - self.occupied(now))

    def live_buckets(self):
        """The pool's current FI buckets (after the last expiry sweep)."""
        return list(self._buckets)

    # -- allocation ------------------------------------------------------------
    def allocate(self, deployment, count, now, duration, keepalive):
        """Create ``count`` new FIs as one bucket; returns the bucket.

        The caller is responsible for checking :meth:`free_slots`; allocating
        beyond capacity raises, because over-packing would silently corrupt
        the saturation behaviour the experiments depend on.
        """
        if count <= 0:
            raise ConfigurationError("allocation count must be positive")
        if count > self.free_slots(now):
            raise ConfigurationError(
                "pool {} over-allocated: {} requested, {} free".format(
                    self.cpu_key, count, self.free_slots(now)))
        bucket = FIBucket(deployment, self.cpu_key, count,
                          busy_until=now + duration,
                          expire_at=now + duration + keepalive)
        self._buckets.append(bucket)
        if self.bus.enabled:
            self.bus.emit("host.allocate", now, zone=self.zone_id,
                          cpu=self.cpu_key, count=count)
        return bucket

    def allocate_instance(self, instance_id, host_id, deployment, now,
                          duration, keepalive):
        """Create a single identified FI (per-request invocation path)."""
        if self.free_slots(now) < 1:
            raise ConfigurationError(
                "pool {} has no free slot".format(self.cpu_key))
        fi = FunctionInstance(instance_id, host_id, deployment, self.cpu_key,
                              created_at=now,
                              busy_until=now + duration,
                              expire_at=now + duration + keepalive)
        self._buckets.append(fi)
        if self.bus.enabled:
            self.bus.emit("host.allocate", now, zone=self.zone_id,
                          cpu=self.cpu_key, count=1)
        return fi

    def claim_warm(self, deployment, count, now, duration, keepalive):
        """Reuse up to ``count`` warm-idle FIs of ``deployment``.

        Returns the number actually claimed.  Claimed FIs become busy for
        ``duration`` and get a refreshed keep-alive.  Buckets are split when
        only part of them is needed.
        """
        remaining = int(count)
        if remaining <= 0:
            return 0
        claimed = 0
        new_buckets = []
        for bucket in self._buckets:
            if (remaining > 0 and bucket.deployment == deployment
                    and bucket.is_idle(now)):
                take = min(bucket.count, remaining)
                if take == bucket.count:
                    bucket.touch(now, duration, keepalive)
                else:
                    bucket.count -= take
                    reused = FIBucket(deployment, self.cpu_key, take,
                                      busy_until=now + duration,
                                      expire_at=now + duration + keepalive)
                    new_buckets.append(reused)
                remaining -= take
                claimed += take
        self._buckets.extend(new_buckets)
        if claimed and self.bus.enabled:
            self.bus.emit("host.reuse", now, zone=self.zone_id,
                          cpu=self.cpu_key, count=claimed)
        return claimed

    def idle_warm(self, deployment, now):
        """Warm-idle FI count available to ``deployment`` right now."""
        return sum(b.count for b in self._buckets
                   if b.deployment == deployment and b.is_idle(now))

    # -- resizing (drift & scaling) ---------------------------------------------
    def set_hosts(self, hosts, now):
        """Resize the pool; never below currently occupied capacity.

        Returns the host count actually applied.  Drift wants to shrink
        pools, but hosts running live FIs cannot be drained instantly, so
        shrinking is floored at the occupied host count.
        """
        hosts = int(hosts)
        if hosts < 0:
            raise ConfigurationError("host count cannot be negative")
        occupied_hosts = -(-self.occupied(now) // self.slots_per_host)
        self.hosts = max(hosts, occupied_hosts)
        return self.hosts

    def add_hosts(self, hosts):
        if hosts < 0:
            raise ConfigurationError("cannot add a negative host count")
        self.hosts += int(hosts)

    def __repr__(self):
        return "HostPool(cpu={}, hosts={}, slots/host={})".format(
            self.cpu_key, self.hosts, self.slots_per_host)
