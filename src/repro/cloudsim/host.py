"""Host pools: the bare-metal capacity behind an availability zone.

A :class:`HostPool` aggregates every host of one CPU model inside an AZ.
Hosts expose a fixed number of FI *slots* (microVM capacity); slots are
consumed by live FIs (busy or warm-idle) and released when an FI's
keep-alive expires.

``affinity`` models the platform's packing preference.  Pools with high
affinity fill first; low-affinity pools (rare hardware being phased in or
out) only receive placements once the preferred pools are under pressure.
This is what makes "previously unseen hardware" appear late in a sampling
campaign — the anomaly the paper observes in EX-3.

Event-driven capacity accounting
--------------------------------
Capacity reads used to sweep every live bucket (filter expired, re-sum
counts) on *every* call, and the sampling hot path reads capacity a dozen
times per poll.  The pool now maintains:

* ``_occupied`` — a cached slot counter, updated incrementally on
  allocate / release / count mutation, so :meth:`occupied` and
  :meth:`free_slots` are O(1) reads;
* ``_heap`` — a lazily-compacted min-heap of ``(expire_at, seq, bucket)``
  entries.  :meth:`expire` pops only lapsed entries (O(log n) amortized).
  When a bucket's ``expire_at`` moves (warm reuse, forced release), a fresh
  entry is pushed and the stale one is skipped on pop by comparing against
  the bucket's current ``_heap_key``;
* ``_warm`` — a per-deployment index of live buckets in insertion order,
  so :meth:`claim_warm` / :meth:`idle_warm` only scan the one deployment's
  buckets instead of every tenant's.

All three structures are invisible to callers: the public API and — by
design — every seeded placement outcome are identical to the naive
sweep-everything implementation (see ``tests/test_capacity_equivalence``).
"""

import heapq

from repro.common.errors import ConfigurationError
from repro.cloudsim.instance import FIBucket, FunctionInstance
from repro.obs.hooks import NULL_BUS


class HostPool(object):
    """All hosts of one CPU model within an AZ."""

    def __init__(self, cpu_key, hosts, slots_per_host, affinity=1.0):
        if hosts < 0 or slots_per_host <= 0:
            raise ConfigurationError(
                "host pool needs hosts >= 0 and slots_per_host > 0")
        if affinity <= 0:
            raise ConfigurationError("affinity must be positive")
        self.cpu_key = cpu_key
        self.hosts = int(hosts)
        self.slots_per_host = int(slots_per_host)
        self.affinity = float(affinity)
        self._buckets = []
        self._heap = []
        self._seq = 0
        self._occupied = 0
        self._dead = 0
        self._warm = {}
        self.on_release = None
        self.bus = NULL_BUS
        self.zone_id = ""

    def attach_bus(self, bus, zone_id):
        """Opt in to slot-churn events (allocate / reuse / expire)."""
        self.bus = bus
        self.zone_id = zone_id
        return bus

    # -- capacity accounting -------------------------------------------------
    @property
    def capacity(self):
        """Total FI slots across the pool's hosts."""
        return self.hosts * self.slots_per_host

    def expire(self, now):
        """Release buckets whose keep-alive has lapsed (heap pop, not sweep)."""
        heap = self._heap
        if not heap or heap[0][0] > now:
            return
        released = 0
        on_release = self.on_release
        while heap and heap[0][0] <= now:
            key, _, bucket = heapq.heappop(heap)
            if bucket._released or key != bucket._heap_key:
                continue  # stale entry; a fresher one is (or was) queued
            if bucket._expire_at > now:
                # Keep-alive was refreshed after this entry was pushed
                # (lazy re-key): queue it again under the current expiry.
                self._schedule_expiry(bucket)
                continue
            bucket._released = True
            count = bucket._count
            self._occupied -= count
            self._dead += 1
            released += count
            if on_release is not None:
                on_release(bucket, now)
        if released and self.bus.enabled:
            self.bus.emit("host.expire", now, zone=self.zone_id,
                          cpu=self.cpu_key, released=released)
        buckets = self._buckets
        if self._dead >= 8 and self._dead * 2 > len(buckets):
            # Global compaction: rebuild the bucket list and the warm index
            # together.  Per-deployment admit order is preserved because
            # ``_warm`` lists are always subsequences of ``_buckets``.
            self._buckets = live = [b for b in buckets if not b._released]
            self._dead = 0
            warm = {}
            for b in live:
                lst = warm.get(b.deployment)
                if lst is None:
                    warm[b.deployment] = [b]
                else:
                    lst.append(b)
            self._warm = warm

    def occupied(self, now):
        """Slots held by live (busy or warm) FIs — an O(1) cached read."""
        heap = self._heap
        if heap and heap[0][0] <= now:
            self.expire(now)
        return self._occupied

    def free_slots(self, now):
        return max(0, self.capacity - self.occupied(now))

    def live_buckets(self):
        """The pool's current FI buckets (after the last expiry sweep)."""
        return [b for b in self._buckets if not b._released]

    # -- allocation ------------------------------------------------------------
    def allocate(self, deployment, count, now, duration, keepalive):
        """Create ``count`` new FIs as one bucket; returns the bucket.

        The caller is responsible for checking :meth:`free_slots`; allocating
        beyond capacity raises, because over-packing would silently corrupt
        the saturation behaviour the experiments depend on.
        """
        if count <= 0:
            raise ConfigurationError("allocation count must be positive")
        heap = self._heap
        if heap and heap[0][0] <= now:
            self.expire(now)
        free = self.hosts * self.slots_per_host - self._occupied
        if count > free:
            raise ConfigurationError(
                "pool {} over-allocated: {} requested, {} free".format(
                    self.cpu_key, count, max(0, free)))
        bucket = FIBucket(deployment, self.cpu_key, count,
                          busy_until=now + duration,
                          expire_at=now + duration + keepalive)
        # _admit, inlined: poll-sized campaigns allocate a bucket per pool
        # per poll, so the batch path skips a few layers of calls.
        bucket._pool = self
        self._buckets.append(bucket)
        self._occupied += bucket._count
        key = bucket._expire_at
        bucket._heap_key = key
        self._seq = seq = self._seq + 1
        heapq.heappush(heap, (key, seq, bucket))
        warm = self._warm.get(deployment)
        if warm is None:
            self._warm[deployment] = [bucket]
        else:
            warm.append(bucket)
        if self.bus.enabled:
            self.bus.emit("host.allocate", now, zone=self.zone_id,
                          cpu=self.cpu_key, count=count)
        return bucket

    def allocate_instance(self, instance_id, host_id, deployment, now,
                          duration, keepalive):
        """Create a single identified FI (per-request invocation path)."""
        if self.free_slots(now) < 1:
            raise ConfigurationError(
                "pool {} has no free slot".format(self.cpu_key))
        fi = FunctionInstance(instance_id, host_id, deployment, self.cpu_key,
                              created_at=now,
                              busy_until=now + duration,
                              expire_at=now + duration + keepalive)
        self._admit(fi)
        if self.bus.enabled:
            self.bus.emit("host.allocate", now, zone=self.zone_id,
                          cpu=self.cpu_key, count=1)
        return fi

    def claim_warm(self, deployment, count, now, duration, keepalive):
        """Reuse up to ``count`` warm-idle FIs of ``deployment``.

        Returns the number actually claimed.  Claimed FIs become busy for
        ``duration`` and get a refreshed keep-alive.  Buckets are split when
        only part of them is needed.  Only this deployment's warm index is
        scanned — other tenants' buckets are never visited.
        """
        remaining = int(count)
        if remaining <= 0:
            return 0
        warm = self._warm.get(deployment)
        if not warm:
            return 0
        claimed = 0
        live = []
        new_buckets = []
        for bucket in warm:
            if bucket._released:
                continue
            live.append(bucket)
            if remaining > 0 and bucket.is_idle(now):
                take = min(bucket._count, remaining)
                if take == bucket._count:
                    if bucket._pinned:
                        # Pinned floors never expire: refresh busyness
                        # only, leave the pin horizon untouched.
                        bucket.busy_until = now + duration
                    else:
                        bucket.touch(now, duration, keepalive)
                else:
                    bucket.count -= take
                    reused = FIBucket(deployment, self.cpu_key, take,
                                      busy_until=now + duration,
                                      expire_at=now + duration + keepalive)
                    if bucket._pinned:
                        # Splitting a pinned bucket conserves the pinned
                        # count: both halves keep the pin horizon.
                        reused._pinned = True
                        reused._expire_at = bucket._expire_at
                    elif bucket._lease_until is not None:
                        # Split-off instances inherit the parent's lease.
                        reused._lease_until = bucket._lease_until
                        if reused._expire_at > bucket._lease_until:
                            reused._expire_at = bucket._lease_until
                    new_buckets.append(reused)
                remaining -= take
                claimed += take
        self._warm[deployment] = live
        for bucket in new_buckets:
            self._admit(bucket)
        if claimed and self.bus.enabled:
            self.bus.emit("host.reuse", now, zone=self.zone_id,
                          cpu=self.cpu_key, count=claimed)
        return claimed

    def idle_warm(self, deployment, now):
        """Warm-idle FI count available to ``deployment`` right now."""
        warm = self._warm.get(deployment)
        if not warm:
            return 0
        return sum(b._count for b in warm
                   if not b._released and b.is_idle(now))

    # -- resizing (drift & scaling) ---------------------------------------------
    def set_hosts(self, hosts, now):
        """Resize the pool; never below currently occupied capacity.

        Returns the host count actually applied.  Drift wants to shrink
        pools, but hosts running live FIs cannot be drained instantly, so
        shrinking is floored at the occupied host count.
        """
        hosts = int(hosts)
        if hosts < 0:
            raise ConfigurationError("host count cannot be negative")
        occupied_hosts = -(-self.occupied(now) // self.slots_per_host)
        self.hosts = max(hosts, occupied_hosts)
        return self.hosts

    def add_hosts(self, hosts):
        if hosts < 0:
            raise ConfigurationError("cannot add a negative host count")
        self.hosts += int(hosts)

    # -- internals ---------------------------------------------------------------
    def _admit(self, bucket):
        """Take ownership of ``bucket``: wire hooks, count its slots, index it."""
        bucket._pool = self
        self._buckets.append(bucket)
        self._occupied += bucket._count
        self._schedule_expiry(bucket)
        warm = self._warm.get(bucket.deployment)
        if warm is None:
            self._warm[bucket.deployment] = [bucket]
        else:
            warm.append(bucket)

    def _schedule_expiry(self, bucket):
        key = bucket._expire_at
        bucket._heap_key = key
        self._seq += 1
        heapq.heappush(self._heap, (key, self._seq, bucket))

    def __repr__(self):
        return "HostPool(cpu={}, hosts={}, slots/host={})".format(
            self.cpu_key, self.hosts, self.slots_per_host)
