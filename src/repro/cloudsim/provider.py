"""Provider configurations: AWS Lambda, IBM Code Engine, Digital Ocean.

A :class:`ProviderConfig` captures everything that differs between FaaS
platforms from the perspective of the experiments: the deployable memory
ladder, supported architectures, per-account concurrency quota, billing,
keep-alive, cold-start behaviour, and the client fan-out *arrival window*
model used by the unique-FI analysis (Figure 3).
"""

from repro.common.errors import ConfigurationError
from repro.common.units import MILLIS, MINUTES
from repro.cloudsim.adapters import default_adapter
from repro.cloudsim.billing import (
    AWS_LAMBDA_BILLING,
    DIGITAL_OCEAN_BILLING,
    IBM_CODE_ENGINE_BILLING,
)


class ProviderConfig(object):
    """Static description of one FaaS platform.

    ``adapter`` bundles the platform's pluggable behavior — cold-start
    distribution, keep-alive policy, quota model, pool scaling,
    preemption (:mod:`repro.cloudsim.adapters`).  When omitted, the
    default adapter reproduces the legacy scalar semantics
    bit-identically.
    """

    __slots__ = ("name", "memory_options_mb", "archs", "concurrency_quota",
                 "billing", "keepalive", "cold_start_s", "slots_per_host",
                 "base_arrival_window", "reference_memory_mb",
                 "window_exponent", "function_timeout", "adapter")

    def __init__(self, name, memory_options_mb, archs, concurrency_quota,
                 billing, keepalive=5 * MINUTES, cold_start_s=0.18,
                 slots_per_host=64, base_arrival_window=0.25,
                 reference_memory_mb=2048, window_exponent=0.5,
                 function_timeout=900.0, adapter=None):
        if not memory_options_mb:
            raise ConfigurationError("provider needs memory options")
        self.name = name
        self.memory_options_mb = tuple(sorted(memory_options_mb))
        self.archs = tuple(archs)
        self.concurrency_quota = int(concurrency_quota)
        self.billing = billing
        self.keepalive = float(keepalive)
        self.cold_start_s = float(cold_start_s)
        self.slots_per_host = int(slots_per_host)
        self.base_arrival_window = float(base_arrival_window)
        self.reference_memory_mb = int(reference_memory_mb)
        self.window_exponent = float(window_exponent)
        self.function_timeout = float(function_timeout)
        self.adapter = adapter if adapter is not None else \
            default_adapter(self)

    def validate_memory(self, memory_mb):
        """Memory settings need not be on the ladder (AWS allows any MB in
        range) but must lie within the provider's envelope and be an
        integral MB count — 512.7 MB is a caller bug, not 512 MB."""
        low, high = self.memory_options_mb[0], self.memory_options_mb[-1]
        if not low <= memory_mb <= high:
            raise ConfigurationError(
                "{}: memory {} MB outside [{}, {}]".format(
                    self.name, memory_mb, low, high))
        value = int(memory_mb)
        if value != memory_mb:
            raise ConfigurationError(
                "{}: memory {!r} MB is not an integral MB count".format(
                    self.name, memory_mb))
        return value

    def validate_arch(self, arch):
        if arch not in self.archs:
            raise ConfigurationError(
                "{} does not offer architecture {!r}".format(self.name, arch))
        return arch

    def arrival_window(self, memory_mb):
        """Client fan-out spread for a 1,000-request poll at ``memory_mb``.

        Lower-memory functions initialise and schedule more slowly, widening
        the window over which requests land — which is why the paper needed
        longer sleeps at low memory to force unique FIs (Figure 3).
        """
        ratio = self.reference_memory_mb / float(memory_mb)
        window = self.base_arrival_window * ratio ** self.window_exponent
        return min(max(window, 0.05), 3.0)

    def __repr__(self):
        return "ProviderConfig({!r})".format(self.name)


AWS_LAMBDA = ProviderConfig(
    name="aws",
    # 128 MB .. 10,240 MB; the sky mesh ladder uses the paper's settings.
    memory_options_mb=(128, 256, 512, 1024, 2048, 4096, 6144, 8192, 10240),
    archs=("x86_64", "arm64"),
    concurrency_quota=1000,
    billing=AWS_LAMBDA_BILLING,
    keepalive=5 * MINUTES,
    cold_start_s=0.18,
    slots_per_host=64,
    base_arrival_window=0.25,
)

IBM_CODE_ENGINE = ProviderConfig(
    name="ibm",
    memory_options_mb=(1024, 2048, 4096),
    archs=("x86_64",),
    concurrency_quota=250,
    billing=IBM_CODE_ENGINE_BILLING,
    keepalive=10 * MINUTES,
    cold_start_s=0.55,
    slots_per_host=48,
    base_arrival_window=0.45,
)

DIGITAL_OCEAN = ProviderConfig(
    name="do",
    memory_options_mb=(128, 256, 512, 1024),
    archs=("x86_64",),
    concurrency_quota=120,
    billing=DIGITAL_OCEAN_BILLING,
    keepalive=10 * MINUTES,
    cold_start_s=0.40,
    slots_per_host=32,
    base_arrival_window=0.50,
)

PROVIDERS = {
    "aws": AWS_LAMBDA,
    "ibm": IBM_CODE_ENGINE,
    "do": DIGITAL_OCEAN,
}

#: The providers the paper's sky mesh measures directly; scenario packs
#: register additional named providers on top of these.
CORE_PROVIDERS = ("aws", "ibm", "do")


def register_provider(config, replace=False):
    """Register ``config`` so it resolves by name everywhere a provider
    name is accepted (catalog install, ``CloudSpec``, CLI ``--provider``).
    """
    if not replace and config.name in PROVIDERS:
        raise ConfigurationError(
            "provider {!r} already registered".format(config.name))
    PROVIDERS[config.name] = config
    return config


def provider_by_name(name):
    try:
        return PROVIDERS[name]
    except KeyError:
        pass
    # Scenario packs register lazily on first lookup, so merely importing
    # the simulator never drags the pack tables in.
    from repro.cloudsim import packs  # noqa: F401 (import registers packs)
    try:
        return PROVIDERS[name]
    except KeyError:
        raise ConfigurationError("unknown provider {!r}".format(name))


# The paper's sampling functions sleep 250 ms; cold start adds ~180 ms of
# unbilled init.  Exposed as a constant so sampling and billing agree.
SAMPLING_OVERHEAD = 1 * MILLIS
