"""Client-to-region network latency.

The regional routing approach trades extra round-trip latency (not billed)
for faster CPUs.  We model one-way propagation as great-circle distance over
an effective signal speed (~2/3 c with routing detours), plus a fixed
processing floor and lognormal jitter.
"""

import math

from repro.common.errors import ConfigurationError
from repro.common.units import MILLIS


class GeoPoint(object):
    """A latitude/longitude pair in degrees."""

    __slots__ = ("lat", "lon")

    def __init__(self, lat, lon):
        if not -90 <= lat <= 90 or not -180 <= lon <= 180:
            raise ConfigurationError(
                "invalid coordinates ({}, {})".format(lat, lon))
        self.lat = float(lat)
        self.lon = float(lon)

    def __repr__(self):
        return "GeoPoint({:.2f}, {:.2f})".format(self.lat, self.lon)


def haversine_km(a, b):
    """Great-circle distance between two :class:`GeoPoint` in kilometres."""
    rad = math.pi / 180.0
    dlat = (b.lat - a.lat) * rad
    dlon = (b.lon - a.lon) * rad
    lat1, lat2 = a.lat * rad, b.lat * rad
    h = (math.sin(dlat / 2) ** 2
         + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2)
    return 2 * 6371.0 * math.asin(min(1.0, math.sqrt(h)))


class NetworkModel(object):
    """Round-trip latency between a client location and cloud regions."""

    def __init__(self, base_rtt=8 * MILLIS, ms_per_100km=1.2,
                 jitter_sigma=0.15):
        self.base_rtt = float(base_rtt)
        self.ms_per_100km = float(ms_per_100km)
        self.jitter_sigma = float(jitter_sigma)

    def round_trip(self, client, region_geo, rng=None, extra_s=0.0):
        """Round-trip time in seconds; deterministic when ``rng`` is None.

        ``extra_s`` is a path-degradation surcharge (fault injection:
        latency spikes, congested peering) added after jitter.
        """
        km = haversine_km(client, region_geo)
        rtt = self.base_rtt + km / 100.0 * self.ms_per_100km * MILLIS
        if rng is not None and self.jitter_sigma > 0:
            rtt *= float(math.exp(rng.normal(0.0, self.jitter_sigma)))
        return rtt + extra_s

    def one_way(self, client, region_geo, rng=None, extra_s=0.0):
        return self.round_trip(client, region_geo, rng=rng,
                               extra_s=extra_s) / 2.0


# A few handy client locations for examples and benchmarks.
CLIENT_LOCATIONS = {
    "seattle": GeoPoint(47.61, -122.33),
    "new-york": GeoPoint(40.71, -74.01),
    "london": GeoPoint(51.51, -0.13),
    "tokyo": GeoPoint(35.68, 139.69),
    "sao-paulo": GeoPoint(-23.55, -46.63),
}
