"""Carbon intensity of cloud regions.

The paper's routing system extends a prior carbon-aware router
(Cordingly et al., IC2E'23) that sent requests to regions with the lowest
real-time carbon intensity under a client-distance latency bound.  This
module provides that substrate: a per-region carbon-intensity model with a
diurnal solar dip, plus an energy model converting billed GB-seconds into
grams of CO2-equivalent.
"""

import math

from repro.common.errors import ConfigurationError, UnknownRegionError
from repro.common.rng import derive_rng
from repro.common.units import DAYS, HOURS, gb_seconds

# Approximate grid carbon intensity by region family, in gCO2e/kWh.
# Values follow public grid averages: hydro-heavy grids (Nordics, Brazil,
# Canada, Oregon) sit low; coal-heavy grids (India, South Africa, parts of
# APAC) sit high.
_REGION_BASELINES = {
    "af-south-1": 700.0,
    "ap-east-1": 610.0,
    "ap-east-2": 500.0,
    "ap-south-1": 650.0,
    "ap-south-2": 650.0,
    "ap-northeast-1": 460.0,
    "ap-northeast-2": 420.0,
    "ap-northeast-3": 460.0,
    "ap-southeast-1": 390.0,
    "ap-southeast-2": 520.0,
    "ap-southeast-3": 620.0,
    "ap-southeast-4": 520.0,
    "ap-southeast-5": 540.0,
    "ap-southeast-7": 480.0,
    "ca-central-1": 130.0,
    "ca-west-1": 350.0,
    "eu-central-1": 340.0,
    "eu-central-2": 90.0,
    "eu-west-1": 290.0,
    "eu-west-2": 210.0,
    "eu-west-3": 60.0,
    "eu-north-1": 30.0,
    "eu-south-1": 310.0,
    "eu-south-2": 170.0,
    "il-central-1": 530.0,
    "me-central-1": 560.0,
    "me-south-1": 590.0,
    "mx-central-1": 430.0,
    "sa-east-1": 100.0,
    "us-east-1": 350.0,
    "us-east-2": 420.0,
    "us-west-1": 240.0,
    "us-west-2": 120.0,
    # IBM Code Engine regions
    "us-south": 400.0,
    "us-east-ibm": 350.0,
    "eu-de": 340.0,
    "eu-gb": 210.0,
    # Digital Ocean regions
    "nyc1": 280.0,
    "sfo3": 240.0,
    "ams3": 330.0,
    "lon1": 210.0,
}

DEFAULT_BASELINE = 400.0

# Effective marginal power draw of an active FI per GB of allocated
# memory, including the host share and PUE overheads.
WATTS_PER_GB = 3.0
PUE = 1.2


class CarbonIntensityModel(object):
    """Time-varying grid carbon intensity per region.

    Intensity follows the regional baseline with a midday solar dip
    (``solar_dip_fraction`` at ``solar_peak_hour``) and lognormal noise
    per hour bucket.  Deterministic in (seed, region, hour).
    """

    def __init__(self, solar_dip_fraction=0.25, solar_peak_hour=13.0,
                 noise_sigma=0.06, seed=0, baselines=None):
        if not 0 <= solar_dip_fraction < 1:
            raise ConfigurationError(
                "solar_dip_fraction must be in [0, 1)")
        self.solar_dip_fraction = float(solar_dip_fraction)
        self.solar_peak_hour = float(solar_peak_hour)
        self.noise_sigma = float(noise_sigma)
        self._seed = seed
        self._baselines = dict(baselines or _REGION_BASELINES)

    def baseline(self, region_name):
        try:
            return self._baselines[region_name]
        except KeyError:
            raise UnknownRegionError(region_name)

    def intensity(self, region_name, now, lon=0.0):
        """gCO2e/kWh for ``region_name`` at simulated time ``now``.

        ``lon`` shifts the solar window to the region's local time.
        """
        base = self.baseline(region_name)
        local_hour = ((now % DAYS) / HOURS + lon / 15.0) % 24.0
        phase = (local_hour - self.solar_peak_hour) / 24.0 * 2 * math.pi
        # A cosine dip centred on the solar peak.
        dip = self.solar_dip_fraction * max(0.0, math.cos(phase))
        bucket = int(now // HOURS)
        rng = derive_rng(self._seed, "carbon", region_name, bucket)
        noise = math.exp(rng.normal(0.0, self.noise_sigma)) if (
            self.noise_sigma > 0) else 1.0
        return base * (1.0 - dip) * noise

    def normalized_intensity(self, region_name, now, lon=0.0):
        """Intensity scaled to [0, ~2] against the global mean baseline."""
        mean = sum(self._baselines.values()) / len(self._baselines)
        return self.intensity(region_name, now, lon=lon) / mean


def grams_co2e(memory_mb, duration_s, intensity_g_per_kwh):
    """CO2e attributable to one invocation's billed compute."""
    kwh = (gb_seconds(memory_mb, duration_s) * WATTS_PER_GB * PUE
           / 3_600_000.0)
    return kwh * intensity_g_per_kwh
