"""Availability zones: placement, keep-alive, saturation, and scaling.

An :class:`AvailabilityZone` owns a set of :class:`~repro.cloudsim.host.HostPool`
objects (one per CPU model) and implements the two invocation paths:

* :meth:`place_batch` — vectorized placement of a poll's worth of parallel
  requests (the sampling hot path);
* :meth:`invoke_one` — a single identified request (the smart-router path),
  with warm reuse and a ``force_new`` escape hatch used by retry strategies.

Saturation behaviour
--------------------
FIs hold their slots for the keep-alive period (~5 min).  Since a sampling
campaign issues polls against *distinct* deployments back-to-back, warm FIs
pile up and free capacity shrinks poll over poll.  The platform reacts by
provisioning extra hosts, but slowly (``ScalingPolicy``), so once the pool is
exhausted the vast majority of new requests fail — for every account, since
the pool is shared.  This reproduces the paper's EX-1 findings.

Placement bias
--------------
New FIs are placed tier-by-tier in decreasing pool ``affinity``; within a
tier, placement is proportional to free capacity with **host-granular**
sampling noise (requests land on whole hosts, so a 1,000-request poll
samples only ~15 hosts, not 1,000 independent slots).  This yields the
single-poll characterization error of up to ~25 % that EX-3 reports, and
makes rare low-affinity hardware surface only late in a campaign.
"""

import math

from repro.common.errors import ConfigurationError, SaturationError
from repro.common.distributions import CategoricalDistribution
from repro.common.ids import make_id_factory
from repro.common.rng import derive_rng
from repro.common.units import MINUTES
from repro.cloudsim.instance import FIBucket
from repro.faults.injector import NULL_INJECTOR
from repro.obs.hooks import NULL_BUS


DEFAULT_KEEPALIVE = 5 * MINUTES


class ScalingPolicy(object):
    """How fast the platform adds capacity under sustained pressure."""

    __slots__ = ("pressure_threshold", "slots_per_minute", "max_surge_slots")

    def __init__(self, pressure_threshold=0.85, slots_per_minute=8,
                 max_surge_slots=2048):
        if not 0 < pressure_threshold <= 1:
            raise ConfigurationError("pressure_threshold must be in (0, 1]")
        self.pressure_threshold = float(pressure_threshold)
        self.slots_per_minute = float(slots_per_minute)
        self.max_surge_slots = int(max_surge_slots)


class PlacementResult(object):
    """Outcome of placing a batch of parallel requests in a zone."""

    __slots__ = ("zone_id", "requested", "served", "failed", "unique_fis",
                 "new_fi_counts", "reused_fi_counts", "request_cpu_counts",
                 "duration", "timestamp")

    def __init__(self, zone_id, requested, served, failed, unique_fis,
                 new_fi_counts, reused_fi_counts, request_cpu_counts,
                 duration, timestamp):
        self.zone_id = zone_id
        self.requested = requested
        self.served = served
        self.failed = failed
        self.unique_fis = unique_fis
        self.new_fi_counts = new_fi_counts
        self.reused_fi_counts = reused_fi_counts
        self.request_cpu_counts = request_cpu_counts
        self.duration = duration
        self.timestamp = timestamp

    @property
    def failure_rate(self):
        if self.requested == 0:
            return 0.0
        return self.failed / float(self.requested)

    @property
    def new_fis(self):
        return sum(self.new_fi_counts.values())

    def cpu_distribution(self):
        """Distribution of CPU models over the FIs observed by this batch."""
        return CategoricalDistribution(self.request_cpu_counts)

    def __repr__(self):
        return ("PlacementResult({}: served={}/{} unique_fis={} "
                "fail={:.0%})".format(self.zone_id, self.served,
                                      self.requested, self.unique_fis,
                                      self.failure_rate))


class AvailabilityZone(object):
    """A FaaS deployment zone backed by a finite heterogeneous host pool."""

    def __init__(self, zone_id, pools, clock, keepalive=DEFAULT_KEEPALIVE,
                 scaling=None, rng=None, keepalive_policy=None):
        if not pools:
            raise ConfigurationError("zone needs at least one host pool")
        keys = [p.cpu_key for p in pools]
        if len(set(keys)) != len(keys):
            raise ConfigurationError("duplicate CPU pools in zone")
        self.zone_id = zone_id
        self.pools = {p.cpu_key: p for p in pools}
        self.clock = clock
        self.keepalive = float(keepalive)
        self.scaling = scaling or ScalingPolicy()
        self.rng = derive_rng(rng, "az", zone_id)
        self._new_instance_id = make_id_factory("fi-" + zone_id)
        self._fi_index = {}
        self._fi_by_id = {}
        self._fi_stale = {}
        self._pool_order = None
        for pool in pools:
            pool.on_release = self._bucket_released
        self._last_scale_check = clock.now
        self._surge_slots_added = 0
        self._base_shares = self.cpu_slot_shares()
        self._drift = None
        self._background = None
        self._preempt = None
        self._bus = NULL_BUS
        self._faults = NULL_INJECTOR
        # Keep-alive policy hook (provider adapters).  The default
        # sliding window needs no per-allocation work, so the hot paths
        # only branch on ``_ka_dynamic`` — one cached bool.
        self.keepalive_policy = keepalive_policy
        kind = keepalive_policy.kind if keepalive_policy is not None \
            else "sliding"
        self._ka_lease = (keepalive_policy.lease_s if kind == "lease"
                          else None)
        self._ka_pin = keepalive_policy if kind == "container-reuse" \
            else None
        self._ka_dynamic = (self._ka_lease is not None
                            or self._ka_pin is not None)

    def attach_bus(self, bus):
        """Opt in to observability: placements, saturation, scaling, and
        per-pool slot churn all emit onto ``bus``."""
        self._bus = bus
        for pool in self.pools.values():
            pool.attach_bus(bus, self.zone_id)
        return bus

    def attach_faults(self, injector):
        """Opt in to fault injection: scheduled capacity collapses scale
        the free placement slots this zone reports."""
        self._faults = injector
        return injector

    def attach_drift(self, drift_process):
        """Attach a :class:`~repro.cloudsim.drift.DriftProcess`; the zone
        rebalances lazily whenever the clock crosses an hour boundary."""
        self._drift = drift_process
        drift_process.apply_if_due(self, self.clock.now)

    def attach_background(self, background_load):
        """Attach a :class:`~repro.cloudsim.background.BackgroundLoad`
        modelling other tenants sharing this zone's pool."""
        self._background = background_load
        background_load.apply_if_due(self, self.clock.now)

    def attach_preemption(self, process):
        """Attach a :class:`~repro.cloudsim.adapters.PreemptionProcess`;
        seeded capacity reclaims fire lazily as the clock crosses the
        process's interval boundaries (spot-style packs)."""
        self._preempt = process
        process.apply_if_due(self, self.clock.now)

    def _apply_processes(self, now):
        if self._drift is not None:
            self._drift.apply_if_due(self, now)
        if self._background is not None:
            self._background.apply_if_due(self, now)
        if self._preempt is not None:
            self._preempt.apply_if_due(self, now)

    # -- capacity views --------------------------------------------------------
    @property
    def capacity(self):
        total = 0
        for pool in self.pools.values():
            total += pool.hosts * pool.slots_per_host
        return total

    def occupied(self, now=None):
        now = self._now(now)
        total = 0
        for pool in self.pools.values():
            total += pool.occupied(now)
        return total

    def free_slots(self, now=None):
        now = self._now(now)
        total = 0
        for pool in self.pools.values():
            total += pool.free_slots(now)
        return total

    def occupancy(self, now=None):
        if self.capacity == 0:
            return 1.0
        return self.occupied(now) / float(self.capacity)

    def cpu_slot_shares(self):
        """Ground-truth CPU distribution by provisioned slot capacity."""
        counts = {key: p.capacity for key, p in self.pools.items()
                  if p.capacity > 0}
        return CategoricalDistribution(counts)

    def cpu_keys(self):
        return sorted(self.pools)

    # -- batched placement (sampling hot path) -----------------------------------
    def invoke_batch(self, deployment, n_requests, duration, window,
                     now=None, force_new=False):
        """Place ``n_requests`` parallel requests arriving over ``window`` s.

        ``force_new=True`` skips warm reuse entirely — the batch-path
        analogue of :meth:`invoke_one`'s escape hatch, driven by
        cold-start-storm fault injection.  Skipping the warm-claim loop
        consumes no randomness, so the placement draw sequence is
        unchanged.

        The batch invocation core: demand is resolved *columnarly* — one
        warm claim per pool (in affinity order) and a single host-granular
        multinomial draw for the new-FI split — so cost scales with the
        zone's pool count, never with ``n_requests``.
        :meth:`~repro.cloudsim.Cloud.poll_batch` builds its per-request
        duration/billing/cold-start layer on top of the
        :class:`PlacementResult` this returns.

        Each request occupies an FI for ``duration`` seconds.  Peak
        concurrency — hence the number of unique FIs required — is
        ``n * min(1, duration / window)``; the remaining requests reuse FIs
        sequentially within the batch.
        """
        now = self._now(now)
        if n_requests <= 0:
            raise ConfigurationError("n_requests must be positive")
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        self._apply_processes(now)
        self._expire_and_scale(now)

        if window <= 0:
            unique_needed = n_requests
        else:
            unique_needed = max(
                1, int(math.ceil(n_requests * min(1.0, duration / window))))
        requests_per_fi = n_requests / float(unique_needed)

        # Warm FIs of this deployment absorb demand first.
        reused_counts = {}
        remaining = unique_needed
        if not force_new:
            for pool in self._pools_by_affinity():
                if remaining <= 0:
                    break
                if not pool._warm.get(deployment):
                    continue  # no (live or stale) buckets for deployment
                claimed = pool.claim_warm(deployment, remaining, now,
                                          duration, self.keepalive)
                if claimed:
                    reused_counts[pool.cpu_key] = claimed
                    remaining -= claimed

        new_counts = self._place_new_fis(deployment, remaining, now, duration)
        new_total = sum(new_counts.values())
        reused_total = sum(reused_counts.values()) if reused_counts else 0
        got_fis = reused_total + new_total
        served = min(n_requests, int(round(got_fis * requests_per_fi)))
        failed = n_requests - served

        if reused_counts:
            fi_cpu_counts = dict(reused_counts)
            for key, count in new_counts.items():
                fi_cpu_counts[key] = fi_cpu_counts.get(key, 0) + count
        else:
            fi_cpu_counts = new_counts  # _apportion never mutates weights
        request_cpu_counts = _apportion(served, fi_cpu_counts)

        bus = self._bus
        if bus.enabled:
            bus.emit("az.placement", now, zone=self.zone_id,
                     requested=n_requests, served=served, failed=failed,
                     unique_fis=got_fis,
                     new_fis=new_total,
                     reused_fis=reused_total,
                     occupancy=self.occupancy(now))
            if failed > 0:
                bus.emit("az.saturation", now, zone=self.zone_id,
                         failed=failed,
                         failure_rate=failed / float(n_requests),
                         kind="batch")

        return PlacementResult(self.zone_id, n_requests, served, failed,
                               got_fis, new_counts, reused_counts,
                               request_cpu_counts, duration, now)

    def place_batch(self, deployment, n_requests, duration, window,
                    now=None, force_new=False):
        """Historic name for :meth:`invoke_batch` (identical semantics)."""
        return self.invoke_batch(deployment, n_requests, duration, window,
                                 now=now, force_new=force_new)

    # -- per-request invocation (router path) -------------------------------------
    def invoke_one(self, deployment, duration_fn, now=None, force_new=False):
        """Serve a single request; returns ``(FunctionInstance, reused)``.

        ``duration_fn(cpu_key) -> seconds`` supplies the runtime once the
        hosting CPU is known (runtime depends on which hardware the platform
        picks — the whole point of the paper).

        ``force_new=True`` skips warm reuse — the retry strategies hold a
        poorly-placed FI busy and re-issue the request so the platform must
        spin up a fresh FI elsewhere.

        Raises :class:`SaturationError` when the zone has no free capacity.
        """
        now = self._now(now)
        self._apply_processes(now)
        self._expire_and_scale(now)

        if not force_new:
            warm = self._find_warm_instance(deployment, now)
            if warm is not None:
                if warm._pinned:
                    # Pinned floors never expire; refresh busyness only.
                    warm.busy_until = now + duration_fn(warm.cpu_key)
                    warm.invocations += 1
                else:
                    warm.touch(now, duration_fn(warm.cpu_key),
                               self.keepalive)
                return warm, True

        new_counts = self._place_new_fis(deployment, 1, now, duration=0.0,
                                         materialize=False)
        if not new_counts:
            bus = self._bus
            if bus.enabled:
                bus.emit("az.saturation", now, zone=self.zone_id,
                         failed=1, failure_rate=1.0, kind="invoke")
            raise SaturationError(
                "zone {} has no free capacity".format(self.zone_id))
        (cpu_key,) = new_counts
        duration = duration_fn(cpu_key)
        pool = self.pools[cpu_key]
        host_index = int(self.rng.integers(0, max(1, pool.hosts)))
        host_id = "host-{}-{}-{:04d}".format(self.zone_id, cpu_key,
                                             host_index)
        fi = pool.allocate_instance(self._new_instance_id(), host_id,
                                    deployment, now, duration, self.keepalive)
        fi.invocations = 1
        if self._ka_dynamic:
            self._apply_keepalive_policy(fi, pool, deployment, now)
        index = self._fi_index.get(deployment)
        if index is None:
            self._fi_index[deployment] = [fi]
        else:
            index.append(fi)
        self._fi_by_id[fi.instance_id] = fi
        return fi, False

    def find_instance(self, instance_id):
        """The live identified FI with ``instance_id``, or None.

        O(1) dict lookup; released instances are pruned by the expiry
        heap's callback, so a dead FI resolves to None instead of a
        stale object.
        """
        return self._fi_by_id.get(instance_id)

    def hold_instance(self, fi, hold_seconds, now=None):
        """Keep ``fi`` busy for ``hold_seconds`` (retry strategies do this
        so a re-issued request cannot land back on the same FI)."""
        now = self._now(now)
        fi.touch(now, hold_seconds, self.keepalive)

    # -- drift & scaling hooks ------------------------------------------------------
    def rebalance(self, target_shares, now=None, total_hosts=None):
        """Shift host counts toward ``target_shares`` (cpu_key -> share).

        Called by the drift process.  Pools running live FIs shrink only as
        far as their occupancy allows; new CPU models get fresh pools.
        ``total_hosts`` overrides the zone's host total (pool growth/shrink).
        """
        now = self._now(now)
        slots_per_host = self._typical_slots_per_host()
        if total_hosts is None:
            total_hosts = sum(p.hosts for p in self.pools.values())
        for cpu_key, share in target_shares.items():
            hosts = int(round(total_hosts * share))
            if cpu_key not in self.pools:
                if hosts > 0:
                    from repro.cloudsim.host import HostPool
                    pool = HostPool(cpu_key, hosts, slots_per_host,
                                    affinity=0.4)
                    pool.on_release = self._bucket_released
                    if self._bus is not NULL_BUS:
                        pool.attach_bus(self._bus, self.zone_id)
                    self.pools[cpu_key] = pool
                    self._pool_order = None
            else:
                self.pools[cpu_key].set_hosts(hosts, now)
        for cpu_key in list(self.pools):
            if cpu_key not in target_shares:
                self.pools[cpu_key].set_hosts(0, now)
        self._base_shares = self.cpu_slot_shares()
        # Rebalancing rebuilds the pool from the drift target, which does
        # not include surge hosts — the platform reclaims them when the
        # pressure spike has passed, replenishing the surge budget.
        self._surge_slots_added = 0

    def _expire_and_scale(self, now):
        """Zone-wide expiry sweep fused with the surge-capacity check.

        Every request path needs lapsed keep-alives released before it
        reads occupancy, so both happen in a single pass over the pools
        (the seed code swept three times per batch).  The sweep is
        unconditional; the scaling arm only engages when time advanced.
        """
        occupied = 0
        capacity = 0
        for pool in self.pools.values():
            heap = pool._heap
            if heap and heap[0][0] <= now:
                pool.expire(now)
            occupied += pool._occupied
            capacity += pool.hosts * pool.slots_per_host
        elapsed = now - self._last_scale_check
        if elapsed <= 0:
            return
        self._last_scale_check = now
        occupancy = 1.0 if capacity == 0 else occupied / float(capacity)
        if occupancy < self.scaling.pressure_threshold:
            return
        budget = self.scaling.max_surge_slots - self._surge_slots_added
        if budget <= 0:
            return
        add = min(budget,
                  int(self.scaling.slots_per_minute * elapsed / MINUTES))
        if add <= 0:
            return
        self._surge_slots_added += add
        # Surge hosts mirror the zone's base CPU mix.
        for cpu_key in self._base_shares.categories:
            pool = self.pools.get(cpu_key)
            if pool is None:
                continue
            extra_hosts = int(round(
                add * self._base_shares.share(cpu_key) / pool.slots_per_host))
            pool.add_hosts(max(0, extra_hosts))
        bus = self._bus
        if bus.enabled:
            bus.emit("az.scale", now, zone=self.zone_id, slots_added=add,
                     surge_total=self._surge_slots_added,
                     occupancy=self.occupancy(now))

    # -- internals -----------------------------------------------------------------
    def _now(self, now):
        return self.clock.now if now is None else float(now)

    def _pools_by_affinity(self):
        order = self._pool_order
        if order is None:
            order = sorted(self.pools.values(),
                           key=lambda p: (-p.affinity, p.cpu_key))
            self._pool_order = order
        return order

    def _bucket_released(self, bucket, now):
        """Expiry-heap callback: prune ``_fi_index`` as identified FIs die.

        Per-request FIs used to linger in the index until a warm lookup for
        the same deployment happened to rebuild the live list; ``force_new``
        retry storms never trigger that lookup, so the index grew without
        bound.  Releases now bump a stale counter and compact the
        deployment's list once half of it is dead — amortized O(1) per
        release.
        """
        if bucket.instance_id is None:  # anonymous FIBucket, not indexed
            return
        self._fi_by_id.pop(bucket.instance_id, None)
        deployment = bucket.deployment
        instances = self._fi_index.get(deployment)
        if not instances:
            return
        stale = self._fi_stale.get(deployment, 0) + 1
        if stale * 2 >= len(instances):
            self._fi_index[deployment] = [
                fi for fi in instances if not fi.is_expired(now)]
            stale = 0
        self._fi_stale[deployment] = stale

    def _typical_slots_per_host(self):
        pools = list(self.pools.values())
        return pools[0].slots_per_host if pools else 64

    def _find_warm_instance(self, deployment, now):
        # No per-call rebuild: expired entries are compacted by the expiry
        # heap's release callback, so this is a pure scan for the first
        # idle FI (idleness already implies not-expired).
        instances = self._fi_index.get(deployment)
        if not instances:
            return None
        for fi in instances:
            if fi.is_idle(now):
                return fi
        return None

    def _place_new_fis(self, deployment, count, now, duration,
                       materialize=True):
        """Distribute ``count`` new FIs across pools; returns cpu -> count.

        Placement weight of a pool is ``free_slots × affinity``: low-affinity
        (rare, phased-in/out) hardware is under-represented while mainstream
        pools have room, and surfaces progressively as they fill — matching
        EX-3, where partial characterizations under-count rare CPUs and
        converge only as sampling approaches saturation.  The split carries
        host-granular multinomial noise.  Allocates only what fits; the
        caller treats the shortfall as failed requests.
        """
        counts = {}
        if count <= 0:
            return counts
        pools = []
        free = []
        weights = []
        sph = []
        for p in self._pools_by_affinity():
            if p.hosts <= 0:  # capacity 0: slots_per_host is always > 0
                continue
            heap = p._heap
            if heap and heap[0][0] <= now:
                p.expire(now)
            f = p.hosts * p.slots_per_host - p._occupied
            if f < 0:
                f = 0
            pools.append(p)
            free.append(f)
            weights.append(f * p.affinity)
            sph.append(p.slots_per_host)
        if self._faults.enabled:
            factor = self._faults.capacity_factor(self.zone_id, now)
            if factor < 1.0:
                free = [int(f * factor) for f in free]
                weights = [f * p.affinity for f, p in zip(free, pools)]
        total_free = sum(free)
        if total_free <= 0:
            return counts
        take = min(count, total_free)
        split = self._noisy_split(take, free, weights, sph)
        keepalive = self.keepalive
        ka_dynamic = self._ka_dynamic
        for pool, allocated in zip(pools, split):
            if allocated <= 0:
                continue
            if materialize:
                bucket = pool.allocate(deployment, allocated, now, duration,
                                       keepalive)
                if ka_dynamic:
                    self._apply_keepalive_policy(bucket, pool, deployment,
                                                 now)
            counts[pool.cpu_key] = allocated  # cpu keys are unique per zone
        return counts

    #: Expiry horizon for pinned (CaaS min-instance) buckets: they never
    #: expire, so the heap entry sorts after every real deadline.
    PINNED_HORIZON = float("inf")

    def _apply_keepalive_policy(self, bucket, pool, deployment, now):
        """Apply the zone's non-default keep-alive policy to a freshly
        allocated bucket (or identified FI)."""
        lease = self._ka_lease
        if lease is not None:
            bucket._lease_until = lease_until = now + lease
            if bucket._expire_at > lease_until:
                bucket.expire_at = lease_until  # shorter: eager re-key
            return
        policy = self._ka_pin
        deficit = policy.min_instances - self._pinned_live(deployment)
        if deficit <= 0:
            return
        if bucket._count <= deficit:
            bucket._pinned = True
            bucket.expire_at = self.PINNED_HORIZON  # extension: lazy re-key
        else:
            # Pin exactly the deficit; the remainder keeps the normal TTL.
            bucket.count -= deficit
            pinned = FIBucket(deployment, pool.cpu_key, deficit,
                              busy_until=bucket.busy_until,
                              expire_at=self.PINNED_HORIZON)
            pinned._pinned = True
            pool._admit(pinned)

    def _pinned_live(self, deployment):
        """Live pinned instances of ``deployment`` across the zone."""
        total = 0
        for pool in self.pools.values():
            warm = pool._warm.get(deployment)
            if warm:
                total += sum(b._count for b in warm
                             if b._pinned and not b._released)
        return total

    # Fraction of a host a single placement wave typically fills before the
    # scheduler spills to another host.  Sets the effective sample
    # granularity of a poll: 1,000 requests touch ~1000/(64*0.15) ≈ 104 host
    # visits, giving single-poll characterization errors in the ~5-15 % APE
    # range the paper reports (EX-3), with ~25 % in the worst zone.
    HOST_FILL_FRACTION = 0.15

    def _noisy_split(self, take, free, weights, slots_per_host):
        """Split ``take`` slots across pools ∝ ``weights``, sampling at
        partial-host granularity, clamped to each pool's free slots."""
        if len(free) == 1:
            return [min(take, free[0])]
        total_weight = float(sum(weights))
        if total_weight <= 0:
            return [0] * len(free)
        probs = [w / total_weight for w in weights]
        mean_sph = sum(slots_per_host) / float(len(slots_per_host))
        granule = max(1.0, mean_sph * self.HOST_FILL_FRACTION)
        host_draws = max(1, int(round(take / granule)))
        # .tolist() converts the multinomial draw to native ints up front:
        # the per-element arithmetic below is hot, and numpy scalars make it
        # several times slower without changing a single bit of the result.
        host_counts = self.rng.multinomial(host_draws, probs).tolist()
        draws = float(host_draws)
        split = []
        deficit = take
        for h, f in zip(host_counts, free):
            s = int(round(take * (h / draws)))
            if s > f:
                s = f
            split.append(s)
            deficit -= s
        # Fix rounding drift and clamping shortfalls deterministically.
        if deficit > 0:
            headroom = [s - f for s, f in zip(split, free)]
            order = sorted(range(len(free)), key=headroom.__getitem__)
            idx = 0
            while deficit > 0 and idx < len(order):
                i = order[idx]
                room = free[i] - split[i]
                grant = min(room, deficit)
                split[i] += grant
                deficit -= grant
                idx += 1
        while deficit < 0:
            # Rounding overshoot: shave from the largest allocation.
            i = max(range(len(split)), key=split.__getitem__)
            split[i] -= 1
            deficit += 1
        return split

    def __repr__(self):
        return "AvailabilityZone({!r}, capacity={})".format(
            self.zone_id, self.capacity)


def _apportion(total, weights):
    """Integer-apportion ``total`` across categories ∝ ``weights`` (largest
    remainder method); returns a dict with the same keys."""
    if total <= 0 or not weights:
        return {}
    weight_sum = float(sum(weights.values()))
    if weight_sum <= 0:
        return {}
    keys = sorted(weights)
    result = {}
    remainders = []
    granted = 0
    for k in keys:
        raw = total * weights[k] / weight_sum
        floored = int(raw)  # raw >= 0, so truncation == floor
        result[k] = floored
        remainders.append(raw - floored)
        granted += floored
    shortfall = total - granted
    if shortfall:
        # Stable sort on remainder; ties keep key order, as before.
        order = sorted(range(len(keys)), key=remainders.__getitem__,
                       reverse=True)
        for i in order[:shortfall]:
            result[keys[i]] += 1
    for v in result.values():
        if v <= 0:
            return {k: n for k, n in result.items() if n > 0}
    return result
