"""Budget-constrained sampling planning (paper contribution 4).

"We thoroughly investigated ways to minimize sampling costs" — profiling
dozens of zones several times a day balloons quickly (§4.3).  The planner
here answers the operational question: *given a dollar budget, how many
polls should each zone get?*

Model: a zone's characterization error after ``k`` polls follows
``APE(k) ≈ APE(1) / sqrt(k)`` (independent host-granular noise averaging
out — the empirically observed EX-3 behaviour).  Each next poll therefore
has a diminishing marginal accuracy gain; the planner allocates polls
greedily by *weighted marginal gain per dollar*, weighting volatile zones
(whose profiles decay fastest) above stable ones.
"""

import heapq

from repro.common.errors import ConfigurationError
from repro.common.units import Money
from repro.sampling.stability import STABLE, UNKNOWN, VOLATILE

# How much one more unit of accuracy is worth, per stability class: a
# volatile zone's profile is both noisier and shorter-lived, so accuracy
# there buys more routing quality per day.
DEFAULT_CLASS_WEIGHTS = {VOLATILE: 2.0, UNKNOWN: 1.0, STABLE: 0.5}


class ZoneSamplingInfo(object):
    """What the planner needs to know about one zone."""

    __slots__ = ("zone_id", "first_poll_ape", "poll_cost", "stability")

    def __init__(self, zone_id, first_poll_ape, poll_cost,
                 stability=UNKNOWN):
        if first_poll_ape < 0:
            raise ConfigurationError("first_poll_ape must be >= 0")
        if float(poll_cost) <= 0:
            raise ConfigurationError("poll_cost must be positive")
        self.zone_id = zone_id
        self.first_poll_ape = float(first_poll_ape)
        self.poll_cost = Money(float(poll_cost))
        self.stability = stability

    @classmethod
    def from_campaign(cls, campaign_result, stability=UNKNOWN):
        """Derive planning inputs from a past campaign in the zone."""
        from repro.sampling.progressive import ProgressiveAnalysis
        analysis = ProgressiveAnalysis(campaign_result)
        per_poll = (campaign_result.total_cost
                    / max(1, campaign_result.polls_run))
        return cls(campaign_result.zone_id, analysis.ape_after(1),
                   per_poll, stability=stability)

    def predicted_ape(self, polls):
        """Predicted characterization APE after ``polls`` polls."""
        if polls <= 0:
            return 200.0  # no information at all
        return self.first_poll_ape / (polls ** 0.5)

    def __repr__(self):
        return "ZoneSamplingInfo({}, ape1={:.1f}%, {})".format(
            self.zone_id, self.first_poll_ape, self.stability)


class SamplingPlan(object):
    """Result of planning: polls per zone plus predicted outcomes."""

    def __init__(self, allocations, infos):
        self.allocations = dict(allocations)
        self._infos = {info.zone_id: info for info in infos}

    def polls_for(self, zone_id):
        return self.allocations.get(zone_id, 0)

    def total_cost(self):
        return sum((self._infos[z].poll_cost * k
                    for z, k in self.allocations.items()), Money(0))

    def predicted_ape(self, zone_id):
        return self._infos[zone_id].predicted_ape(self.polls_for(zone_id))

    def weighted_error(self, class_weights=None):
        """The objective the planner minimizes (lower is better)."""
        weights = class_weights or DEFAULT_CLASS_WEIGHTS
        return sum(weights[self._infos[z].stability]
                   * self._infos[z].predicted_ape(k)
                   for z, k in self.allocations.items())

    def __repr__(self):
        return "SamplingPlan({}, cost={})".format(self.allocations,
                                                  self.total_cost())


class SamplingBudgetPlanner(object):
    """Greedy marginal-gain-per-dollar poll allocation."""

    def __init__(self, class_weights=None, min_polls=1, max_polls=30):
        if min_polls < 0 or max_polls < min_polls:
            raise ConfigurationError(
                "need 0 <= min_polls <= max_polls")
        self.class_weights = dict(class_weights or DEFAULT_CLASS_WEIGHTS)
        self.min_polls = int(min_polls)
        self.max_polls = int(max_polls)

    def _weight(self, info):
        return self.class_weights.get(info.stability,
                                      self.class_weights[UNKNOWN])

    def _marginal_gain_per_dollar(self, info, current_polls):
        gain = (info.predicted_ape(current_polls)
                - info.predicted_ape(current_polls + 1))
        return self._weight(info) * gain / float(info.poll_cost)

    def plan(self, infos, budget):
        """Allocate polls to maximize weighted accuracy under ``budget``.

        ``infos`` is a list of :class:`ZoneSamplingInfo`.  Every zone first
        receives ``min_polls`` (raising if even that exceeds the budget),
        then remaining dollars go to the best marginal gain per dollar.
        """
        if not infos:
            raise ConfigurationError("no zones to plan for")
        budget = Money(float(budget))
        allocations = {info.zone_id: self.min_polls for info in infos}
        spent = sum((info.poll_cost * self.min_polls for info in infos),
                    Money(0))
        if spent > budget:
            raise ConfigurationError(
                "budget {} cannot cover {} minimum polls".format(
                    budget, self.min_polls))
        heap = []
        for info in infos:
            if self.min_polls < self.max_polls:
                gain = self._marginal_gain_per_dollar(info,
                                                      self.min_polls)
                heapq.heappush(heap, (-gain, info.zone_id, info))
        while heap:
            neg_gain, zone_id, info = heapq.heappop(heap)
            if spent + info.poll_cost > budget:
                continue  # cannot afford this zone's next poll; try others
            allocations[zone_id] += 1
            spent = spent + info.poll_cost
            if allocations[zone_id] < self.max_polls:
                gain = self._marginal_gain_per_dollar(
                    info, allocations[zone_id])
                heapq.heappush(heap, (-gain, zone_id, info))
        return SamplingPlan(allocations, infos)

    def plan_uniform(self, infos, budget):
        """Baseline for comparison: equal polls per zone."""
        if not infos:
            raise ConfigurationError("no zones to plan for")
        budget = Money(float(budget))
        per_round = sum((info.poll_cost for info in infos), Money(0))
        rounds = self.min_polls
        while (per_round * (rounds + 1) <= budget
               and rounds + 1 <= self.max_polls):
            rounds += 1
        if per_round * rounds > budget:
            raise ConfigurationError(
                "budget {} cannot cover {} uniform polls".format(
                    budget, rounds))
        return SamplingPlan({info.zone_id: rounds for info in infos},
                            infos)
