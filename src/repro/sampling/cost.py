"""Sampling cost accounting.

The paper's headline numbers: ~$0.20 to fully saturate an AZ, ~$0.04 for a
95 %-accurate characterization, under two cents per poll at the 2 GB
setting, and $2.80 of total sampling spend across the two-week EX-4/EX-5
study.
"""

from repro.common.units import Money
from repro.sampling.progressive import ProgressiveAnalysis


def characterization_cost(campaign_result, accuracy_pct=95.0):
    """Dollars to characterize a zone to ``accuracy_pct`` from one campaign.

    Returns the full campaign cost when the target was never reached.
    """
    analysis = ProgressiveAnalysis(campaign_result)
    cost = analysis.cost_to_accuracy(accuracy_pct)
    if cost is None:
        return campaign_result.total_cost
    return cost


def campaign_cost_summary(campaign_result):
    """Headline cost metrics for one campaign."""
    fis = campaign_result.total_fis
    total = campaign_result.total_cost
    return {
        "zone": campaign_result.zone_id,
        "polls": campaign_result.polls_run,
        "fis_observed": fis,
        "saturated": campaign_result.saturated,
        "total_cost_usd": float(total),
        "cost_per_poll_usd": (float(total) / campaign_result.polls_run
                              if campaign_result.polls_run else 0.0),
        "cost_per_fi_usd": float(total) / fis if fis else 0.0,
        "cost_to_95pct_usd": float(characterization_cost(campaign_result)),
    }


def series_cost(results):
    """Total sampling spend over a list of campaign results."""
    return sum((result.total_cost for result in results), Money(0))
