"""Sampling campaigns: poll until the zone saturates.

EX-1 defines the stop rule: "we defined the failure point to stop sampling
as when more than 50 % of the requests in a sampling poll failed."  The
accumulated observations at that point are the zone's **ground truth**
characterization — validated in the paper by a second account hitting
immediate saturation.
"""

from repro.common.errors import CharacterizationError, ConfigurationError
from repro.common.units import Money
from repro.sampling.characterization import CharacterizationBuilder
from repro.sampling.poller import Poller


class CampaignResult(object):
    """The full trace of one sampling campaign in one zone."""

    def __init__(self, zone_id, observations, saturated):
        self.zone_id = zone_id
        self.observations = list(observations)
        self.saturated = saturated

    # -- aggregates ----------------------------------------------------------
    @property
    def polls_run(self):
        return len(self.observations)

    @property
    def total_fis(self):
        return sum(obs.unique_fis for obs in self.observations)

    @property
    def total_requests(self):
        return sum(obs.served + obs.failed for obs in self.observations)

    @property
    def total_cost(self):
        return sum((obs.cost for obs in self.observations), Money(0))

    # -- characterizations --------------------------------------------------------
    def characterization_after(self, polls):
        """Characterization built from the first ``polls`` polls.

        Raises :class:`CharacterizationError` when none of those polls
        served a request — the message names exactly which polls in the
        prefix were all-failed, so a caller sweeping poll budgets (the
        progressive analyses, the parallel engine) can tell a saturated
        prefix from a misconfigured one.
        """
        if polls < 1 or polls > self.polls_run:
            raise ConfigurationError(
                "polls must be in [1, {}]".format(self.polls_run))
        builder = CharacterizationBuilder(self.zone_id)
        failed_polls = []
        for number, obs in enumerate(self.observations[:polls], start=1):
            if obs.served > 0:
                builder.add_poll(obs.cpu_counts, cost=obs.cost,
                                 timestamp=obs.timestamp)
            else:
                failed_polls.append(number)
        if builder.is_empty():
            raise CharacterizationError(
                "first {} poll(s) in {} observed nothing: poll(s) "
                "{} were all-failed ({} failed requests in the "
                "prefix)".format(
                    polls, self.zone_id,
                    ", ".join(str(n) for n in failed_polls),
                    sum(obs.failed for obs in self.observations[:polls])))
        return builder.snapshot()

    def ground_truth(self):
        """The saturation-time characterization (all polls pooled)."""
        return self.characterization_after(self.polls_run)

    def fis_after(self, polls):
        return sum(obs.unique_fis for obs in self.observations[:polls])

    def __repr__(self):
        return ("CampaignResult({}, polls={}, fis={}, saturated={}, "
                "cost={})".format(self.zone_id, self.polls_run,
                                  self.total_fis, self.saturated,
                                  self.total_cost))


class SamplingCampaign(object):
    """Run polls back-to-back until saturation (or the endpoint budget)."""

    def __init__(self, cloud, endpoints, n_requests=1000,
                 failure_threshold=0.5, max_polls=None,
                 inter_poll_gap=2.5, fanout=None):
        if not 0 < failure_threshold <= 1:
            raise ConfigurationError("failure_threshold must be in (0, 1]")
        self.cloud = cloud
        self.poller = Poller(cloud, endpoints, n_requests=n_requests,
                             fanout=fanout)
        self.failure_threshold = float(failure_threshold)
        self.max_polls = max_polls if max_polls is not None else len(
            endpoints)
        self.inter_poll_gap = float(inter_poll_gap)

    @property
    def zone_id(self):
        return self.poller.zone_id

    def run(self):
        """Poll until >``failure_threshold`` of a poll's requests fail.

        Returns a :class:`CampaignResult`; ``saturated`` is False when the
        campaign ran out of endpoints before hitting the failure point.
        """
        self.poller.reset_rotation()
        observations = []
        saturated = False
        for _ in range(self.max_polls):
            observation = self.poller.poll()
            observations.append(observation)
            if observation.failure_rate > self.failure_threshold:
                saturated = True
                break
            self.cloud.clock.advance(self.inter_poll_gap)
        result = CampaignResult(self.zone_id, observations, saturated)
        bus = self.cloud.bus
        if bus.enabled:
            bus.emit("sampling.campaign", self.cloud.clock.now,
                     zone=result.zone_id, polls=result.polls_run,
                     saturated=result.saturated,
                     total_fis=result.total_fis,
                     total_requests=result.total_requests,
                     cost_usd=float(result.total_cost))
        return result
