"""Statistical confidence for CPU characterizations (RQ-2 machinery).

A characterization is a multinomial estimate; this module quantifies how
much to trust it:

* **credible intervals** on each CPU's share under a Dirichlet posterior
  (Jeffreys prior), honouring the *effective* sample size — placement is
  host-granular, so 1,000 requests carry far fewer independent draws;
* **predicted APE** from the posterior, an analytic counterpart to the
  empirical Figure-5 curves;
* **sample-size planning**: how many more observations until a share is
  known to ±ε at a given confidence.
"""

import math

from scipy import stats

from repro.common.errors import CharacterizationError, ConfigurationError

# A placement wave fills ~15 % of a 64-slot host before spilling, so
# consecutive requests share hosts: roughly this many requests per
# independent draw (see AvailabilityZone.HOST_FILL_FRACTION).
DEFAULT_CLUSTER_SIZE = 9.6


class CharacterizationEstimator(object):
    """Dirichlet-posterior view over a characterization's counts."""

    def __init__(self, characterization, cluster_size=DEFAULT_CLUSTER_SIZE,
                 prior=0.5):
        if cluster_size < 1:
            raise ConfigurationError("cluster_size must be >= 1")
        if prior <= 0:
            raise ConfigurationError("prior must be positive")
        counts = characterization.distribution.counts()
        if not counts:
            raise CharacterizationError("empty characterization")
        self.zone_id = characterization.zone_id
        self.cluster_size = float(cluster_size)
        self.prior = float(prior)
        # Deflate counts to the effective number of independent draws.
        self._effective = {cpu: count / self.cluster_size
                           for cpu, count in counts.items()}

    @property
    def effective_samples(self):
        return sum(self._effective.values())

    def cpu_keys(self):
        return sorted(self._effective)

    # -- share intervals ----------------------------------------------------------
    def share_interval(self, cpu_key, confidence=0.95):
        """Credible interval for one CPU's share.

        Marginal of a Dirichlet is a Beta; Jeffreys prior (0.5) keeps the
        interval honest for rare categories.
        """
        if not 0 < confidence < 1:
            raise ConfigurationError("confidence must be in (0, 1)")
        if cpu_key not in self._effective:
            # Never observed: upper bound only.
            alpha = self.prior
            beta = self.effective_samples + self.prior * len(
                self._effective)
        else:
            alpha = self._effective[cpu_key] + self.prior
            beta = (self.effective_samples - self._effective[cpu_key]
                    + self.prior * max(1, len(self._effective) - 1))
        tail = (1.0 - confidence) / 2.0
        low = float(stats.beta.ppf(tail, alpha, beta))
        high = float(stats.beta.ppf(1.0 - tail, alpha, beta))
        return max(0.0, low), min(1.0, high)

    def share_halfwidth(self, cpu_key, confidence=0.95):
        low, high = self.share_interval(cpu_key, confidence)
        return (high - low) / 2.0

    # -- APE prediction ---------------------------------------------------------------
    def predicted_ape(self, confidence=0.5):
        """Analytic APE estimate vs. the (unknown) true distribution.

        Expected L1 deviation of a Dirichlet posterior from its mean,
        approximated per-category via the Beta standard deviation (the
        mean absolute deviation of a near-normal is sqrt(2/pi)*sigma).
        ``confidence`` is unused for the expectation but kept for
        signature symmetry with :meth:`share_interval`.
        """
        total = self.effective_samples
        if total <= 0:
            return 200.0
        ape = 0.0
        for cpu_key, effective in self._effective.items():
            share = effective / total
            sigma = math.sqrt(share * (1.0 - share) / total)
            ape += math.sqrt(2.0 / math.pi) * sigma
        return 100.0 * ape

    def observations_for_halfwidth(self, cpu_key, target_halfwidth,
                                   confidence=0.95):
        """Raw observations needed so the share is known to ±target.

        Returns the *additional* requests to collect (0 when already
        there), inflated back by the cluster size.
        """
        if target_halfwidth <= 0:
            raise ConfigurationError("target_halfwidth must be positive")
        share = self._effective.get(cpu_key, 0.0)
        total = self.effective_samples
        p = (share + self.prior) / (total + 2 * self.prior)
        z = float(stats.norm.ppf(1.0 - (1.0 - confidence) / 2.0))
        needed_effective = (z / target_halfwidth) ** 2 * p * (1.0 - p)
        additional = needed_effective - total
        if additional <= 0:
            return 0
        return int(math.ceil(additional * self.cluster_size))

    def __repr__(self):
        return ("CharacterizationEstimator({}, effective_n={:.0f})"
                .format(self.zone_id, self.effective_samples))
