"""CPU characterizations: the product of infrastructure sampling.

A characterization is a categorical distribution over CPU models for one
zone, together with provenance: how many FIs back it, how many polls it
took, what it cost, and when it was taken (characterizations age — EX-4).
"""

from repro.common.distributions import (
    CategoricalDistribution,
    absolute_percentage_error,
)
from repro.common.errors import CharacterizationError
from repro.common.units import Money


class CPUCharacterization(object):
    """An immutable zone CPU profile with provenance."""

    __slots__ = ("zone_id", "distribution", "samples", "polls", "cost",
                 "created_at")

    def __init__(self, zone_id, distribution, samples, polls, cost,
                 created_at):
        if distribution.is_empty():
            raise CharacterizationError(
                "characterization for {} has no observations".format(zone_id))
        self.zone_id = zone_id
        self.distribution = distribution
        self.samples = int(samples)
        self.polls = int(polls)
        self.cost = cost
        self.created_at = float(created_at)

    # -- views ---------------------------------------------------------------
    def share(self, cpu_key):
        return self.distribution.share(cpu_key)

    def shares(self):
        return self.distribution.shares()

    def cpu_keys(self):
        return list(self.distribution.categories)

    def dominant_cpu(self):
        return self.distribution.mode()

    def age_at(self, now):
        """Seconds elapsed since this characterization was taken."""
        return max(0.0, now - self.created_at)

    # -- comparison ---------------------------------------------------------------
    def ape_to(self, other):
        """Absolute percentage error versus another characterization."""
        other_dist = (other.distribution
                      if isinstance(other, CPUCharacterization) else other)
        return absolute_percentage_error(self.distribution, other_dist)

    def accuracy_to(self, other):
        """Paper-style accuracy: 100 % − APE (clamped at 0)."""
        return max(0.0, 100.0 - self.ape_to(other))

    def __repr__(self):
        return ("CPUCharacterization({}, samples={}, polls={}, "
                "cost={})".format(self.zone_id, self.samples, self.polls,
                                  self.cost))


class CharacterizationBuilder(object):
    """Accumulates poll observations into a characterization."""

    def __init__(self, zone_id):
        self.zone_id = zone_id
        self._counts = {}
        self._samples = 0
        self._polls = 0
        self._cost = Money(0)
        self._first_time = None
        self._last_time = None

    def add_poll(self, cpu_counts, cost=Money(0), timestamp=0.0):
        """Fold one poll's per-CPU observation counts into the profile."""
        for cpu_key, count in cpu_counts.items():
            self._counts[cpu_key] = self._counts.get(cpu_key, 0) + count
            self._samples += count
        self._polls += 1
        self._cost = self._cost + cost
        if self._first_time is None:
            self._first_time = timestamp
        self._last_time = timestamp
        return self

    def add_observation(self, cpu_key, timestamp=0.0):
        """Fold a single passive observation (e.g. from a routed workload
        invocation) into the profile."""
        self._counts[cpu_key] = self._counts.get(cpu_key, 0) + 1
        self._samples += 1
        if self._first_time is None:
            self._first_time = timestamp
        self._last_time = timestamp
        return self

    @property
    def samples(self):
        return self._samples

    @property
    def polls(self):
        return self._polls

    def is_empty(self):
        return self._samples == 0

    def snapshot(self):
        """Freeze the current state into a :class:`CPUCharacterization`."""
        if self.is_empty():
            raise CharacterizationError(
                "no observations recorded for {}".format(self.zone_id))
        return CPUCharacterization(
            zone_id=self.zone_id,
            distribution=CategoricalDistribution(self._counts),
            samples=self._samples,
            polls=self._polls,
            cost=self._cost,
            created_at=self._last_time or 0.0,
        )
