"""The EX-1 saturation-validation protocol as a reusable procedure.

The paper's strongest methodological claim — that the sampling technique
observes the *entire* provisioned pool — rests on a falsifiable test:
exhaust the zone from one account, then immediately poll from a fully
independent second account.  If the failures were per-account rate
limiting, the second account would sail through; if they reflect shared
pool exhaustion, it fails instantly.

:func:`validate_saturation` packages that protocol so any user of the
library can re-run the check against a zone (simulated here; the same
call sequence applies to a live platform driver).
"""

from repro.common.errors import ConfigurationError
from repro.sampling.campaign import SamplingCampaign
from repro.sampling.poller import Poller


class SaturationValidation(object):
    """Outcome of the two-account validation protocol."""

    __slots__ = ("zone_id", "primary_campaign", "secondary_failure_rates",
                 "threshold")

    def __init__(self, zone_id, primary_campaign, secondary_failure_rates,
                 threshold):
        self.zone_id = zone_id
        self.primary_campaign = primary_campaign
        self.secondary_failure_rates = list(secondary_failure_rates)
        self.threshold = threshold

    @property
    def primary_saturated(self):
        return self.primary_campaign.saturated

    @property
    def secondary_blocked(self):
        """True when the independent account failed immediately."""
        if not self.secondary_failure_rates:
            return False
        return self.secondary_failure_rates[0] >= self.threshold

    @property
    def pool_is_shared(self):
        """The paper's conclusion: saturation is pool exhaustion, not
        per-account rate limiting."""
        return self.primary_saturated and self.secondary_blocked

    def summary(self):
        return {
            "zone": self.zone_id,
            "primary_polls": self.primary_campaign.polls_run,
            "primary_fis": self.primary_campaign.total_fis,
            "primary_saturated": self.primary_saturated,
            "secondary_failure_rates": [
                round(rate, 4) for rate in self.secondary_failure_rates],
            "pool_is_shared": self.pool_is_shared,
        }

    def __repr__(self):
        return ("SaturationValidation({}, shared={})".format(
            self.zone_id, self.pool_is_shared))


def validate_saturation(cloud, primary_endpoints, secondary_endpoints,
                        n_requests=1000, secondary_polls=3,
                        threshold=0.9):
    """Run the EX-1 protocol; returns a :class:`SaturationValidation`.

    ``primary_endpoints`` and ``secondary_endpoints`` must target the same
    zone but belong to *different accounts* — the whole point is that the
    only shared resource is the zone's pool.
    """
    primary_zone = {e.zone_id for e in primary_endpoints}
    secondary_zone = {e.zone_id for e in secondary_endpoints}
    if primary_zone != secondary_zone:
        raise ConfigurationError(
            "both endpoint sets must target the same zone")
    primary_accounts = {e.account.account_id for e in primary_endpoints}
    secondary_accounts = {e.account.account_id
                          for e in secondary_endpoints}
    if primary_accounts & secondary_accounts:
        raise ConfigurationError(
            "the validation needs two independent accounts")

    campaign = SamplingCampaign(cloud, primary_endpoints,
                                n_requests=n_requests)
    primary_result = campaign.run()

    poller = Poller(cloud, secondary_endpoints, n_requests=n_requests)
    failure_rates = []
    for _ in range(secondary_polls):
        observation = poller.poll()
        failure_rates.append(observation.failure_rate)
        cloud.clock.advance(2.5)

    return SaturationValidation(
        zone_id=primary_endpoints[0].zone_id,
        primary_campaign=primary_result,
        secondary_failure_rates=failure_rates,
        threshold=threshold,
    )
