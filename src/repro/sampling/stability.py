"""Zone stability classification and adaptive sampling cadence (§4.4).

EX-4's takeaway: "stable AZs require less sampling to save on profiling
costs such as sa-east-1a and eu-north-1a, while others like ca-central-1a
and us-west-1a may require more samples."  This module turns that into a
mechanism: classify each zone from the observed drift of its recent
characterizations, then derive a per-zone re-sampling interval.
"""

from repro.common.errors import CharacterizationError, ConfigurationError
from repro.common.units import DAYS, HOURS

STABLE = "stable"
VOLATILE = "volatile"
UNKNOWN = "unknown"


class StabilityClassifier(object):
    """Classifies zones from consecutive-characterization drift.

    Feed it the characterization history (oldest first); it computes the
    APE between consecutive profiles normalized to a per-day rate and
    compares against ``volatile_threshold`` (APE %/day).
    """

    def __init__(self, volatile_threshold=8.0, min_observations=2):
        if volatile_threshold <= 0:
            raise ConfigurationError("volatile_threshold must be positive")
        if min_observations < 2:
            raise ConfigurationError("need at least two observations")
        self.volatile_threshold = float(volatile_threshold)
        self.min_observations = int(min_observations)

    def drift_rate(self, history):
        """Mean APE drift per simulated day across consecutive profiles."""
        if len(history) < 2:
            raise CharacterizationError(
                "need two characterizations to measure drift")
        rates = []
        for earlier, later in zip(history, history[1:]):
            gap_days = (later.created_at - earlier.created_at) / DAYS
            if gap_days <= 0:
                continue
            rates.append(later.ape_to(earlier) / gap_days)
        if not rates:
            raise CharacterizationError(
                "characterizations are not time-separated")
        return sum(rates) / len(rates)

    def classify(self, history):
        """``stable`` / ``volatile`` / ``unknown`` for a profile history."""
        if len(history) < self.min_observations:
            return UNKNOWN
        try:
            rate = self.drift_rate(history)
        except CharacterizationError:
            return UNKNOWN
        return VOLATILE if rate > self.volatile_threshold else STABLE

    def recommended_interval(self, history,
                             stable_interval=7 * DAYS,
                             volatile_interval=22 * HOURS,
                             unknown_interval=22 * HOURS):
        """How long the zone's current profile can be trusted."""
        label = self.classify(history)
        if label == STABLE:
            return stable_interval
        if label == VOLATILE:
            return volatile_interval
        return unknown_interval


class ZoneStabilityTracker(object):
    """Keeps per-zone characterization histories and classifications."""

    def __init__(self, classifier=None, history_limit=30):
        self.classifier = classifier or StabilityClassifier()
        self.history_limit = int(history_limit)
        self._history = {}

    def observe(self, characterization):
        history = self._history.setdefault(characterization.zone_id, [])
        history.append(characterization)
        del history[:-self.history_limit]
        return self.classify(characterization.zone_id)

    def history(self, zone_id):
        return list(self._history.get(zone_id, []))

    def classify(self, zone_id):
        return self.classifier.classify(self._history.get(zone_id, []))

    def next_refresh_due(self, zone_id):
        """Simulated timestamp when the zone's profile goes stale."""
        history = self._history.get(zone_id, [])
        if not history:
            return 0.0
        interval = self.classifier.recommended_interval(history)
        return history[-1].created_at + interval

    def needs_refresh(self, zone_id, now):
        return now >= self.next_refresh_due(zone_id)

    def zones(self):
        return sorted(self._history)
