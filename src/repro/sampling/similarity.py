"""Zone similarity and clustering over CPU characterizations (EX-2 tool).

The global map (Figure 2) invites the question *which zones look alike?*
— similar zones are interchangeable routing targets and can share
characterization budgets.  This module computes the pairwise
total-variation distance matrix over characterizations and clusters zones
agglomeratively (scipy's linkage) at a chosen distance threshold.
"""

import numpy as np
from scipy.cluster import hierarchy
from scipy.spatial.distance import squareform

from repro.common.errors import ConfigurationError
from repro.common.distributions import total_variation_distance


class SimilarityMatrix(object):
    """Pairwise TVD between zone characterizations."""

    def __init__(self, profiles):
        """``profiles``: list of CPUCharacterization (>= 2 zones)."""
        if len(profiles) < 2:
            raise ConfigurationError("need at least two zones to compare")
        zone_ids = [p.zone_id for p in profiles]
        if len(set(zone_ids)) != len(zone_ids):
            raise ConfigurationError("duplicate zones in the profile list")
        self.zone_ids = zone_ids
        self._profiles = {p.zone_id: p for p in profiles}
        size = len(profiles)
        self._matrix = np.zeros((size, size))
        for i in range(size):
            for j in range(i + 1, size):
                tvd = total_variation_distance(
                    profiles[i].distribution, profiles[j].distribution)
                self._matrix[i, j] = self._matrix[j, i] = tvd

    def distance(self, zone_a, zone_b):
        i = self.zone_ids.index(zone_a)
        j = self.zone_ids.index(zone_b)
        return float(self._matrix[i, j])

    def as_array(self):
        return self._matrix.copy()

    def most_similar_pair(self):
        """The two most interchangeable zones."""
        size = len(self.zone_ids)
        best = None
        for i in range(size):
            for j in range(i + 1, size):
                if best is None or self._matrix[i, j] < best[0]:
                    best = (self._matrix[i, j], self.zone_ids[i],
                            self.zone_ids[j])
        return best[1], best[2], best[0]

    def most_distinct_zone(self):
        """The zone least like everything else (mean TVD)."""
        means = self._matrix.sum(axis=1) / (len(self.zone_ids) - 1)
        return self.zone_ids[int(np.argmax(means))]

    # -- clustering ----------------------------------------------------------------
    def clusters(self, threshold=0.15, method="average"):
        """Group zones whose linkage distance stays under ``threshold``.

        Returns a list of sorted zone-id lists (deterministic order).
        """
        if threshold <= 0:
            raise ConfigurationError("threshold must be positive")
        condensed = squareform(self._matrix, checks=False)
        linkage = hierarchy.linkage(condensed, method=method)
        labels = hierarchy.fcluster(linkage, t=threshold,
                                    criterion="distance")
        groups = {}
        for zone_id, label in zip(self.zone_ids, labels):
            groups.setdefault(int(label), []).append(zone_id)
        return sorted((sorted(group) for group in groups.values()),
                      key=lambda g: g[0])

    def representative_zones(self, threshold=0.15):
        """One zone per cluster — a reduced characterization budget that
        still spans the sky's diversity."""
        return [group[0] for group in self.clusters(threshold)]

    def __repr__(self):
        return "SimilarityMatrix(zones={})".format(len(self.zone_ids))
