"""FaaS infrastructure sampling (paper §3.1, EX-1..EX-4).

The pipeline:

1. :mod:`fanout` — plan the recursive invocation tree that turns a handful
   of client requests into 1,000 truly parallel invocations;
2. :mod:`poller` — execute *polls* (one parallel burst against one of the
   100 sampling endpoints) and collect per-request CPU observations;
3. :mod:`characterization` — aggregate observations into zone CPU
   characterizations and compare them (APE);
4. :mod:`campaign` — run polls until the zone saturates (>50 % failures),
   yielding the ground-truth characterization;
5. :mod:`progressive` — the accuracy-vs-cost analysis of EX-3;
6. :mod:`temporal` — daily and hourly campaign series of EX-4;
7. :mod:`cost` — dollar accounting of the sampling spend.
"""

from repro.sampling.fanout import FanoutSpec
from repro.sampling.poller import Poller, PollObservation
from repro.sampling.characterization import (
    CPUCharacterization,
    CharacterizationBuilder,
)
from repro.sampling.campaign import SamplingCampaign, CampaignResult
from repro.sampling.progressive import ProgressiveAnalysis
from repro.sampling.temporal import DailyCampaignSeries, HourlySeries
from repro.sampling.cost import (
    campaign_cost_summary,
    characterization_cost,
)
from repro.sampling.estimators import CharacterizationEstimator
from repro.sampling.scheduler import (
    SamplingBudgetPlanner,
    SamplingPlan,
    ZoneSamplingInfo,
)
from repro.sampling.similarity import SimilarityMatrix
from repro.sampling.validation import (
    SaturationValidation,
    validate_saturation,
)
from repro.sampling.stability import (
    StabilityClassifier,
    ZoneStabilityTracker,
)

__all__ = [
    "FanoutSpec",
    "Poller",
    "PollObservation",
    "CPUCharacterization",
    "CharacterizationBuilder",
    "SamplingCampaign",
    "CampaignResult",
    "ProgressiveAnalysis",
    "DailyCampaignSeries",
    "HourlySeries",
    "campaign_cost_summary",
    "characterization_cost",
    "CharacterizationEstimator",
    "SamplingBudgetPlanner",
    "SamplingPlan",
    "ZoneSamplingInfo",
    "SimilarityMatrix",
    "SaturationValidation",
    "validate_saturation",
    "StabilityClassifier",
    "ZoneStabilityTracker",
]
