"""Temporal sampling series (EX-4, Figures 6-8).

* :class:`DailyCampaignSeries` — one saturation campaign per "day",
  repeated every 22 hours (the paper's cadence, chosen so the poll time
  walks across the day over two weeks);
* :class:`HourlySeries` — a short campaign every hour for 24 hours
  (Figure 8's high-frequency study of us-west-1b).
"""

from repro.common.errors import ConfigurationError
from repro.common.units import HOURS
from repro.sampling.campaign import SamplingCampaign
from repro.sampling.progressive import ProgressiveAnalysis


class DailyCampaignSeries(object):
    """Saturation campaigns in one zone over a multi-day horizon."""

    def __init__(self, cloud, endpoints, days=14, cadence_hours=22.0,
                 n_requests=1000, max_polls=None):
        if days < 1:
            raise ConfigurationError("series needs at least one day")
        self.cloud = cloud
        self.endpoints = endpoints
        self.days = int(days)
        self.cadence_hours = float(cadence_hours)
        self.n_requests = n_requests
        self.max_polls = max_polls
        self.results = []

    @property
    def zone_id(self):
        return self.endpoints[0].zone_id

    def run(self):
        """Execute the series; returns one CampaignResult per day."""
        self.results = []
        for day in range(self.days):
            campaign = SamplingCampaign(self.cloud, self.endpoints,
                                        n_requests=self.n_requests,
                                        max_polls=self.max_polls)
            self.results.append(campaign.run())
            if day != self.days - 1:
                self.cloud.clock.advance(self.cadence_hours * HOURS)
        return self.results

    # -- Figure 6: polls to reach a target accuracy, per day ---------------------
    def polls_for_accuracy(self, accuracy_pct=95.0):
        """Per-day polls needed to reach ``accuracy_pct`` (None = never)."""
        return [ProgressiveAnalysis(result).polls_to_accuracy(accuracy_pct)
                for result in self.results]

    def mean_polls_for_accuracy(self, accuracy_pct=95.0):
        counts = [p for p in self.polls_for_accuracy(accuracy_pct)
                  if p is not None]
        if not counts:
            return None
        return sum(counts) / float(len(counts))

    # -- Figure 7: decay of the day-1 profile ------------------------------------------
    def decay_curve(self):
        """``[(day_index, ape_vs_day1)]`` for days 2..N.

        Measures how stale the day-1 ground truth becomes: the APE between
        each later day's ground truth and day 1's.
        """
        if not self.results:
            raise ConfigurationError("run() the series first")
        baseline = self.results[0].ground_truth()
        curve = []
        for day, result in enumerate(self.results[1:], start=2):
            curve.append((day, result.ground_truth().ape_to(baseline)))
        return curve

    def is_stable(self, ape_threshold=10.0):
        """True when every day stayed within ``ape_threshold`` of day 1."""
        return all(ape <= ape_threshold for _, ape in self.decay_curve())


class HourlySeries(object):
    """Short campaigns every hour for 24 hours (Figure 8)."""

    def __init__(self, cloud, endpoints, hours=24, polls_per_hour=6,
                 n_requests=1000):
        if hours < 2:
            raise ConfigurationError("series needs at least two hours")
        self.cloud = cloud
        self.endpoints = endpoints
        self.hours = int(hours)
        self.polls_per_hour = int(polls_per_hour)
        self.n_requests = n_requests
        self.characterizations = []

    @property
    def zone_id(self):
        return self.endpoints[0].zone_id

    def run(self):
        """One bounded campaign per hour; returns the characterizations."""
        self.characterizations = []
        for hour in range(self.hours):
            campaign = SamplingCampaign(self.cloud, self.endpoints,
                                        n_requests=self.n_requests,
                                        max_polls=self.polls_per_hour)
            result = campaign.run()
            self.characterizations.append(result.ground_truth())
            if hour != self.hours - 1:
                self.cloud.clock.advance(1 * HOURS)
        return self.characterizations

    def variation_curve(self):
        """``[(hour, ape_vs_hour0)]`` for hours 1..N-1."""
        if not self.characterizations:
            raise ConfigurationError("run() the series first")
        baseline = self.characterizations[0]
        return [(hour, profile.ape_to(baseline))
                for hour, profile in enumerate(self.characterizations[1:],
                                               start=1)]

    def hours_within(self, ape_threshold=10.0):
        """How many later hours stayed within ``ape_threshold`` of hour 0."""
        return sum(1 for _, ape in self.variation_curve()
                   if ape <= ape_threshold)
