"""The recursive invocation fan-out tree (paper §3.1, Figure 1).

A client cannot dispatch 1,000 HTTP requests simultaneously — serialized
dispatch spreads arrivals over seconds, letting early FIs finish and be
reused, which defeats unique-FI sampling.  The paper instead invokes a
*branching tree*: the client fires ``b`` requests, each function invokes
``b`` children, and so on, so the full burst lands within a few tree levels
of latency.

:class:`FanoutSpec` plans the tree and computes the **effective arrival
window** used by the placement model:

* with the tree — the window is dominated by per-level invocation latency
  plus the platform's memory-dependent scheduling spread;
* without the tree — the client's serialized dispatch dominates.
"""

import math

from repro.common.errors import ConfigurationError

# Per-tree-level invocation latency (function-to-function call overhead).
LEVEL_LATENCY_S = 0.035

# Serialized client dispatch throughput without a tree.
CLIENT_DISPATCH_PER_REQUEST_S = 2e-3


class FanoutSpec(object):
    """Plan for fanning one poll out to ``n`` parallel invocations."""

    def __init__(self, branching=10, use_tree=True):
        if branching < 2:
            raise ConfigurationError("branching factor must be >= 2")
        self.branching = int(branching)
        self.use_tree = bool(use_tree)

    def depth(self, n_requests):
        """Tree levels needed to reach ``n_requests`` leaves."""
        if n_requests <= 1:
            return 0
        return int(math.ceil(math.log(n_requests, self.branching)))

    def client_requests(self, n_requests):
        """Requests the client itself must issue."""
        if not self.use_tree:
            return n_requests
        return min(self.branching, n_requests)

    def interior_nodes(self, n_requests):
        """Invocations that spend part of their time spawning children."""
        if not self.use_tree or n_requests <= 1:
            return 0
        # A b-ary tree with n total nodes has ~n/b interior nodes.
        return max(1, n_requests // self.branching)

    def effective_window(self, n_requests, provider, memory_mb):
        """Arrival spread of the burst, in seconds.

        The placement model creates one unique FI per request only when the
        sleep interval covers this window (Figure 3's trade-off).
        """
        scheduling_spread = provider.arrival_window(memory_mb)
        if not self.use_tree:
            dispatch = n_requests * CLIENT_DISPATCH_PER_REQUEST_S
            return dispatch + scheduling_spread
        tree_latency = self.depth(n_requests) * LEVEL_LATENCY_S
        return max(tree_latency, scheduling_spread)

    def __repr__(self):
        return "FanoutSpec(branching={}, use_tree={})".format(
            self.branching, self.use_tree)
