"""Progressive-sampling analysis (EX-3, Figure 5).

Given a saturation campaign, measure how quickly partial characterizations
converge on the ground truth: APE after k polls, and the polls/FIs/cost
needed to reach a target accuracy.
"""

from repro.common.errors import CharacterizationError, ConfigurationError
from repro.common.units import Money


class ProgressiveAnalysis(object):
    """Accuracy-versus-cost curves for one campaign."""

    def __init__(self, campaign_result):
        if campaign_result.polls_run == 0:
            raise CharacterizationError("campaign recorded no polls")
        self.campaign = campaign_result
        self._truth = campaign_result.ground_truth()

    @property
    def zone_id(self):
        return self.campaign.zone_id

    @property
    def ground_truth(self):
        return self._truth

    def ape_after(self, polls):
        """APE of the first-``polls`` characterization vs. ground truth."""
        partial = self.campaign.characterization_after(polls)
        return partial.ape_to(self._truth)

    def ape_curve(self):
        """``[(polls, cumulative_fis, ape)]`` for every poll prefix."""
        curve = []
        for polls in range(1, self.campaign.polls_run + 1):
            try:
                ape = self.ape_after(polls)
            except CharacterizationError:
                continue  # a fully-failed poll contributes no observations
            curve.append((polls, self.campaign.fis_after(polls), ape))
        return curve

    def polls_to_accuracy(self, accuracy_pct=95.0):
        """Polls needed to first reach ``accuracy_pct`` (APE ≤ 100−acc).

        Returns None when the campaign never got there.
        """
        if not 0 < accuracy_pct <= 100:
            raise ConfigurationError("accuracy must be in (0, 100]")
        ape_target = 100.0 - accuracy_pct
        for polls, _, ape in self.ape_curve():
            if ape <= ape_target:
                return polls
        return None

    def fis_to_accuracy(self, accuracy_pct=95.0):
        """FIs observed by the first characterization reaching the target."""
        polls = self.polls_to_accuracy(accuracy_pct)
        if polls is None:
            return None
        return self.campaign.fis_after(polls)

    def cost_to_accuracy(self, accuracy_pct=95.0):
        """Sampling dollars spent up to the target-accuracy poll."""
        polls = self.polls_to_accuracy(accuracy_pct)
        if polls is None:
            return None
        return sum((obs.cost
                    for obs in self.campaign.observations[:polls]),
                   Money(0))
