"""Polling: one parallel burst against one sampling endpoint.

A :class:`Poller` owns the zone's sampling endpoint set (the 100 deployed
sleep functions) and rotates through them, so back-to-back polls never share
warm FIs — each poll observes a fresh slice of the zone's infrastructure.
"""

from repro.common.errors import (
    ConfigurationError,
    InvocationError,
    RETRYABLE_REASONS,
)
from repro.cloudsim.az import PlacementResult
from repro.sampling.fanout import FanoutSpec


class PollObservation(object):
    """What one poll saw."""

    __slots__ = ("endpoint_id", "zone_id", "result", "bill", "timestamp")

    def __init__(self, endpoint_id, zone_id, result, bill, timestamp):
        self.endpoint_id = endpoint_id
        self.zone_id = zone_id
        self.result = result
        self.bill = bill
        self.timestamp = timestamp

    @property
    def cpu_counts(self):
        """Per-request CPU observations (one SAAF report per request)."""
        return self.result.request_cpu_counts

    @property
    def unique_fis(self):
        return self.result.unique_fis

    @property
    def served(self):
        return self.result.served

    @property
    def failed(self):
        return self.result.failed

    @property
    def failure_rate(self):
        return self.result.failure_rate

    @property
    def cost(self):
        return self.bill.total

    def __repr__(self):
        return ("PollObservation({} served={} failed={} "
                "cost={})".format(self.zone_id, self.served, self.failed,
                                  self.cost))


class Poller(object):
    """Rotates polls across a zone's sampling endpoints."""

    def __init__(self, cloud, endpoints, n_requests=1000, fanout=None,
                 transient_retries=2):
        if not endpoints:
            raise ConfigurationError("poller needs at least one endpoint")
        if transient_retries < 0:
            raise ConfigurationError("transient_retries must be >= 0")
        zones = {e.zone_id for e in endpoints}
        if len(zones) != 1:
            raise ConfigurationError(
                "sampling endpoints span multiple zones: {}".format(
                    sorted(zones)))
        self.cloud = cloud
        self.endpoints = list(endpoints)
        self.n_requests = int(n_requests)
        self.fanout = fanout or FanoutSpec()
        self.transient_retries = int(transient_retries)
        self._next_endpoint = 0
        # The fan-out window is an invariant of (n_requests, endpoint):
        # resolve it once per endpoint instead of on every poll.
        self._windows = [
            self.fanout.effective_window(self.n_requests, e.provider,
                                         e.memory_mb)
            for e in self.endpoints]

    @property
    def zone_id(self):
        return self.endpoints[0].zone_id

    @property
    def polls_available(self):
        """Endpoints not yet used in this rotation cycle."""
        return len(self.endpoints) - self._next_endpoint

    def reset_rotation(self):
        """Start a fresh rotation (e.g. a new day's campaign)."""
        self._next_endpoint = 0

    def poll(self, now=None):
        """Execute one poll against the next endpoint in rotation.

        Transient platform faults (partition, throttle) are retried up to
        ``transient_retries`` times; if the fault persists the poll is
        recorded as an all-failed observation rather than aborting the
        campaign — saturation heuristics downstream already know how to
        treat a 100 %-failure poll.
        """
        index = self._next_endpoint % len(self.endpoints)
        endpoint = self.endpoints[index]
        self._next_endpoint += 1
        duration = endpoint.handler.duration_on(None, self.cloud.rng)
        window = self._windows[index]
        result = bill = None
        for attempt in range(self.transient_retries + 1):
            try:
                result, bill = self.cloud.place_batch(
                    endpoint, self.n_requests, duration, window=window,
                    now=now, bill_category="sampling")
                break
            except InvocationError as error:
                if error.reason not in RETRYABLE_REASONS:
                    raise
                if attempt == self.transient_retries:
                    result, bill = self._failed_poll(endpoint, duration, now)
        observation = PollObservation(
            endpoint_id=endpoint.deployment_id,
            zone_id=endpoint.zone_id,
            result=result,
            bill=bill,
            timestamp=result.timestamp,
        )
        bus = self.cloud.bus
        if bus.enabled:
            bus.emit("sampling.poll", observation.timestamp,
                     zone=observation.zone_id,
                     endpoint=observation.endpoint_id,
                     poll_index=self._next_endpoint,
                     served=observation.served, failed=observation.failed,
                     failure_rate=observation.failure_rate,
                     unique_fis=observation.unique_fis,
                     cost_usd=float(observation.cost))
        return observation

    def _failed_poll(self, endpoint, duration, now):
        """Synthesize an all-failed observation for a persistent fault."""
        now = self.cloud.clock.now if now is None else float(now)
        result = PlacementResult(
            zone_id=endpoint.zone_id,
            requested=self.n_requests,
            served=0,
            failed=self.n_requests,
            unique_fis=0,
            new_fi_counts={},
            reused_fi_counts={},
            request_cpu_counts={},
            duration=duration,
            timestamp=now,
        )
        # Nothing was served, so nothing is billed.
        bill = endpoint.provider.billing.bill(
            endpoint.memory_mb, duration, endpoint.arch, requests=0)
        return result, bill
