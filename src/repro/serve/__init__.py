"""The serving plane: an always-on gateway over the smart router.

Batch studies answer "which strategy wins"; this package keeps the
winning strategies *running* — open-loop seeded arrivals, token-bucket +
queue-depth admission, a coalescing dispatcher over the vectorized batch
core, and live re-characterization so routing adapts mid-serve.  See
``docs/architecture.md`` ("Serving plane") for the data flow.
"""

from repro.serve.admission import AdmissionController, TokenBucket
from repro.serve.arrivals import (
    ArrivalProcess,
    DiurnalArrivals,
    PoissonArrivals,
    PROFILE_NAMES,
    build_arrivals,
)
from repro.serve.gateway import GatewayConfig, GatewayReport, ServeGateway

__all__ = [
    "AdmissionController",
    "TokenBucket",
    "ArrivalProcess",
    "PoissonArrivals",
    "DiurnalArrivals",
    "PROFILE_NAMES",
    "build_arrivals",
    "GatewayConfig",
    "GatewayReport",
    "ServeGateway",
]
