"""Admission control for the serving gateway: shed early, degrade gracefully.

Two independent guards, applied in order:

1. a **token bucket** caps the sustained admitted rate (with a burst
   allowance), the classic front-door rate limit;
2. a **queue-depth bound** sheds whatever the bucket admitted but the
   dispatcher could not absorb — the signal that the backend, not the
   front door, is the bottleneck.

Requests rejected here get a ``503``-style outcome (counted, reported,
never dispatched), so overload shows up as a rising shed rate instead of
an unbounded queue and collapsing latency.
"""

from repro.common.errors import ConfigurationError


class TokenBucket(object):
    """Deterministic token bucket refilled per gateway tick.

    ``rate_rps=None`` disables the bucket (every request granted).
    ``burst`` defaults to one second's worth of tokens.
    """

    def __init__(self, rate_rps=None, burst=None):
        if rate_rps is not None and rate_rps <= 0:
            raise ConfigurationError("rate_rps must be positive (or None)")
        self.rate_rps = None if rate_rps is None else float(rate_rps)
        if burst is None:
            burst = self.rate_rps if self.rate_rps is not None else 0.0
        self.burst = float(burst)
        self.tokens = self.burst

    def grant(self, n, dt):
        """Refill for ``dt`` sim-seconds, then grant up to ``n`` tokens."""
        if self.rate_rps is None:
            return n
        self.tokens = min(self.burst, self.tokens + self.rate_rps * dt)
        granted = min(n, int(self.tokens))
        self.tokens -= granted
        return granted


class AdmissionController(object):
    """Token bucket + queue-depth shedding, in that order.

    Tokens consumed by requests later shed on queue depth are *not*
    refunded — the work of deciding was done, and refunds would let a
    saturated backend silently raise the effective rate limit.
    """

    def __init__(self, rate_limit_rps=None, burst=None,
                 max_queue_depth=100000):
        if max_queue_depth < 1:
            raise ConfigurationError("max_queue_depth must be >= 1")
        self.bucket = TokenBucket(rate_limit_rps, burst)
        self.max_queue_depth = int(max_queue_depth)

    def admit(self, n, queue_depth, dt):
        """Admit up to ``n`` arrivals given ``queue_depth`` already buffered.

        Returns ``(granted, shed_tokens, shed_queue)`` with
        ``granted + shed_tokens + shed_queue == n``.
        """
        if n <= 0:
            return 0, 0, 0
        granted = self.bucket.grant(n, dt)
        shed_tokens = n - granted
        headroom = self.max_queue_depth - queue_depth
        if headroom < granted:
            shed_queue = granted - max(headroom, 0)
            granted -= shed_queue
        else:
            shed_queue = 0
        return granted, shed_tokens, shed_queue
