"""The always-on serving gateway: coalesce, admit, dispatch, adapt.

``ServeGateway`` runs the paper's smart-routing policies *continuously*
instead of per-study: an open-loop arrival process feeds an admission
controller, admitted requests buffer per routed zone, and a coalescing
dispatcher flushes each buffer through the vectorized
:meth:`~repro.cloudsim.Cloud.poll_batch` on a **size-or-deadline**
trigger (default 256 requests or 2 sim-ms), falling back to the scalar
routed path below a batch floor.  A background task re-characterizes
zones on staleness or error signals, so the routing table keeps up with
the infrastructure mid-serve — the hybrid policy as a service.

Everything is sim-clock driven and seeded: the same arrivals + seed
produce byte-identical outcome aggregates
(:meth:`GatewayReport.aggregate_key`), which the determinism tests
assert.  The asyncio shape exists for lifecycle (drain on SIGTERM, the
re-characterization worker), not wall-clock concurrency — the tick loop
is the only driver of sim time.
"""

import asyncio

import numpy as np

from repro.common.errors import (
    ConfigurationError,
    InvocationError,
    ReproError,
)
from repro.core.slo import default_slo_s
from repro.obs.metrics import Histogram
from repro.serve.arrivals import ArrivalProcess
from repro.serve.admission import AdmissionController


class GatewayConfig(object):
    """Tuning knobs for one gateway run; defaults match the ISSUE shape."""

    __slots__ = (
        "batch_size", "flush_deadline_s", "batch_floor", "tick_s",
        "rate_limit_rps", "burst", "max_queue_depth", "slo_s",
        "report_every_s", "decide_every_s", "recharacterize_failure_rate",
        "recharacterize_cooldown_s", "staleness_check_every_s",
        "wall_pace",
    )

    def __init__(self, batch_size=256, flush_deadline_s=0.002,
                 batch_floor=16, tick_s=0.001, rate_limit_rps=None,
                 burst=None, max_queue_depth=100000, slo_s=None,
                 report_every_s=1.0, decide_every_s=0.010,
                 recharacterize_failure_rate=0.5,
                 recharacterize_cooldown_s=30.0,
                 staleness_check_every_s=60.0, wall_pace=0.0):
        if batch_size < 1 or batch_floor < 1:
            raise ConfigurationError(
                "batch_size and batch_floor must be >= 1")
        if tick_s <= 0 or flush_deadline_s <= 0:
            raise ConfigurationError(
                "tick_s and flush_deadline_s must be positive")
        self.batch_size = int(batch_size)
        self.flush_deadline_s = float(flush_deadline_s)
        self.batch_floor = int(batch_floor)
        self.tick_s = float(tick_s)
        self.rate_limit_rps = rate_limit_rps
        self.burst = burst
        self.max_queue_depth = int(max_queue_depth)
        self.slo_s = slo_s
        self.report_every_s = float(report_every_s)
        self.decide_every_s = float(decide_every_s)
        self.recharacterize_failure_rate = float(recharacterize_failure_rate)
        self.recharacterize_cooldown_s = float(recharacterize_cooldown_s)
        self.staleness_check_every_s = float(staleness_check_every_s)
        #: Wall seconds to spend per sim second (0 = run flat out).
        #: ``wall_pace=1.0`` approximates real time — what an actually
        #: always-on deployment (and the CI mid-run scrape) wants.
        #: Pacing never touches sim time, so aggregates are identical at
        #: any pace.
        self.wall_pace = float(wall_pace)


class GatewayReport(object):
    """Outcome aggregates for one gateway run.

    Counts are exact; latency quantiles come from a seeded reservoir
    histogram, so two runs with the same arrivals and seed produce the
    same :meth:`aggregate_key` byte for byte.
    """

    __slots__ = ("offered", "admitted", "shed_tokens", "shed_queue",
                 "served", "failed", "drained", "batches_coalesced",
                 "batches_scalar", "recharacterizations", "cost_usd",
                 "latency_sum_s", "slo_hits", "slo_s", "sim_seconds",
                 "histogram")

    def __init__(self, slo_s):
        self.offered = 0
        self.admitted = 0
        self.shed_tokens = 0
        self.shed_queue = 0
        self.served = 0
        self.failed = 0
        self.drained = 0
        self.batches_coalesced = 0
        self.batches_scalar = 0
        self.recharacterizations = 0
        self.cost_usd = 0.0
        self.latency_sum_s = 0.0
        self.slo_hits = 0
        self.slo_s = float(slo_s)
        self.sim_seconds = 0.0
        self.histogram = Histogram()

    # -- derived -------------------------------------------------------------
    @property
    def shed(self):
        return self.shed_tokens + self.shed_queue

    @property
    def shed_rate(self):
        return self.shed / self.offered if self.offered else 0.0

    @property
    def goodput_rps(self):
        return self.served / self.sim_seconds if self.sim_seconds else 0.0

    @property
    def slo_attainment(self):
        return self.slo_hits / self.served if self.served else 1.0

    def quantile_ms(self, q):
        return self.histogram.quantile(q, default=float("nan")) * 1000.0

    def aggregate_key(self):
        """Byte-comparable fingerprint of the run's outcome aggregates."""
        return (self.offered, self.admitted, self.shed_tokens,
                self.shed_queue, self.served, self.failed, self.drained,
                self.batches_coalesced, self.batches_scalar,
                self.recharacterizations, self.slo_hits,
                float(self.latency_sum_s).hex(),
                float(self.cost_usd).hex())

    def to_dict(self):
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "shed": self.shed,
            "shed_tokens": self.shed_tokens,
            "shed_queue": self.shed_queue,
            "served": self.served,
            "failed": self.failed,
            "drained": self.drained,
            "batches_coalesced": self.batches_coalesced,
            "batches_scalar": self.batches_scalar,
            "recharacterizations": self.recharacterizations,
            "cost_usd": self.cost_usd,
            "sim_seconds": self.sim_seconds,
            "goodput_rps": self.goodput_rps,
            "shed_rate": self.shed_rate,
            "slo_s": self.slo_s,
            "slo_attainment": self.slo_attainment,
            "p50_ms": self.quantile_ms(0.50),
            "p95_ms": self.quantile_ms(0.95),
            "p99_ms": self.quantile_ms(0.99),
        }

    def __repr__(self):
        return ("GatewayReport(offered={}, served={}, shed={}, "
                "goodput={:.0f}rps, slo={:.1%})".format(
                    self.offered, self.served, self.shed,
                    self.goodput_rps, self.slo_attainment))


class _ZoneBuffer(object):
    """FIFO of (arrival_timestamp, count) groups for one routed zone."""

    __slots__ = ("decision", "groups", "count")

    def __init__(self, decision):
        self.decision = decision
        self.groups = []
        self.count = 0

    def add(self, timestamp, count):
        groups = self.groups
        if groups and groups[-1][0] == timestamp:
            groups[-1] = (timestamp, groups[-1][1] + count)
        else:
            groups.append((timestamp, count))
        self.count += count

    def oldest(self):
        return self.groups[0][0] if self.groups else None

    def take_all(self):
        groups, self.groups, self.count = self.groups, [], 0
        return groups


class ServeGateway(object):
    """Asyncio front door over a :class:`~repro.core.SkyController`."""

    def __init__(self, controller, workload, arrivals, config=None,
                 obs=None):
        if not isinstance(arrivals, ArrivalProcess):
            raise ConfigurationError(
                "arrivals must be an ArrivalProcess")
        self.controller = controller
        self.workload = workload
        self.arrivals = arrivals
        self.config = config or GatewayConfig()
        self.obs = obs if obs is not None else controller.obs
        self.cloud = controller.cloud
        self.router = controller.router_for(workload)
        slo_s = self.config.slo_s
        if slo_s is None:
            slo_s = default_slo_s(workload)
        self.report = GatewayReport(slo_s)
        self.admission = AdmissionController(
            self.config.rate_limit_rps, self.config.burst,
            self.config.max_queue_depth)
        self._buffers = {}
        self._decision = None
        self._decision_at = None
        self._drain_requested = False
        self._running = False
        self._recharacterize_queue = None
        self._last_recharacterized = {}
        self._last_staleness_check = None
        self._zone_window = {}  # zone -> [served, failed] since last check
        self._latency_hist = None
        if self.obs is not None:
            self._latency_hist = self.obs.registry.histogram(
                "serve_latency_s")
        # Window counters for serve.report deltas.
        self._win = {"offered": 0, "admitted": 0, "served": 0}

    # -- lifecycle ------------------------------------------------------------
    def request_drain(self):
        """Ask the loop to stop after draining buffered requests.

        Safe to call from a signal handler: it only sets a flag the tick
        loop reads.
        """
        self._drain_requested = True

    async def run(self, duration_s):
        """Drive the gateway for ``duration_s`` sim-seconds; returns the
        finalized :class:`GatewayReport`.

        One tick = draw arrivals, admit, buffer, flush due batches,
        periodic report/staleness checks, then advance the sim clock.
        The re-characterization worker runs between ticks (the loop
        yields once per tick).
        """
        if duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        if self._running:
            raise ConfigurationError("gateway is already running")
        self._running = True
        clock = self.cloud.clock
        config = self.config
        start = clock.now
        deadline = start + float(duration_s)
        self._recharacterize_queue = asyncio.Queue()
        worker = asyncio.ensure_future(self._recharacterize_loop())
        last_report = start
        self._last_staleness_check = start
        try:
            while not self._drain_requested and clock.now < deadline:
                now = clock.now
                self._tick(now)
                if now - last_report >= config.report_every_s:
                    self._emit_report(now, now - last_report)
                    last_report = now
                if (now - self._last_staleness_check
                        >= config.staleness_check_every_s):
                    self._check_staleness(now)
                    self._last_staleness_check = now
                # Yield once per tick so the re-characterization worker
                # (and any co-hosted ObsServer) gets scheduled points.
                if config.wall_pace > 0.0:
                    await asyncio.sleep(config.tick_s * config.wall_pace)
                else:
                    await asyncio.sleep(0)
                clock.advance(config.tick_s)
            drained = self._drain(clock.now)
            self._emit_report(clock.now, max(clock.now - last_report,
                                             config.tick_s))
            bus = self.cloud.bus
            if bus.enabled:
                bus.emit("serve.drain", clock.now, drained=drained,
                         requested=self._drain_requested)
        finally:
            worker.cancel()
            try:
                await worker
            except asyncio.CancelledError:
                pass
            self._running = False
        self.report.sim_seconds = clock.now - start
        return self.report

    def run_sync(self, duration_s):
        """Synchronous convenience wrapper around :meth:`run`."""
        return asyncio.run(self.run(duration_s))

    # -- the tick -------------------------------------------------------------
    def _tick(self, now):
        config = self.config
        report = self.report
        offered = self.arrivals.draw(now, config.tick_s)
        report.offered += offered
        self._win["offered"] += offered
        if offered:
            queued = sum(b.count for b in self._buffers.values())
            granted, shed_tokens, shed_queue = self.admission.admit(
                offered, queued, config.tick_s)
            report.admitted += granted
            self._win["admitted"] += granted
            if shed_tokens or shed_queue:
                report.shed_tokens += shed_tokens
                report.shed_queue += shed_queue
                bus = self.cloud.bus
                if bus.enabled:
                    if shed_tokens:
                        bus.emit("serve.shed", now, count=shed_tokens,
                                 reason="rate_limit")
                    if shed_queue:
                        bus.emit("serve.shed", now, count=shed_queue,
                                 reason="queue_full")
            if granted:
                decision = self._current_decision(now)
                buffer = self._buffers.get(decision.zone_id)
                if buffer is None or buffer.decision is not decision:
                    buffer = self._buffers.setdefault(
                        decision.zone_id, _ZoneBuffer(decision))
                    buffer.decision = decision
                buffer.add(now, granted)
        self._flush_due(now)

    def _current_decision(self, now):
        if (self._decision is None or self._decision_at is None
                or now - self._decision_at >= self.config.decide_every_s):
            self._decision = self.router.decide(now=now)
            self._decision_at = now
        return self._decision

    def _flush_due(self, now, force=False):
        config = self.config
        for zone_id in list(self._buffers):
            buffer = self._buffers[zone_id]
            if not buffer.count:
                continue
            oldest = buffer.oldest()
            due = (force or buffer.count >= config.batch_size
                   or (oldest is not None
                       and now - oldest >= config.flush_deadline_s))
            if due:
                self._flush(buffer, now)

    # -- dispatch -------------------------------------------------------------
    def _flush(self, buffer, now):
        """Resolve one zone buffer: coalesced above the floor, scalar below."""
        groups = buffer.take_all()
        count = sum(c for _, c in groups)
        if not count:
            return
        if count >= self.config.batch_floor:
            self._flush_coalesced(buffer.decision, groups, count, now)
        else:
            self._flush_scalar(buffer.decision, groups, count, now)

    def _flush_coalesced(self, decision, groups, count, now):
        report = self.report
        try:
            decision, result = self.router.dispatch_batch(
                count, decision=decision, keep_latencies=True,
                bill_category="serve")
        except InvocationError:
            # An injected fault (outage, brownout, throttle) can refuse
            # the whole placement before anything runs.  That is a batch
            # of 503s, not a gateway crash: count them failed, let the
            # error window trigger re-characterization, and re-decide
            # routing on the next tick.
            report.batches_coalesced += 1
            report.failed += count
            self._decision = None
            self._note_zone_outcome(decision.zone_id, 0, count, now)
            self._emit_batch(decision.zone_id, "coalesced", count,
                             served=0, failed=count, now=now)
            return
        served = result.served
        failed = result.failed
        report.batches_coalesced += 1
        report.served += served
        report.failed += failed
        self._win["served"] += served
        report.cost_usd += float(result.bill.total)
        if served:
            # Queue wait per request: FIFO order over the arrival groups;
            # the first `served` arrivals are the ones that got capacity.
            waits = np.repeat(
                [now - ts for ts, _ in groups],
                [c for _, c in groups])[:served]
            latencies = result.latencies[:served] + waits
            self._observe_latencies(latencies)
        self._note_zone_outcome(decision.zone_id, served, failed, now)
        self._emit_batch(decision.zone_id, "coalesced", count, result=result,
                         now=now)

    def _flush_scalar(self, decision, groups, count, now):
        report = self.report
        served = 0
        failed = 0
        cost = 0.0
        cold = 0
        latencies = []
        for timestamp, group_count in groups:
            wait = now - timestamp
            for _ in range(group_count):
                try:
                    request = self.router.route(decision)
                except InvocationError:
                    failed += 1
                    continue
                served += 1
                cost += float(request.cost)
                if not getattr(request.outcome, "reused", True):
                    cold += 1
                latencies.append(request.latency_s + wait)
        report.batches_scalar += 1
        report.served += served
        report.failed += failed
        self._win["served"] += served
        report.cost_usd += cost
        if latencies:
            self._observe_latencies(np.asarray(latencies, dtype=np.float64))
        self._note_zone_outcome(decision.zone_id, served, failed, now)
        self._emit_batch(decision.zone_id, "scalar", count, served=served,
                         failed=failed, cold=cold, cost=cost, now=now)

    def _observe_latencies(self, latencies):
        report = self.report
        report.latency_sum_s += float(latencies.sum())
        report.slo_hits += int((latencies <= report.slo_s).sum())
        report.histogram.observe_many(latencies)
        if self._latency_hist is not None:
            self._latency_hist.observe_many(latencies)

    def _emit_batch(self, zone_id, mode, size, result=None, served=0,
                    failed=0, cold=0, cost=0.0, now=0.0):
        bus = self.cloud.bus
        if not bus.enabled:
            return
        if result is not None:
            served, failed = result.served, result.failed
            cold = result.cold_starts
            cost = float(result.bill.total)
        bus.emit("serve.batch", now, zone=zone_id, mode=mode, size=size,
                 served=served, failed=failed, cold_starts=cold,
                 cost_usd=cost)

    # -- adaptation -----------------------------------------------------------
    def _note_zone_outcome(self, zone_id, served, failed, now):
        window = self._zone_window.setdefault(zone_id, [0, 0])
        window[0] += served
        window[1] += failed
        total = window[0] + window[1]
        config = self.config
        if (total >= 20
                and window[1] / total >= config.recharacterize_failure_rate):
            last = self._last_recharacterized.get(zone_id)
            if (last is None
                    or now - last >= config.recharacterize_cooldown_s):
                self._last_recharacterized[zone_id] = now
                self._zone_window[zone_id] = [0, 0]
                self._recharacterize_queue.put_nowait((zone_id, "errors"))

    def _check_staleness(self, now):
        for zone_id in self.controller.zones:
            if self.controller.tracker.needs_refresh(zone_id, now):
                last = self._last_recharacterized.get(zone_id)
                if (last is not None and now - last
                        < self.config.recharacterize_cooldown_s):
                    continue
                self._last_recharacterized[zone_id] = now
                self._recharacterize_queue.put_nowait((zone_id, "stale"))

    async def _recharacterize_loop(self):
        """Background worker: re-poll zones the tick loop flagged.

        Runs between ticks (single-threaded asyncio), so the sampling
        campaign's cloud calls never interleave with a flush.
        ``refresh_zone`` does not advance the sim clock — serving time
        belongs to the tick loop alone.
        """
        queue = self._recharacterize_queue
        while True:
            zone_id, reason = await queue.get()
            try:
                self.controller.refresh_zone(zone_id)
            except ReproError:
                # A refresh against a saturated or browned-out zone can
                # itself fail (all-failed polls).  That is a data point,
                # not a reason to take the gateway down; the cooldown in
                # the tick loop paces the next attempt.
                ok = False
            else:
                ok = True
                self.report.recharacterizations += 1
                # Invalidate the cached routing decision: the refreshed
                # characterization may rank zones differently.
                self._decision = None
            bus = self.cloud.bus
            if bus.enabled:
                bus.emit("serve.recharacterize", self.cloud.clock.now,
                         zone=zone_id, reason=reason, ok=ok)

    # -- reporting ------------------------------------------------------------
    def _emit_report(self, now, window_s):
        bus = self.cloud.bus
        win = self._win
        offered, admitted, served = (win["offered"], win["admitted"],
                                     win["served"])
        win["offered"] = win["admitted"] = win["served"] = 0
        if not bus.enabled:
            return
        report = self.report
        bus.emit("serve.report", now,
                 offered=offered, admitted=admitted,
                 offered_rps=offered / window_s if window_s else 0.0,
                 goodput_rps=served / window_s if window_s else 0.0,
                 shed_rate=report.shed_rate,
                 slo_attainment=report.slo_attainment,
                 p50_ms=report.quantile_ms(0.50),
                 p95_ms=report.quantile_ms(0.95),
                 p99_ms=report.quantile_ms(0.99))

    # -- drain ----------------------------------------------------------------
    def _drain(self, now):
        """Flush every buffer before exit; in-flight work is never dropped."""
        drained = sum(b.count for b in self._buffers.values())
        self._flush_due(now, force=True)
        self.report.drained += drained
        return drained

    def __repr__(self):
        return "ServeGateway(workload={!r}, policy={})".format(
            self.workload.name, self.controller.policy.name)
