"""Open-loop arrival processes for the serving gateway.

The gateway is *open-loop*: simulated users fire requests at a rate that
does not depend on how fast the system answers (the standard serving
methodology — closed-loop clients hide overload by slowing down with the
server).  Each process draws the number of arrivals per sim-clock tick
from a Poisson distribution whose rate may vary with sim time, from a
seeded generator, so a run is reproducible arrival-for-arrival.

Scale note: the tick draw is one ``rng.poisson(rate * dt)`` regardless of
rate, so "millions of simulated users" costs the same as ten — arrivals
stay aggregate counts until the coalescing dispatcher resolves them
columnarly.
"""

import math

from repro.common.errors import ConfigurationError
from repro.common.rng import derive_rng

PROFILE_NAMES = ("poisson", "diurnal")


class ArrivalProcess(object):
    """Base: seeded Poisson arrivals with a time-varying rate."""

    def __init__(self, seed=0, *tokens):
        self._rng = derive_rng(seed, "serve", "arrivals", *tokens)

    def rate_at(self, t):
        """Instantaneous offered rate (requests/sim-second) at time ``t``."""
        raise NotImplementedError

    def draw(self, t, dt):
        """Number of arrivals in ``[t, t + dt)``; one Poisson draw."""
        mean = self.rate_at(t) * dt
        if mean <= 0.0:
            return 0
        return int(self._rng.poisson(mean))


class PoissonArrivals(ArrivalProcess):
    """Constant-rate Poisson arrivals."""

    def __init__(self, rate_rps, seed=0):
        if rate_rps < 0:
            raise ConfigurationError("rate_rps must be >= 0")
        super(PoissonArrivals, self).__init__(seed, "poisson")
        self.rate_rps = float(rate_rps)

    def rate_at(self, t):
        return self.rate_rps

    def __repr__(self):
        return "PoissonArrivals(rate_rps={})".format(self.rate_rps)


class DiurnalArrivals(ArrivalProcess):
    """A day-shaped rate: raised-cosine between ``base_rps`` and
    ``peak_rps`` over ``period_s`` (default one sim day).

    ``phase_s`` shifts where in the cycle the run starts; ``phase_s=0``
    starts at the trough, ``period_s / 2`` at the peak.
    """

    def __init__(self, base_rps, peak_rps, period_s=86400.0, phase_s=0.0,
                 seed=0):
        if base_rps < 0 or peak_rps < base_rps:
            raise ConfigurationError(
                "need 0 <= base_rps <= peak_rps")
        if period_s <= 0:
            raise ConfigurationError("period_s must be positive")
        super(DiurnalArrivals, self).__init__(seed, "diurnal")
        self.base_rps = float(base_rps)
        self.peak_rps = float(peak_rps)
        self.period_s = float(period_s)
        self.phase_s = float(phase_s)

    def rate_at(self, t):
        swing = (self.peak_rps - self.base_rps) * 0.5
        angle = 2.0 * math.pi * (t + self.phase_s) / self.period_s
        return self.base_rps + swing * (1.0 - math.cos(angle))

    def __repr__(self):
        return ("DiurnalArrivals(base_rps={}, peak_rps={}, "
                "period_s={})".format(self.base_rps, self.peak_rps,
                                      self.period_s))


def build_arrivals(profile, rate_rps, seed=0, peak_rps=None,
                   period_s=86400.0, phase_s=0.0):
    """CLI-facing factory: ``profile`` is one of :data:`PROFILE_NAMES`.

    For ``diurnal``, ``rate_rps`` is the trough and ``peak_rps`` defaults
    to 4x the trough — a typical day/night swing.
    """
    if profile == "poisson":
        return PoissonArrivals(rate_rps, seed=seed)
    if profile == "diurnal":
        if peak_rps is None:
            peak_rps = 4.0 * rate_rps
        return DiurnalArrivals(rate_rps, peak_rps, period_s=period_s,
                               phase_s=phase_s, seed=seed)
    raise ConfigurationError(
        "unknown arrival profile {!r}; expected one of {}".format(
            profile, ", ".join(PROFILE_NAMES)))
