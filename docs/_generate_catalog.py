"""Regenerate docs/catalog.md from the live catalog specs.

Run from the repository root:  python docs/_generate_catalog.py
"""

from pathlib import Path

from repro.cloudsim.carbon import _REGION_BASELINES
from repro.cloudsim.catalog import (
    AWS_REGION_SPECS,
    DO_REGION_SPECS,
    EX3_ZONES,
    EX4_ZONES,
    IBM_REGION_SPECS,
)


def generate():
    lines = []
    lines.append("# Region catalog reference")
    lines.append("")
    lines.append("Generated from `repro.cloudsim.catalog` (the code is the source of")
    lines.append("truth; regenerate with `python docs/_generate_catalog.py` if specs")
    lines.append("change).  Capacity is in FI slots; drift classes are described in")
    lines.append("docs/simulator.md.")
    lines.append("")
    lines.append("## AWS Lambda (33 regions)")
    lines.append("")
    lines.append("| zone | capacity | drift | CPU mix | gCO2e/kWh |")
    lines.append("|---|---|---|---|---|")
    for name in sorted(AWS_REGION_SPECS):
        _, _, zones = AWS_REGION_SPECS[name]
        for suffix in sorted(zones):
            spec = zones[suffix]
            mix = ", ".join("{} {:.0%}".format(c, s)
                            for c, s in sorted(spec.mix.items()))
            lines.append("| {}{} | {:,} | {} | {} | {} |".format(
                name, suffix, spec.slots, spec.drift, mix,
                _REGION_BASELINES.get(name, "-")))
    for title, specs in (("IBM Code Engine (4 regions)", IBM_REGION_SPECS),
                         ("Digital Ocean Functions (4 regions)",
                          DO_REGION_SPECS)):
        lines.append("")
        lines.append("## " + title)
        lines.append("")
        lines.append("| zone | capacity | CPU mix | gCO2e/kWh |")
        lines.append("|---|---|---|---|")
        for name in sorted(specs):
            _, _, spec = specs[name]
            mix = ", ".join("{} {:.0%}".format(c, s)
                            for c, s in sorted(spec.mix.items()))
            lines.append("| {} | {:,} | {} | {} |".format(
                name, spec.slots, mix, _REGION_BASELINES.get(name, "-")))
    lines.append("")
    lines.append("## Experiment zone sets")
    lines.append("")
    lines.append("* **EX-3 (progressive sampling, 11 AZs):** "
                 + ", ".join(EX3_ZONES))
    lines.append("* **EX-4/EX-5 (temporal + routing, 5 AZs):** "
                 + ", ".join(EX4_ZONES))
    lines.append("")
    return "\n".join(lines)


if __name__ == "__main__":
    target = Path(__file__).parent / "catalog.md"
    target.write_text(generate())
    print("wrote", target)
