"""Ablation: placement affinity (the late-surfacing-hardware model).

The simulator weights new-FI placement by ``free_slots × affinity`` so
that rare, low-affinity pools are under-represented early in a campaign —
the mechanism behind EX-3's "anomalous spikes ... revealed previously
unseen hardware".  This ablation rebuilds us-east-2b with and without the
affinity bias and compares the error trajectory.
"""

from benchmarks.conftest import once
from repro.cloudsim.az import AvailabilityZone, ScalingPolicy
from repro.cloudsim.catalog import zone_spec
from repro.cloudsim.cloud import Cloud
from repro.cloudsim.host import HostPool
from repro.cloudsim.network import GeoPoint
from repro.cloudsim.provider import AWS_LAMBDA
from repro.cloudsim.region import Region
from repro.sampling import ProgressiveAnalysis, SamplingCampaign
from repro.skymesh import SkyMesh

ZONE = "us-east-2b"
SEED = 37


def build_zone_variant(with_affinity, seed):
    spec = zone_spec(ZONE)
    cloud = Cloud(seed=seed)
    region = Region("us-east-2", AWS_LAMBDA, GeoPoint(40.0, -83.0))
    pools = []
    for cpu_key, share in sorted(spec.mix.items()):
        hosts = max(1, int(round(spec.slots * share
                                 / AWS_LAMBDA.slots_per_host)))
        affinity = spec.affinity.get(cpu_key, 1.0) if with_affinity else 1.0
        if cpu_key == "amd-epyc" and with_affinity:
            affinity = spec.affinity.get(cpu_key, 0.7)
        pools.append(HostPool(cpu_key, hosts, AWS_LAMBDA.slots_per_host,
                              affinity=affinity))
    region.add_zone(AvailabilityZone(
        ZONE, pools, cloud.clock,
        scaling=ScalingPolicy(max_surge_slots=spec.slots // 12), rng=seed))
    cloud.add_region(region)
    return cloud


def run_campaign(with_affinity, seed):
    cloud = build_zone_variant(with_affinity, seed)
    account = cloud.create_account("abl", "aws")
    mesh = SkyMesh(cloud)
    endpoints = mesh.deploy_sampling_endpoints(account, ZONE, count=40)
    return ProgressiveAnalysis(SamplingCampaign(cloud, endpoints).run())


def run_both():
    seeds = (37, 41, 43)
    return ([run_campaign(True, s) for s in seeds],
            [run_campaign(False, s) for s in seeds])


def test_ablation_affinity(benchmark, report):
    biased_runs, unbiased_runs = once(benchmark, run_both)

    table = report("Ablation: placement affinity bias in us-east-2b")
    table.row("variant", "seed", "APE@1", "APE@3", "polls->95%",
              widths=(10, 5, 7, 7, 10))
    for label, runs in (("biased", biased_runs),
                        ("uniform", unbiased_runs)):
        for index, analysis in enumerate(runs):
            table.row(label, index, "{:.1f}".format(analysis.ape_after(1)),
                      "{:.1f}".format(analysis.ape_after(3)),
                      analysis.polls_to_accuracy(95.0),
                      widths=(10, 5, 7, 7, 10))

    mean_biased_ape1 = sum(a.ape_after(1)
                           for a in biased_runs) / len(biased_runs)
    mean_uniform_ape1 = sum(a.ape_after(1)
                            for a in unbiased_runs) / len(unbiased_runs)
    table.line()
    table.row("mean APE@1: biased={:.1f}% uniform={:.1f}%".format(
        mean_biased_ape1, mean_uniform_ape1))

    # The affinity bias is what produces the large single-poll errors the
    # paper measured in us-east-2b (~25 %): with uniform placement, one
    # poll is already close to the truth.
    assert mean_biased_ape1 > mean_uniform_ape1 + 5.0
    assert mean_uniform_ape1 < 15.0

    # Both variants converge to the ground truth by saturation.
    for analysis in biased_runs + unbiased_runs:
        assert analysis.ape_after(analysis.campaign.polls_run) < 1e-9
