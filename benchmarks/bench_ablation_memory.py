"""Ablation: the memory ladder — predicted vs. simulated cost curves.

The sky mesh deploys every memory rung (§3.3); choosing one is a real
decision because Lambda couples CPU allocation to memory.  This ablation
compares the :class:`MemoryAdvisor`'s *predicted* cost curve against the
cost *realized* by actually running bursts on memory-aware mesh rungs,
validating the advisor end-to-end and exhibiting the classic
power-tuning shape: costly at starved settings, cheapest at small-but-
sufficient rungs, linearly more expensive past CPU saturation.
"""

import pytest

from benchmarks.conftest import once
from repro import (
    CharacterizationStore,
    SamplingCampaign,
    SkyMesh,
    UniversalDynamicFunctionHandler,
    WorkloadRunner,
    build_sky,
    workload_by_name,
)
from repro.core.memory_advisor import MemoryAdvisor
from repro.workloads.registry import memory_aware_resolver

SEED = 89
ZONE = "us-east-2a"  # single-CPU zone isolates the memory effect
LADDER = (256, 512, 1024, 2048, 4096, 8192)
BURST = 300


def run_ladder():
    cloud = build_sky(seed=SEED, aws_only=True)
    account = cloud.create_account("abl", "aws")
    mesh = SkyMesh(cloud)
    workload = workload_by_name("zipper")

    endpoints = mesh.deploy_sampling_endpoints(account, ZONE, count=4)
    store = CharacterizationStore()
    store.put(SamplingCampaign(cloud, endpoints,
                               max_polls=4).run().ground_truth())
    cloud.clock.advance(600.0)

    predicted = MemoryAdvisor(cloud, store).recommend(workload, ZONE,
                                                      ladder=LADDER)
    runner = WorkloadRunner(cloud)
    realized = {}
    for memory_mb in LADDER:
        deployment = cloud.deploy(
            account, ZONE, "dynamic", memory_mb,
            handler=UniversalDynamicFunctionHandler(
                memory_aware_resolver(memory_mb)))
        mesh.register(deployment)
        burst = runner.run_batched_burst(deployment, workload, BURST)
        realized[memory_mb] = {
            "cost_usd": float(burst.cost_per_invocation),
            "runtime_s": burst.total_billed_runtime / burst.executed,
        }
        cloud.clock.advance(3600.0)
    return predicted, realized


def test_ablation_memory_ladder(benchmark, report):
    predicted, realized = once(benchmark, run_ladder)

    table = report("Ablation: memory ladder — predicted vs. realized")
    table.row("memory", "pred runtime", "real runtime", "pred $/inv",
              "real $/inv", widths=(8, 13, 13, 12, 12))
    for memory_mb in LADDER:
        table.row("{}MB".format(memory_mb),
                  "{:.2f}s".format(predicted.runtime_at(memory_mb)),
                  "{:.2f}s".format(realized[memory_mb]["runtime_s"]),
                  "{:.6f}".format(predicted.cost_at(memory_mb)),
                  "{:.6f}".format(realized[memory_mb]["cost_usd"]),
                  widths=(8, 13, 13, 12, 12))
    table.line()
    table.row("advisor picks: cheapest={}MB fastest={}MB "
              "balanced={}MB".format(predicted.cheapest,
                                     predicted.fastest,
                                     predicted.balanced))

    # Predictions track the simulation within 10 % everywhere.
    for memory_mb in LADDER:
        assert realized[memory_mb]["runtime_s"] == pytest.approx(
            predicted.runtime_at(memory_mb), rel=0.10)
        assert realized[memory_mb]["cost_usd"] == pytest.approx(
            predicted.cost_at(memory_mb), rel=0.10)

    # The power-tuning shape: runtime falls monotonically down the ladder
    # until saturation, cost rises past it.
    assert (realized[256]["runtime_s"] > realized[1024]["runtime_s"]
            > realized[4096]["runtime_s"])
    assert realized[8192]["cost_usd"] > realized[4096]["cost_usd"]

    # The advisor's cheapest pick really is the realized minimum.
    realized_cheapest = min(LADDER,
                            key=lambda m: realized[m]["cost_usd"])
    assert predicted.cheapest == realized_cheapest

