"""Ablation: cost-aware vs. carbon-aware vs. multi-objective routing.

The paper's router descends from a carbon-aware ancestor (§3.4).  This
ablation routes the same burst under three objectives and reports billed
cost, emissions, and client RTT — showing what each single-objective
policy gives up and how the weighted policy interpolates.
"""

from benchmarks.conftest import once
from repro import (
    CharacterizationStore,
    SkyMesh,
    UniversalDynamicFunctionHandler,
    WorkloadRunner,
    build_sky,
    workload_by_name,
)
from repro.cloudsim.carbon import CarbonIntensityModel, grams_co2e
from repro.cloudsim.network import CLIENT_LOCATIONS
from repro.core import RegionalPolicy, SmartRouter
from repro.core.green import CarbonAwarePolicy, MultiObjectivePolicy
from repro.sampling import SamplingCampaign
from repro.workloads import resolve_runtime_model

SEED = 79
BURST = 500
CLIENT = CLIENT_LOCATIONS["new-york"]
# Zones chosen to force a trade-off: mx-central-1a has the fastest
# CPU mix but a dirty grid; sa-east-1a is hydro-clean but slower;
# af-south-1a is dominated (slow and dirty).
ZONES = ("mx-central-1a", "sa-east-1a", "af-south-1a")


def run_objectives():
    cloud = build_sky(seed=SEED, aws_only=True)
    account = cloud.create_account("abl", "aws")
    mesh = SkyMesh(cloud)
    store = CharacterizationStore()
    carbon = CarbonIntensityModel(seed=SEED)
    handler = UniversalDynamicFunctionHandler(resolve_runtime_model)
    for index, zone in enumerate(ZONES):
        mesh.register(cloud.deploy(account, zone, "dynamic", 2048,
                                   handler=handler))
        endpoints = mesh.deploy_sampling_endpoints(
            account, zone, count=6, memory_base_mb=2048 + 10 * index)
        campaign = SamplingCampaign(cloud, endpoints, max_polls=6,
                                    inter_poll_gap=1.0)
        store.put(campaign.run().ground_truth())
    cloud.clock.advance(900.0)

    workload = workload_by_name("logistic_regression")
    runner = WorkloadRunner(cloud)
    policies = {
        "cost_only": RegionalPolicy(),
        "carbon_only": CarbonAwarePolicy(cloud, carbon, max_rtt=10.0),
        "balanced": MultiObjectivePolicy(cloud, carbon, cost_weight=1.0,
                                         carbon_weight=0.3,
                                         latency_weight=0.1),
    }
    outcomes = {}
    for name, policy in policies.items():
        router = SmartRouter(cloud, mesh, store, policy, workload,
                             list(ZONES), client=CLIENT)
        decision = router.decide()
        burst = runner.run_batched_burst(
            mesh.endpoint(decision.zone_id, 2048), workload, BURST,
            policy_name=name)
        region = cloud.region_of_zone(decision.zone_id)
        intensity = carbon.intensity(region.name, cloud.clock.now,
                                     lon=region.geo.lon)
        co2 = grams_co2e(2048, burst.total_billed_runtime / BURST,
                         intensity) * BURST
        rtt = cloud.network.round_trip(CLIENT, region.geo)
        outcomes[name] = {
            "zone": decision.zone_id,
            "cost": float(burst.total_cost),
            "co2_g": co2,
            "rtt_ms": rtt * 1000.0,
        }
        cloud.clock.advance(900.0)
    return outcomes


def test_ablation_carbon_objectives(benchmark, report):
    outcomes = once(benchmark, run_objectives)

    table = report("Ablation: routing objective vs. cost/carbon/latency")
    table.row("objective", "zone", "cost $", "gCO2e", "RTT ms",
              widths=(12, 14, 8, 8, 7))
    for name in ("cost_only", "carbon_only", "balanced"):
        row = outcomes[name]
        table.row(name, row["zone"], "{:.3f}".format(row["cost"]),
                  "{:.1f}".format(row["co2_g"]),
                  "{:.0f}".format(row["rtt_ms"]),
                  widths=(12, 14, 8, 8, 7))

    cost_only = outcomes["cost_only"]
    carbon_only = outcomes["carbon_only"]
    balanced = outcomes["balanced"]

    # Each single-objective policy picks its own winner.
    assert cost_only["zone"] == "mx-central-1a"
    assert carbon_only["zone"] == "sa-east-1a"
    # Nobody routes to the dominated zone.
    for row in outcomes.values():
        assert row["zone"] != "af-south-1a"

    # Realized metrics follow: the cost router is cheaper, the carbon
    # router is cleaner (2 % slack for burst noise).
    assert cost_only["cost"] <= carbon_only["cost"] * 1.02
    assert carbon_only["co2_g"] < cost_only["co2_g"]

    # The balanced policy never does worse than the worst single
    # objective on either axis.
    assert balanced["cost"] <= max(cost_only["cost"],
                                   carbon_only["cost"]) * 1.02
    assert balanced["co2_g"] <= max(cost_only["co2_g"],
                                    carbon_only["co2_g"]) * 1.02
