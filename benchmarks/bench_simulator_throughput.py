"""Simulator throughput: how fast the substrate itself runs.

Unlike the figure benches (single-shot experiments), these are genuine
multi-round microbenchmarks of the simulator's hot paths — the numbers
that determine how large an experiment the library can host.
"""

import pytest

from repro import SkyMesh, build_sky
from repro.cloudsim.handlers import SleepHandler
from repro.dynfunc import UniversalDynamicFunctionHandler
from repro.workloads import resolve_runtime_model, workload_by_name


@pytest.fixture
def throughput_rig():
    cloud = build_sky(seed=191, aws_only=True)
    account = cloud.create_account("bench", "aws")
    mesh = SkyMesh(cloud)
    sleeper = cloud.deploy(account, "eu-central-1a", "sleeper", 2048,
                           handler=SleepHandler(0.25))
    dynamic = cloud.deploy(
        account, "eu-central-1a", "dynamic", 2048,
        handler=UniversalDynamicFunctionHandler(resolve_runtime_model))
    return cloud, sleeper, dynamic


def test_throughput_poll_1000(benchmark, throughput_rig):
    """A full 1,000-request poll (the sampling hot path)."""
    cloud, sleeper, _ = throughput_rig

    def poll():
        result, _ = cloud.poll(sleeper, 1000)
        cloud.clock.advance(400.0)  # let the FIs expire between rounds
        return result

    result = benchmark(poll)
    assert result.served == 1000


def test_throughput_invoke_one(benchmark, throughput_rig):
    """A single routed invocation (the per-request path)."""
    cloud, _, dynamic = throughput_rig
    payload = workload_by_name("sha1_hash").payload()

    def invoke():
        invocation = cloud.invoke(dynamic, payload=payload)
        cloud.clock.advance(5.0)  # warm reuse on the next round
        return invocation

    invocation = benchmark(invoke)
    assert invocation.runtime_s > 0


def test_throughput_build_catalog(benchmark):
    """Constructing the full 41-region sky."""
    cloud = benchmark(lambda: build_sky(seed=7))
    assert len(cloud.regions) == 41


def test_throughput_batched_burst(benchmark, throughput_rig):
    """A 1,000-invocation batched workload burst (the EX-5 path)."""
    from repro.core import WorkloadRunner
    cloud, _, dynamic = throughput_rig
    runner = WorkloadRunner(cloud)
    workload = workload_by_name("zipper")

    def burst():
        result = runner.run_batched_burst(dynamic, workload, 1000)
        cloud.clock.advance(900.0)
        return result

    result = benchmark(burst)
    assert result.executed == 1000
