"""Ablation: budget-aware sampling planning vs. uniform allocation.

The paper's §4.3 worry: "If required to sample dozens of AZs, multiple
times per day, the profiling cost for sky computing quickly balloons."
This ablation gives both planners the same dollar budget across the eleven
EX-3 zones (with planning inputs derived from a prior day's campaigns) and
compares the *realized* characterization error each plan achieves the next
day.
"""

from benchmarks.conftest import once
from repro import EX3_ZONES, SamplingCampaign, SkyMesh, build_sky
from repro.common.units import HOURS, Money
from repro.sampling.scheduler import (
    SamplingBudgetPlanner,
    ZoneSamplingInfo,
)
from repro.sampling.stability import STABLE, VOLATILE

SEED = 83
BUDGET = 0.55
VOLATILE_ZONES = {"ca-central-1a", "us-west-1a", "us-west-1b"}


def run_plans():
    cloud = build_sky(seed=SEED, aws_only=True)
    account = cloud.create_account("plan", "aws")
    mesh = SkyMesh(cloud)
    endpoint_sets = {}

    # Day 0: full campaigns provide the planning inputs (APE@1, poll cost)
    # and each zone's realized saturation ground truth machinery.
    infos = []
    for zone_id in EX3_ZONES:
        endpoint_sets[zone_id] = mesh.deploy_sampling_endpoints(
            account, zone_id, count=60)
        campaign = SamplingCampaign(cloud, endpoint_sets[zone_id]).run()
        stability = (VOLATILE if zone_id in VOLATILE_ZONES else STABLE)
        infos.append(ZoneSamplingInfo.from_campaign(campaign,
                                                    stability=stability))
        cloud.clock.advance(300.0)

    planner = SamplingBudgetPlanner(min_polls=1)
    plans = {
        "smart": planner.plan(infos, budget=BUDGET),
        "uniform": planner.plan_uniform(infos, budget=BUDGET),
    }

    # Day 1: execute each plan and measure realized APE against that
    # day's saturation ground truth.
    outcomes = {}
    for label, plan in plans.items():
        cloud.clock.advance(22 * HOURS)
        realized = {}
        spent = Money(0)
        for zone_id in EX3_ZONES:
            polls = plan.polls_for(zone_id)
            campaign = SamplingCampaign(cloud, endpoint_sets[zone_id])
            result = campaign.run()  # to saturation: the ground truth
            partial = result.characterization_after(
                min(polls, result.polls_run))
            truth = result.ground_truth()
            realized[zone_id] = partial.ape_to(truth)
            spent = spent + sum(
                (obs.cost
                 for obs in result.observations[:polls]), Money(0))
            cloud.clock.advance(300.0)
        weights = {z: (2.0 if z in VOLATILE_ZONES else 0.5)
                   for z in EX3_ZONES}
        outcomes[label] = {
            "realized_ape": realized,
            "weighted_error": sum(weights[z] * ape
                                  for z, ape in realized.items()),
            "spent": float(spent),
            "allocations": dict(plan.allocations),
        }
    return outcomes


def test_ablation_sampling_budget(benchmark, report):
    outcomes = once(benchmark, run_plans)

    table = report("Ablation: budget-aware vs. uniform sampling plans "
                   "(budget ${:.2f})".format(BUDGET))
    table.row("zone", "smart polls", "uniform polls", "smart APE",
              "uniform APE", widths=(17, 12, 14, 10, 11))
    for zone_id in EX3_ZONES:
        table.row(zone_id,
                  outcomes["smart"]["allocations"][zone_id],
                  outcomes["uniform"]["allocations"][zone_id],
                  "{:.1f}".format(
                      outcomes["smart"]["realized_ape"][zone_id]),
                  "{:.1f}".format(
                      outcomes["uniform"]["realized_ape"][zone_id]),
                  widths=(17, 12, 14, 10, 11))
    table.line()
    for label in ("smart", "uniform"):
        table.row("{}: weighted error {:.1f}, spent ${:.2f}".format(
            label, outcomes[label]["weighted_error"],
            outcomes[label]["spent"]))

    smart, uniform = outcomes["smart"], outcomes["uniform"]

    # Both plans respect the budget.
    assert smart["spent"] <= BUDGET * 1.05
    assert uniform["spent"] <= BUDGET * 1.05

    # The planner shifts polls toward volatile/noisy zones...
    volatile_smart = sum(smart["allocations"][z] for z in VOLATILE_ZONES)
    volatile_uniform = sum(uniform["allocations"][z]
                           for z in VOLATILE_ZONES)
    assert volatile_smart > volatile_uniform

    # ...and achieves lower weighted realized error at equal spend.
    assert smart["weighted_error"] < uniform["weighted_error"]
