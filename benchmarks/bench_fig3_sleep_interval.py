"""Figure 3 (EX-1): sleep interval vs. unique FIs observed vs. poll cost.

Sweeps the sampling function's sleep interval across memory settings and
reports the unique FIs observed by a 1,000-request poll plus the poll's
cost, reproducing the trade-off that made 0.25 s the paper's optimum for
the 2 GB and 4 GB settings.
"""

from benchmarks.conftest import once
from repro import SkyMesh, build_sky
from repro.sampling import Poller

SLEEPS = (0.05, 0.10, 0.25, 0.50, 1.00)
MEMORIES = (1024, 2048, 4096, 10240)
SEED = 7


def sweep():
    results = {}
    for memory_mb in MEMORIES:
        for sleep_s in SLEEPS:
            # A fresh sky per cell keeps polls independent.
            cloud = build_sky(seed=SEED, aws_only=True)
            account = cloud.create_account("sweep", "aws")
            mesh = SkyMesh(cloud)
            endpoints = mesh.deploy_sampling_endpoints(
                account, "us-west-1a", count=1, sleep_s=sleep_s,
                memory_base_mb=memory_mb)
            observation = Poller(cloud, endpoints).poll()
            results[(memory_mb, sleep_s)] = (
                observation.unique_fis, float(observation.cost))
    return results


def test_fig3_sleep_interval(benchmark, report):
    results = once(benchmark, sweep)

    table = report("Figure 3: unique FIs and cost vs. sleep interval")
    table.row("memory", *["{:>14}".format("{}s".format(s)) for s in SLEEPS])
    for memory_mb in MEMORIES:
        cells = []
        for sleep_s in SLEEPS:
            fis, cost = results[(memory_mb, sleep_s)]
            cells.append("{:>6} ${:.4f}".format(fis, cost))
        table.row("{:>5}MB".format(memory_mb), *cells)

    # Longer sleeps observe at least as many unique FIs.
    for memory_mb in MEMORIES:
        fis_series = [results[(memory_mb, s)][0] for s in SLEEPS]
        assert fis_series == sorted(fis_series)

    # The paper's optimum: 0.25 s gives (near-)full coverage at 2 GB and
    # 4 GB for under two cents per poll.
    for memory_mb in (2048, 4096):
        fis, cost = results[(memory_mb, 0.25)]
        assert fis >= 950
        assert cost < 0.02

    # Shorter sleeps cut cost but lose coverage at low memory.
    fis_short, cost_short = results[(1024, 0.05)]
    fis_optimal, cost_optimal = results[(1024, 0.25)]
    assert cost_short < cost_optimal
    assert fis_short < fis_optimal

    # Longer sleeps only add cost once coverage has saturated.
    fis_long, cost_long = results[(2048, 1.00)]
    assert fis_long >= 950
    assert cost_long > results[(2048, 0.25)][1]

    # Lower memory needs longer sleeps for full coverage.
    assert results[(1024, 0.25)][0] <= results[(2048, 0.25)][0]
