"""Ablation: the recursive fan-out tree (§3.1).

Why does the sampling method invoke a branching tree instead of firing
1,000 HTTP requests from the client?  Serialized client dispatch spreads
arrivals over seconds, so early FIs finish and get reused — destroying
unique-FI coverage.  This ablation measures coverage with and without the
tree at several sleep settings.
"""

from benchmarks.conftest import once
from repro import SkyMesh, build_sky
from repro.sampling import FanoutSpec, Poller

SEED = 19
SLEEPS = (0.25, 0.5, 1.0, 2.0)


def measure(use_tree, sleep_s):
    cloud = build_sky(seed=SEED, aws_only=True)
    account = cloud.create_account("fanout", "aws")
    mesh = SkyMesh(cloud)
    endpoints = mesh.deploy_sampling_endpoints(account, "us-west-1a",
                                               count=1, sleep_s=sleep_s)
    poller = Poller(cloud, endpoints,
                    fanout=FanoutSpec(use_tree=use_tree))
    observation = poller.poll()
    return observation.unique_fis, float(observation.cost)


def sweep():
    return {
        (use_tree, sleep_s): measure(use_tree, sleep_s)
        for use_tree in (True, False)
        for sleep_s in SLEEPS
    }


def test_ablation_fanout_tree(benchmark, report):
    results = once(benchmark, sweep)

    table = report("Ablation: fan-out tree vs. serialized client dispatch")
    table.row("sleep", "tree FIs", "tree $", "no-tree FIs", "no-tree $",
              widths=(6, 9, 9, 12, 10))
    for sleep_s in SLEEPS:
        tree_fis, tree_cost = results[(True, sleep_s)]
        flat_fis, flat_cost = results[(False, sleep_s)]
        table.row("{:.2f}".format(sleep_s), tree_fis,
                  "${:.4f}".format(tree_cost), flat_fis,
                  "${:.4f}".format(flat_cost),
                  widths=(6, 9, 9, 12, 10))

    # At the paper's 0.25 s optimum, the tree achieves full coverage while
    # serialized dispatch observes only a small fraction of the FIs.
    assert results[(True, 0.25)][0] >= 950
    assert results[(False, 0.25)][0] < 250

    # Without the tree, matching the tree's coverage needs sleeps on the
    # order of the dispatch window — and costs several times more.
    assert results[(False, 2.0)][0] >= 850
    assert results[(False, 2.0)][1] > 4 * results[(True, 0.25)][1]

    # With the tree, longer sleeps only add cost.
    assert results[(True, 2.0)][1] > results[(True, 0.25)][1]
    assert results[(True, 2.0)][0] <= results[(True, 0.25)][0] * 1.05
