"""Figure 5 (EX-3): characterization error vs. FIs sampled, 11 AWS AZs.

Runs saturation campaigns in the paper's eleven zones and reports the
progressive-sampling APE curve for each, plus the poll counts needed for a
95 %-accurate characterization and the headline costs.
"""

from benchmarks.conftest import once
from repro import (
    EX3_ZONES,
    ProgressiveAnalysis,
    SamplingCampaign,
    SkyMesh,
    build_sky,
)
from repro.sampling.cost import campaign_cost_summary

SEED = 3


def run_progressive():
    cloud = build_sky(seed=SEED, aws_only=True)
    account = cloud.create_account("primary", "aws")
    mesh = SkyMesh(cloud)
    analyses = {}
    for zone_id in EX3_ZONES:
        endpoints = mesh.deploy_sampling_endpoints(account, zone_id,
                                                   count=60)
        result = SamplingCampaign(cloud, endpoints).run()
        analyses[zone_id] = ProgressiveAnalysis(result)
        cloud.clock.advance(120.0)
    return analyses


def test_fig5_progressive_sampling(benchmark, report):
    analyses = once(benchmark, run_progressive)

    table = report("Figure 5: APE vs. observed FIs (11 AWS AZs)")
    table.row("zone", "polls", "FIs", "APE@1", "APE@3", "APE@6",
              "polls->95%", "cost->95%", widths=(17, 6, 7, 7, 7, 7, 11, 9))
    polls_needed = {}
    for zone_id in EX3_ZONES:
        analysis = analyses[zone_id]
        campaign = analysis.campaign
        polls95 = analysis.polls_to_accuracy(95.0)
        polls_needed[zone_id] = polls95
        cost95 = analysis.cost_to_accuracy(95.0)

        def ape_at(k):
            if k > campaign.polls_run:
                return "-"
            return "{:.1f}".format(analysis.ape_after(k))

        table.row(zone_id, campaign.polls_run, campaign.total_fis,
                  ape_at(1), ape_at(3), ape_at(6),
                  polls95 if polls95 is not None else "-",
                  "${:.3f}".format(float(cost95)) if cost95 else "-",
                  widths=(17, 6, 7, 7, 7, 7, 11, 9))

    # Every campaign saturated its zone (the >50 % failure stop rule).
    for analysis in analyses.values():
        assert analysis.campaign.saturated

    # Zone-size spread: eu-north-1a fails after ~5k calls; eu-central-1a
    # sustains roughly ten times that.
    ratio = (analyses["eu-central-1a"].campaign.total_fis
             / analyses["eu-north-1a"].campaign.total_fis)
    assert 6 <= ratio <= 14

    # A single poll reaches low APE in most zones (paper: <=10 % for most,
    # 25 % worst case).
    first_poll_apes = [analysis.ape_after(1)
                       for analysis in analyses.values()]
    assert sorted(first_poll_apes)[len(first_poll_apes) // 2] < 15.0
    assert max(first_poll_apes) < 45.0

    # us-east-2a: 0 % error, always.
    assert analyses["us-east-2a"].ape_after(1) == 0.0

    # ~6 polls on average for 95 % accuracy (excluding the anomalous
    # hidden-hardware zone, ap-northeast-1a).
    regular = [polls for zone, polls in polls_needed.items()
               if polls is not None and zone != "ap-northeast-1a"]
    mean_polls = sum(regular) / len(regular)
    assert 2.0 <= mean_polls <= 10.0

    # The anomaly zone reveals unseen hardware late: it takes far longer.
    anomaly = polls_needed["ap-northeast-1a"]
    assert anomaly is None or anomaly > mean_polls

    # Saturating a zone costs ~$0.20 for a ~20k-slot zone.
    summary = campaign_cost_summary(analyses["us-west-1a"].campaign)
    assert 0.08 < summary["total_cost_usd"] < 0.40
    # Characterizing to 95 % costs a few cents (paper: ~$0.04).
    assert summary["cost_to_95pct_usd"] < 0.15
