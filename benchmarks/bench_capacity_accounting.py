"""Capacity-accounting microbenchmarks: the primitives under the hot paths.

``bench_simulator_throughput`` times whole request paths; this file isolates
the :class:`~repro.cloudsim.host.HostPool` accounting primitives those paths
lean on, at growing bucket populations, to pin their complexity class:

* ``occupied`` reads are O(1) — a cached counter behind a heap guard — so
  the read cost must *not* grow with the number of live buckets;
* ``expire`` is heap-driven: cost follows the number of buckets actually
  lapsing, not the number alive;
* ``claim_warm`` consults only the claiming deployment's warm index, so a
  crowd of other tenants' buckets must not slow it down.

Run with ``--benchmark-only`` for timings; the plain test run doubles as a
correctness smoke (allocations balance, claims land).
"""

import pytest

from repro.cloudsim.host import HostPool

KEEPALIVE = 300.0


def _populated_pool(buckets, deployments=25):
    """A pool holding ``buckets`` live single-slot buckets, spread over
    ``deployments`` tenants, none expiring before t=1e9."""
    pool = HostPool("bench-cpu", hosts=max(1, buckets // 8),
                    slots_per_host=16)
    for i in range(buckets):
        pool.allocate("fn-{}".format(i % deployments), 1, now=float(i),
                      duration=0.5, keepalive=1e9)
    return pool


@pytest.mark.parametrize("buckets", [100, 1000, 10000])
def test_bench_occupied_read(benchmark, buckets):
    """O(1) occupancy: read cost flat across a 100× population spread."""
    pool = _populated_pool(buckets)
    now = float(buckets + 1)
    occupied = benchmark(pool.occupied, now)
    assert occupied == buckets


@pytest.mark.parametrize("buckets", [100, 1000, 10000])
def test_bench_free_slots_read(benchmark, buckets):
    pool = _populated_pool(buckets)
    now = float(buckets + 1)
    free = benchmark(pool.free_slots, now)
    assert free == pool.capacity - buckets


def test_bench_expire_turnover(benchmark):
    """Steady-state churn: one bucket allocated and one lapsing per step —
    the per-poll pattern of a saturation campaign."""
    pool = HostPool("bench-cpu", hosts=64, slots_per_host=16)
    state = {"now": 0.0}

    def step():
        now = state["now"]
        pool.allocate("fn-churn", 4, now, duration=0.5, keepalive=KEEPALIVE)
        state["now"] = now + 400.0  # next step expires this bucket
        return pool.occupied(state["now"])

    benchmark(step)
    assert pool.occupied(state["now"] + 1000.0) == 0


@pytest.mark.parametrize("tenants", [10, 100, 1000])
def test_bench_claim_warm_crowded(benchmark, tenants):
    """Warm claims scan one deployment's index, not the whole zoo: claim
    cost must stay flat as unrelated tenants multiply."""
    pool = HostPool("bench-cpu", hosts=tenants, slots_per_host=16)
    for i in range(tenants):
        pool.allocate("fn-{}".format(i), 1, now=0.0, duration=0.5,
                      keepalive=1e9)
    state = {"now": 1.0}

    def claim():
        now = state["now"]
        state["now"] = now + 1.0
        # Claim and immediately leave it idle again for the next round.
        return pool.claim_warm("fn-0", 1, now, duration=0.5,
                               keepalive=1e9)

    claimed = benchmark(claim)
    assert claimed == 1


def test_bench_expiry_heap_rekey(benchmark):
    """Keep-alive refreshes re-key lazily; forced expiry re-keys eagerly.
    Times the mixed pattern the background process produces."""
    pool = HostPool("bench-cpu", hosts=8, slots_per_host=16)
    state = {"now": 0.0}

    def rekey():
        now = state["now"]
        bucket = pool.allocate("fn-bg", 2, now, duration=0.5,
                               keepalive=KEEPALIVE)
        bucket.expire_at = now + 900.0   # extension: lazy re-key
        bucket.expire_at = now           # forced release: eager re-key
        state["now"] = now + 1.0
        return pool.occupied(state["now"])

    occupied = benchmark(rekey)
    assert occupied == 0
