"""Table 1: real execution of the twelve workloads.

Unlike the figure benches (which exercise the simulator), this bench runs
each workload's *actual Python implementation* through the dynamic-
function runtime under pytest-benchmark timing — the measurement a user
would make before trusting the runtime models.
"""

import pytest

from repro.dynfunc import DynamicFunctionRuntime
from repro.workloads import WORKLOAD_NAMES, workload_by_name

SCALE = 0.15


@pytest.mark.parametrize("name", sorted(WORKLOAD_NAMES))
def test_table1_workload_execution(benchmark, name):
    workload = workload_by_name(name)
    runtime = DynamicFunctionRuntime()
    payload = workload.payload(args={"seed": 3, "scale": SCALE})
    # Warm the payload cache once so we time execution, not decode.
    runtime.handle(payload)

    result = benchmark(lambda: runtime.handle(payload))
    assert result.cached
    assert result.value["workload"] == name
    assert result.value["summary"]
