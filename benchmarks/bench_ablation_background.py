"""Ablation: background tenant churn and the post-saturation failure band.

With a clean, single-tenant pool our Figure 4 reproduction falls off a
cliff (0 % -> ~100 % failures in one poll).  The paper instead observed a
fluctuating 80-98 % failure band, because other tenants constantly claim
and release slots.  Attaching the :class:`BackgroundLoad` process restores
that band.
"""

from benchmarks.conftest import once
from repro import SkyMesh, build_sky
from repro.cloudsim.background import BackgroundLoad, BackgroundProfile
from repro.sampling import Poller

ZONE = "us-west-1a"
SEED = 59
POLLS = 35


def run_variant(with_background):
    cloud = build_sky(seed=SEED, aws_only=True)
    if with_background:
        profile = BackgroundProfile(base_fraction=0.12,
                                    diurnal_amplitude=0.0,
                                    noise_sigma=0.45, cadence=30.0)
        cloud.zone(ZONE).attach_background(
            BackgroundLoad(ZONE, profile=profile, seed=SEED))
    account = cloud.create_account("abl", "aws")
    mesh = SkyMesh(cloud)
    endpoints = mesh.deploy_sampling_endpoints(account, ZONE, count=POLLS)
    poller = Poller(cloud, endpoints)
    trace = []
    for _ in range(POLLS):
        observation = poller.poll()
        trace.append(observation.failure_rate)
        cloud.clock.advance(2.5)
    return trace


def run_both():
    return run_variant(False), run_variant(True)


def test_ablation_background_churn(benchmark, report):
    clean, churned = once(benchmark, run_both)

    table = report("Ablation: background tenant churn (failure per poll)")
    table.row("poll", "clean pool", "with churn", widths=(5, 11, 11))
    for index, (a, b) in enumerate(zip(clean, churned), start=1):
        table.row(index, "{:.0%}".format(a), "{:.0%}".format(b),
                  widths=(5, 11, 11))

    clean_saturated = [f for f in clean if f > 0.5]
    churned_saturated = [f for f in churned if f > 0.5]
    assert clean_saturated and churned_saturated

    # Clean pool: a hard wall — once saturated, essentially everything
    # fails.
    assert min(clean_saturated[1:]) > 0.98

    # With churn: the paper's band — saturated polls keep landing a
    # fluctuating handful of requests on slots other tenants release.
    partial = [f for f in churned_saturated if f < 0.995]
    assert partial, "churn should yield partial successes after saturation"
    assert min(churned_saturated) > 0.5

    # Churn consumes capacity, so saturation arrives earlier.
    first_clean = next(i for i, f in enumerate(clean) if f > 0.5)
    first_churned = next(i for i, f in enumerate(churned) if f > 0.5)
    assert first_churned <= first_clean
