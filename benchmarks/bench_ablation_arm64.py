"""Ablation: x86_64 vs. ARM64 (Graviton) price-performance.

The sky mesh deploys both architectures (§3.3); ARM64 bills ~20 % less
per GB-second but runs the suite's workloads somewhat slower (the
x86/ARM studies the authors cite).  This ablation compares the effective
cost per invocation across architectures per workload.
"""

from benchmarks.conftest import once
from repro import SkyMesh, WorkloadRunner, build_sky
from repro.dynfunc import UniversalDynamicFunctionHandler
from repro.workloads import all_workloads, resolve_runtime_model

SEED = 71
ZONE = "us-east-1a"
BURST = 400


def run_archs():
    results = {}
    for arch in ("x86_64", "arm64"):
        cloud = build_sky(seed=SEED, aws_only=True)
        account = cloud.create_account("abl", "aws")
        mesh = SkyMesh(cloud)
        zone = cloud.zone(ZONE)
        if arch == "arm64":
            # The ARM fleet: Graviton hosts back the arm64 deployments.
            zone.rebalance({"graviton2": 1.0})
        deployment = cloud.deploy(
            account, ZONE, "dynamic", 2048, arch=arch,
            handler=UniversalDynamicFunctionHandler(resolve_runtime_model))
        mesh.register(deployment)
        runner = WorkloadRunner(cloud)
        for workload in all_workloads():
            burst = runner.run_batched_burst(deployment, workload, BURST)
            results[(workload.name, arch)] = float(
                burst.cost_per_invocation)
            cloud.clock.advance(900.0)
    return results


def test_ablation_arm64(benchmark, report):
    results = once(benchmark, run_archs)

    table = report("Ablation: x86_64 vs. arm64 cost per invocation")
    table.row("workload", "x86 $", "arm $", "arm/x86",
              widths=(24, 10, 10, 8))
    ratios = {}
    for workload in sorted({name for name, _ in results}):
        x86 = results[(workload, "x86_64")]
        arm = results[(workload, "arm64")]
        ratios[workload] = arm / x86
        table.row(workload, "{:.6f}".format(x86), "{:.6f}".format(arm),
                  "{:.2f}".format(ratios[workload]),
                  widths=(24, 10, 10, 8))

    # ARM64 bills 20 % less per GB-second; Graviton runs ~5 % slower than
    # the x86 baseline mix, so most workloads come out cheaper on ARM.
    cheaper_on_arm = [w for w, ratio in ratios.items() if ratio < 1.0]
    assert len(cheaper_on_arm) >= 8

    # But the ratio never collapses below the billing discount alone.
    assert all(ratio > 0.6 for ratio in ratios.values())
