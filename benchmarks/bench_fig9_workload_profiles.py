"""Figure 9 + Table 1 (EX-5): per-CPU workload performance profiling.

Profiles all twelve workloads in a heterogeneous zone (us-west-1b hosts
all four Lambda CPUs) and reports mean runtime per CPU normalized to the
2.5 GHz Xeon — the measurement behind the paper's routing decisions.
"""

from benchmarks.conftest import once
from repro import SkyMesh, WorkloadRunner, build_sky
from repro.dynfunc import UniversalDynamicFunctionHandler
from repro.workloads import all_workloads, resolve_runtime_model

ZONE = "us-west-1b"
REPETITIONS = 3000
SEED = 53
CPU_ORDER = ("xeon-2.5", "xeon-2.9", "xeon-3.0", "amd-epyc")


def profile_all():
    cloud = build_sky(seed=SEED, aws_only=True)
    account = cloud.create_account("profiler", "aws")
    mesh = SkyMesh(cloud)
    deployment = cloud.deploy(
        account, ZONE, "dynamic", 2048,
        handler=UniversalDynamicFunctionHandler(resolve_runtime_model))
    mesh.register(deployment)
    runner = WorkloadRunner(cloud)
    return runner.profile_many(deployment, all_workloads(), REPETITIONS)


def test_fig9_workload_profiles(benchmark, report):
    profiles = once(benchmark, profile_all)

    table = report(
        "Figure 9: runtime per CPU normalized to the 2.5 GHz Xeon")
    table.row("workload", *CPU_ORDER, widths=(24, 10, 10, 10, 10))
    normalized = {}
    for name in sorted(profiles):
        norm = profiles[name].normalized_to("xeon-2.5")
        normalized[name] = norm
        table.row(name,
                  *["{:.3f}".format(norm.get(cpu, float("nan")))
                    for cpu in CPU_ORDER],
                  widths=(24, 10, 10, 10, 10))

    assert len(normalized) == 12

    for name, norm in normalized.items():
        # All four CPUs observed at 3,000 repetitions.
        assert set(CPU_ORDER) <= set(norm)
        # The 3.0 GHz Xeon is the consistent winner: 5-15 % faster.
        assert 0.83 <= norm["xeon-3.0"] <= 0.98, name
        # The 2.9 GHz part runs 5-30 % slower than the baseline.
        assert 1.02 <= norm["xeon-2.9"] <= 1.35, name

    # EPYC: up to ~50 % slower on compute-bound functions...
    assert normalized["logistic_regression"]["amd-epyc"] > 1.4
    assert normalized["math_service"]["amd-epyc"] > 1.35

    # ...but the paper's exceptions hold: disk_writer is *faster* on EPYC,
    # and the other I/O-heavy deviators stay near parity.
    assert normalized["disk_writer"]["amd-epyc"] < 1.0
    assert normalized["disk_write_and_process"]["amd-epyc"] < 1.1
    assert normalized["sha1_hash"]["amd-epyc"] < 1.1

    # A performance hierarchy exists: for compute-bound functions,
    # 3.0 GHz < 2.5 GHz < 2.9 GHz < EPYC runtime.
    for name in ("graph_mst", "pagerank", "matrix_multiply", "zipper"):
        norm = normalized[name]
        assert (norm["xeon-3.0"] < 1.0 < norm["xeon-2.9"]
                < norm["amd-epyc"]), name
