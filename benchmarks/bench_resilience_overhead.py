"""Resilience overhead: the hardened path must be ~free without faults.

``route_resilient`` adds breaker gates, health bookkeeping, and hedge
threshold checks to every request.  With no faults installed (the
``NULL_INJECTOR`` default) and breakers closed, that machinery must cost
within 5 % of the plain ``route`` path — same contract as the disabled
observability bus.  Run with ``pytest benchmarks/bench_resilience_overhead.py``
for the overhead assertion, or ``--benchmark-only`` for timed variants.
"""

import gc
import time

import pytest

from repro import SkyMesh, build_sky
from repro.core import (
    BaselinePolicy,
    CharacterizationStore,
    ResilienceConfig,
    SmartRouter,
    ZoneHealthTracker,
)
from repro.dynfunc import UniversalDynamicFunctionHandler
from repro.sampling import CharacterizationBuilder
from repro.workloads import resolve_runtime_model, workload_by_name

ZONE = "eu-central-1a"
BURST = 300


def make_router(resilient=False):
    cloud = build_sky(seed=421, aws_only=True)
    account = cloud.create_account("bench", "aws")
    mesh = SkyMesh(cloud)
    mesh.register(cloud.deploy(
        account, ZONE, "dynamic", 2048,
        handler=UniversalDynamicFunctionHandler(resolve_runtime_model)))
    store = CharacterizationStore()
    builder = CharacterizationBuilder(ZONE)
    builder.add_poll({"xeon-2.5": 600, "xeon-2.9": 300, "xeon-3.0": 100})
    store.put(builder.snapshot())
    health = ZoneHealthTracker() if resilient else None
    resilience = ResilienceConfig() if resilient else None
    return cloud, SmartRouter(cloud, mesh, store, BaselinePolicy(ZONE),
                              workload_by_name("sha1_hash"), [ZONE],
                              health=health, resilience=resilience)


def run_plain(cloud, router):
    requests = [router.route() for _ in range(BURST)]
    cloud.clock.advance(900.0)  # let the burst's FIs expire between rounds
    return requests


def run_resilient(cloud, router):
    outcomes = [router.route_resilient() for _ in range(BURST)]
    cloud.clock.advance(900.0)
    return outcomes


def test_route_plain(benchmark):
    """The unhardened baseline path."""
    cloud, router = make_router()
    requests = benchmark(lambda: run_plain(cloud, router))
    assert len(requests) == BURST


def test_route_resilient_no_faults(benchmark):
    """Breakers + health + backoff machinery active, zero faults."""
    cloud, router = make_router(resilient=True)
    outcomes = benchmark(lambda: run_resilient(cloud, router))
    assert len(outcomes) == BURST
    assert all(o.attempts == 1 for o in outcomes)


def _paired_ratio(fn_a, fn_b, rounds=17, warmup=2):
    """Median of per-round ``time(fn_b) / time(fn_a)`` ratios.

    Each round times the two functions back to back — alternating which
    goes first — so slow machine phases (frequency scaling, background
    load) hit both sides of a ratio equally instead of biasing whichever
    side ran second; the median then discards rounds a scheduler hiccup
    landed in.  gc is paused so a collection doesn't fall inside one
    side's timing window.  Returns ``(median_ratio, best_a, best_b)``.
    """
    for _ in range(warmup):
        fn_a()
        fn_b()
    ratios = []
    best_a = best_b = float("inf")
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for round_index in range(rounds):
            first, second = ((fn_a, fn_b) if round_index % 2 == 0
                             else (fn_b, fn_a))
            start = time.perf_counter()
            first()
            elapsed_first = time.perf_counter() - start
            start = time.perf_counter()
            second()
            elapsed_second = time.perf_counter() - start
            if round_index % 2 == 0:
                elapsed_a, elapsed_b = elapsed_first, elapsed_second
            else:
                elapsed_a, elapsed_b = elapsed_second, elapsed_first
            ratios.append(elapsed_b / elapsed_a)
            best_a = min(best_a, elapsed_a)
            best_b = min(best_b, elapsed_b)
    finally:
        if was_enabled:
            gc.enable()
    ratios.sort()
    return ratios[len(ratios) // 2], best_a, best_b


def test_resilient_overhead_under_5pct():
    """The acceptance gate: route_resilient with no faults installed runs
    within 5 % of plain route (median of interleaved round ratios squeezes
    scheduler noise and machine drift out of the comparison)."""
    cloud_base, router_base = make_router()
    cloud_res, router_res = make_router(resilient=True)

    ratio, baseline, hardened = _paired_ratio(
        lambda: run_plain(cloud_base, router_base),
        lambda: run_resilient(cloud_res, router_res))

    overhead = ratio - 1.0
    assert overhead < 0.05, (
        "resilient-path overhead {:.1%} exceeds 5% "
        "(best rounds: baseline {:.4f}s, hardened {:.4f}s)".format(
            overhead, baseline, hardened))


if __name__ == "__main__":
    cloud_base, router_base = make_router()
    cloud_res, router_res = make_router(resilient=True)
    ratio, baseline, hardened = _paired_ratio(
        lambda: run_plain(cloud_base, router_base),
        lambda: run_resilient(cloud_res, router_res))
    print("route plain (best): {:.4f}s".format(baseline))
    print("route resilient, no faults (best): {:.4f}s".format(hardened))
    print("median per-round overhead: {:+.1%}".format(ratio - 1.0))
