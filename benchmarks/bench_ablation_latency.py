"""Ablation: the cost-vs-latency trade-off of the routing strategies (§4.6).

"The cost improvements we have demonstrated come with an inherent
trade-off in added latency."  This ablation quantifies both sides for the
zipper workload in us-west-1b: billed cost per 1,000 invocations and the
client-observed latency distribution, under the baseline, retry-slow,
focus-fastest, and a *distant-region* variant (cheaper CPUs, longer RTT).
"""

from benchmarks.conftest import once
from repro import (
    RetryPolicy,
    SkyMesh,
    UniversalDynamicFunctionHandler,
    build_sky,
    workload_by_name,
)
from repro.cloudsim.network import CLIENT_LOCATIONS
from repro.core.dispatcher import BurstDispatcher
from repro.workloads import resolve_runtime_model

SEED = 73
BURST = 1000
CLIENT = CLIENT_LOCATIONS["seattle"]


def run_strategies():
    cloud = build_sky(seed=SEED, aws_only=True)
    account = cloud.create_account("abl", "aws")
    mesh = SkyMesh(cloud)
    handler = UniversalDynamicFunctionHandler(resolve_runtime_model)
    near = cloud.deploy(account, "us-west-1b", "dynamic", 2048,
                        handler=handler)
    far = cloud.deploy(account, "sa-east-1a", "dynamic", 2048,
                       handler=handler)
    for deployment in (near, far):
        mesh.register(deployment)
    workload = workload_by_name("zipper")
    factors = workload.cpu_factors()
    dispatcher = BurstDispatcher(cloud, concurrency=200)

    cpus_near = cloud.zone("us-west-1b").cpu_keys()
    results = {}
    results["baseline"] = dispatcher.dispatch(near, workload, BURST,
                                              client=CLIENT)
    cloud.clock.advance(900.0)
    results["retry_slow"] = dispatcher.dispatch(
        near, workload, BURST,
        retry_policy=RetryPolicy.retry_slow(cpus_near, factors),
        client=CLIENT)
    cloud.clock.advance(900.0)
    results["focus_fastest"] = dispatcher.dispatch(
        near, workload, BURST,
        retry_policy=RetryPolicy.focus_fastest(cpus_near, factors),
        client=CLIENT)
    cloud.clock.advance(900.0)
    results["distant_region"] = dispatcher.dispatch(far, workload, BURST,
                                                    client=CLIENT)
    rtts = {
        "near": cloud.network.round_trip(
            CLIENT, cloud.region_of_zone("us-west-1b").geo),
        "far": cloud.network.round_trip(
            CLIENT, cloud.region_of_zone("sa-east-1a").geo),
    }
    return results, rtts


def test_ablation_cost_latency_tradeoff(benchmark, report):
    results, rtts = once(benchmark, run_strategies)

    table = report("Ablation: cost vs. client latency per strategy")
    table.row("strategy", "cost $", "p50 (s)", "p95 (s)", "retries",
              widths=(15, 9, 8, 8, 8))
    for name in ("baseline", "retry_slow", "focus_fastest",
                 "distant_region"):
        outcome = results[name]
        table.row(name, "{:.3f}".format(float(outcome.total_cost)),
                  "{:.2f}".format(outcome.latency.p50),
                  "{:.2f}".format(outcome.latency.p95),
                  outcome.retries, widths=(15, 9, 8, 8, 8))

    baseline = results["baseline"]
    focus = results["focus_fastest"]
    slow = results["retry_slow"]
    distant = results["distant_region"]

    # Retry methods cut cost...
    assert float(focus.total_cost) < float(baseline.total_cost)
    assert float(slow.total_cost) < float(baseline.total_cost)
    # ...and retried requests visibly stack extra rounds (RTT + hold) on
    # the far tail relative to the strategy's own median.
    assert focus.latency.max - focus.latency.p50 > 0.25
    assert focus.retries > BURST  # well above one retry per request
    # A finding the paper's framing understates: when per-CPU runtime
    # spread dominates (a long workload on a heterogeneous zone), pinning
    # the fast CPU *narrows* the tail — the holds cost less latency than
    # the slow CPUs they avoid.
    assert focus.latency.p95 < baseline.latency.p95

    table.line()
    table.row("RTT Seattle->us-west-1b: {:.0f} ms, ->sa-east-1a: "
              "{:.0f} ms".format(rtts["near"] * 1000, rtts["far"] * 1000))

    # The distant region adds real network latency to every request
    # (Seattle -> São Paulo is an order of magnitude more RTT)...
    assert rtts["far"] > rtts["near"] * 4
    # ...but none of it is billed: with its better CPU mix the distant
    # zone is *cheaper* despite being ~11,000 km away — exactly the
    # asymmetry regional routing exploits.
    assert float(distant.total_cost) < float(baseline.total_cost)
