"""Figure 2 (EX-2): global CPU characterization of 41 regions.

Regenerates the per-region CPU distribution stacked-bar data for AWS
Lambda, IBM Code Engine, and Digital Ocean Functions, using the sampling
technique in each region's first availability zone.
"""

from benchmarks.conftest import once
from repro import SamplingCampaign, SkyMesh, build_sky
from repro.cloudsim.catalog import catalog_region_names

POLLS_PER_REGION = 6
SEED = 2024


def characterize_globe():
    cloud = build_sky(seed=SEED)
    accounts = {name: cloud.create_account("acct-" + name, name)
                for name in ("aws", "ibm", "do")}
    mesh = SkyMesh(cloud)
    profiles = {}
    for region_name in cloud.region_names():
        region = cloud.region(region_name)
        zone_id = region.zone_ids()[0]
        n_requests = min(1000, region.provider.concurrency_quota)
        endpoints = mesh.deploy_sampling_endpoints(
            accounts[region.provider.name], zone_id,
            count=POLLS_PER_REGION,
            memory_base_mb=region.provider.memory_options_mb[-1] - 128)
        campaign = SamplingCampaign(cloud, endpoints,
                                    n_requests=n_requests,
                                    max_polls=POLLS_PER_REGION)
        profiles[(region.provider.name, region_name, zone_id)] = (
            campaign.run().ground_truth())
        cloud.clock.advance(60.0)
    return profiles


def test_fig2_global_characterization(benchmark, report):
    profiles = once(benchmark, characterize_globe)

    table = report("Figure 2: CPU distributions across 41 regions")
    table.row("provider", "region", "cpu shares", widths=(9, 18, 0))
    for (provider, region, _), profile in sorted(profiles.items()):
        shares = "  ".join(
            "{}={:.0%}".format(cpu, profile.share(cpu))
            for cpu in profile.cpu_keys())
        table.row(provider, region, shares, widths=(9, 18, 0))

    aws = {region: profile
           for (provider, region, _), profile in profiles.items()
           if provider == "aws"}

    # Paper observation (1): four distinct CPU types across AWS.
    observed = set()
    for profile in aws.values():
        observed.update(profile.cpu_keys())
    assert observed <= {"xeon-2.5", "xeon-2.9", "xeon-3.0", "amd-epyc"}
    assert {"xeon-2.5", "xeon-2.9", "xeon-3.0", "amd-epyc"} <= observed

    # Observation (3): every AWS region hosts the 2.5 GHz Xeon.
    for region, profile in aws.items():
        assert profile.share("xeon-2.5") > 0, region

    # Observation (4): af-south-1 is the region without the 3.0 GHz part.
    assert aws["af-south-1"].share("xeon-3.0") == 0.0

    # us-west-2: the 3.0 GHz part dominates.
    assert aws["us-west-2"].dominant_cpu() == "xeon-3.0"

    # Observation (2): EPYC is rare overall and most visible in
    # il-central-1.
    epyc_shares = {region: profile.share("amd-epyc")
                   for region, profile in aws.items()}
    assert epyc_shares["il-central-1"] == max(epyc_shares.values())

    # IBM and DO: near-homogeneous zones (no exploitable heterogeneity).
    for (provider, region, _), profile in profiles.items():
        if provider in ("ibm", "do"):
            assert max(profile.shares().values()) >= 0.8, region

    assert len(profiles) == len(catalog_region_names())
    table.line()
    table.line("regions characterized: {}".format(len(profiles)))
