"""Ablation: passive characterization (§4.6 future work).

"To completely eliminate the overhead of polling, hardware
characterizations can be constructed passively as part of the normal
function execution."  The store supports exactly that: every routed
invocation's observed CPU feeds the zone's passive profile.  This ablation
measures how accurate the polling-free profile gets as ordinary workload
traffic accumulates, and what the equivalent active polling would cost.
"""

from benchmarks.conftest import once
from repro import (
    BaselinePolicy,
    CharacterizationStore,
    SkyMesh,
    SmartRouter,
    UniversalDynamicFunctionHandler,
    build_sky,
    workload_by_name,
)
from repro.workloads import resolve_runtime_model

ZONE = "us-west-1b"
SEED = 67
CHECKPOINTS = (50, 200, 800)


def run_passive():
    cloud = build_sky(seed=SEED, aws_only=True)
    account = cloud.create_account("abl", "aws")
    mesh = SkyMesh(cloud)
    mesh.register(cloud.deploy(
        account, ZONE, "dynamic", 2048,
        handler=UniversalDynamicFunctionHandler(resolve_runtime_model)))
    store = CharacterizationStore()
    router = SmartRouter(cloud, mesh, store, BaselinePolicy(ZONE),
                         workload_by_name("sha1_hash"), [ZONE],
                         passive=True)
    truth = cloud.zone(ZONE).cpu_slot_shares()
    apes = {}
    routed = 0
    for checkpoint in CHECKPOINTS:
        while routed < checkpoint:
            router.route(router.policy.decide(None))
            routed += 1
            if routed % 100 == 0:
                cloud.clock.advance(30.0)
        apes[checkpoint] = store.get(ZONE).ape_to(truth)
    # Equivalent active-polling cost for the same number of observations:
    # one poll = 1,000 requests at the 2 GB sampling setting.
    from repro.cloudsim.billing import AWS_LAMBDA_BILLING
    poll_cost = float(AWS_LAMBDA_BILLING.bill(2048, 0.251,
                                              requests=1000).total)
    return apes, poll_cost


def test_ablation_passive_characterization(benchmark, report):
    apes, poll_cost = once(benchmark, run_passive)

    table = report("Ablation: passive (polling-free) characterization")
    table.row("workload invocations", "APE vs truth", widths=(21, 0))
    for checkpoint in CHECKPOINTS:
        table.row(checkpoint, "{:.1f}%".format(apes[checkpoint]),
                  widths=(21, 0))
    table.line()
    table.row("equivalent active poll cost: ${:.4f}/1000 obs "
              "(passive: $0 extra)".format(poll_cost))

    # Passive profiles converge as traffic accumulates.
    assert apes[800] < apes[50] + 1.0
    assert apes[800] < 12.0

    # And they cost nothing beyond the workload invocations themselves,
    # versus ~$0.009 per thousand dedicated sampling requests.
    assert poll_cost > 0.005
