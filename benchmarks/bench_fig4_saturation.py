"""Figure 4 (EX-1): observed FIs and failures across sequential polls.

Runs polls back-to-back against us-west-1a until far past the failure
point, from a primary account; once the primary saturates the zone, a
fully independent secondary account issues its own polls and fails
immediately — the paper's evidence that saturation is zone-pool
exhaustion, not per-account rate limiting.
"""

from benchmarks.conftest import once
from repro import SkyMesh, build_sky
from repro.sampling import Poller

SEED = 13
ZONE = "us-west-1a"
EXTRA_POLLS_PAST_FAILURE = 5


def run_saturation():
    cloud = build_sky(seed=SEED, aws_only=True)
    primary = cloud.create_account("primary", "aws")
    secondary = cloud.create_account("secondary", "aws")
    mesh = SkyMesh(cloud)

    endpoints = mesh.deploy_sampling_endpoints(primary, ZONE, count=60)
    poller = Poller(cloud, endpoints)
    trace = []
    failures_seen = 0
    while failures_seen < EXTRA_POLLS_PAST_FAILURE and trace is not None:
        observation = poller.poll()
        trace.append((observation.unique_fis, observation.failure_rate))
        if observation.failure_rate > 0.5:
            failures_seen += 1
        cloud.clock.advance(2.5)
        if len(trace) >= 60:
            break

    # The independent second account polls right after exhaustion.
    endpoints_b = mesh.deploy_sampling_endpoints(secondary, ZONE, count=3,
                                                 memory_base_mb=4096)
    poller_b = Poller(cloud, endpoints_b)
    second_account_trace = []
    for _ in range(3):
        observation = poller_b.poll()
        second_account_trace.append((observation.unique_fis,
                                     observation.failure_rate))
        cloud.clock.advance(2.5)

    capacity = cloud.zone(ZONE).capacity
    return trace, second_account_trace, capacity


def test_fig4_saturation(benchmark, report):
    trace, second_trace, capacity = once(benchmark, run_saturation)

    table = report("Figure 4: FIs observed and failure rate per poll")
    table.row("poll", "new FIs", "failure", widths=(5, 8, 8))
    for index, (fis, failure_rate) in enumerate(trace, start=1):
        table.row(index, fis, "{:.0%}".format(failure_rate),
                  widths=(5, 8, 8))
    table.line()
    table.row("2nd account polls (after exhaustion):")
    for index, (fis, failure_rate) in enumerate(second_trace, start=1):
        table.row(index, fis, "{:.0%}".format(failure_rate),
                  widths=(5, 8, 8))

    # Early polls create ~a full burst of new FIs each.
    early = trace[:5]
    assert all(fis >= 900 for fis, _ in early)
    assert all(failure < 0.1 for _, failure in early)

    # Saturation: cumulative FIs approach the provisioned pool, a clear
    # threshold appears, and failures escalate dramatically (80-98 %).
    total_fis = sum(fis for fis, _ in trace)
    assert total_fis >= capacity * 0.85
    saturated_polls = [failure for _, failure in trace if failure > 0.5]
    assert saturated_polls
    assert max(saturated_polls) > 0.8

    # The paper's threshold: ~20,000-30,000 FIs before degradation in this
    # zone class.
    fis_before_failure = 0
    for fis, failure in trace:
        if failure > 0.5:
            break
        fis_before_failure += fis
    assert 14000 <= fis_before_failure <= 32000

    # The second account fails overwhelmingly on its very first poll.
    assert second_trace[0][1] > 0.9
