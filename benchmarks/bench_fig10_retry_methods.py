"""Figure 10 (EX-5): the zipper function under the two retry methods.

Replays the two-week protocol in us-west-1b: daily characterizations, then
1,000-invocation bursts under the baseline, *retry slow* (ban the two
slowest CPUs), and *focus fastest* (ban all but the 3.0 GHz Xeon).

Paper numbers: focus fastest saved 16.5 % cumulatively (best day 18.5 %,
retrying >50 % of invocations); retry slow saved a steady 10.1 %.
"""

from benchmarks.conftest import once
from repro import (
    BaselinePolicy,
    CharacterizationStore,
    RetryRoutingPolicy,
    RoutingStudy,
    SkyMesh,
    UniversalDynamicFunctionHandler,
    build_sky,
    workload_by_name,
)
from repro.workloads import resolve_runtime_model

ZONE = "us-west-1b"
SEED = 5
DAYS = 14
BURST = 1000


def run_retry_study():
    cloud = build_sky(seed=SEED, aws_only=True)
    account = cloud.create_account("study", "aws")
    mesh = SkyMesh(cloud)
    endpoints = {ZONE: mesh.deploy_sampling_endpoints(account, ZONE,
                                                      count=10)}
    mesh.register(cloud.deploy(
        account, ZONE, "dynamic", 2048,
        handler=UniversalDynamicFunctionHandler(resolve_runtime_model)))
    store = CharacterizationStore()
    study = RoutingStudy(cloud, mesh, store, workload_by_name("zipper"),
                         [ZONE], endpoints, days=DAYS, burst_size=BURST,
                         polls_per_day=6)
    return study.run([
        BaselinePolicy(ZONE),
        RetryRoutingPolicy(ZONE, "retry_slow"),
        RetryRoutingPolicy(ZONE, "focus_fastest"),
    ])


def test_fig10_retry_methods(benchmark, report):
    result = once(benchmark, run_retry_study)
    summary = result.savings_summary()

    table = report("Figure 10: zipper daily cost under retry methods")
    table.row("day", "baseline", "retry_slow", "focus_fastest",
              widths=(4, 10, 11, 14))
    for day in range(DAYS):
        table.row(day + 1,
                  "${:.3f}".format(result.daily_costs["baseline"][day]),
                  "${:.3f}".format(result.daily_costs["retry_slow"][day]),
                  "${:.3f}".format(
                      result.daily_costs["focus_fastest"][day]),
                  widths=(4, 10, 11, 14))
    table.line()
    for name in ("retry_slow", "focus_fastest"):
        table.row("{}: cumulative {:.1f}%  max-day {:.1f}%".format(
            name, summary[name]["cumulative_pct"],
            summary[name]["max_daily_pct"]))
    table.row("focus_fastest retry fraction: {:.0%}".format(
        result.retry_fraction("focus_fastest", BURST)))

    # Shape targets (paper: 10.1 % and 16.5 % cumulative).
    assert 4.0 < summary["retry_slow"]["cumulative_pct"] < 22.0
    assert 8.0 < summary["focus_fastest"]["cumulative_pct"] < 26.0

    # Best single-day savings near the paper's 18.5 %.
    assert 10.0 < summary["focus_fastest"]["max_daily_pct"] < 35.0

    # Aggressive retrying: more than 50 % of invocations re-issued.
    assert result.retry_fraction("focus_fastest", BURST) > 0.5
    # The conservative variant retries far less.
    assert (result.retry_fraction("retry_slow", BURST)
            < result.retry_fraction("focus_fastest", BURST))

    # Both methods save on most days (the paper's "consistent reduction").
    from repro.core.metrics import daily_savings_pct
    slow_days = daily_savings_pct(result.daily_costs["baseline"],
                                  result.daily_costs["retry_slow"])
    assert sum(1 for s in slow_days if s > 0) >= DAYS * 0.7
