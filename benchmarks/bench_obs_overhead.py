"""Observability overhead: the disabled bus must be ~free.

The event bus is opt-in per Cloud/SkyController; when it is absent (the
``NULL_BUS`` default) or attached-but-paused, every emission site pays a
single attribute check.  This bench pins that contract: ``route_burst``
with the bus disabled must run within 5 % of the uninstrumented baseline.
Run with ``pytest benchmarks/bench_obs_overhead.py --benchmark-only`` for
the timed variants, or plainly for the overhead assertion.
"""

import time

import pytest

from repro import Observability, SkyMesh, build_sky
from repro.core import BaselinePolicy, CharacterizationStore, SmartRouter
from repro.dynfunc import UniversalDynamicFunctionHandler
from repro.sampling import CharacterizationBuilder
from repro.workloads import resolve_runtime_model, workload_by_name

ZONE = "eu-central-1a"
BURST = 300


def make_router(obs=None):
    cloud = build_sky(seed=421, aws_only=True)
    if obs is not None:
        obs.install(cloud)
    account = cloud.create_account("bench", "aws")
    mesh = SkyMesh(cloud)
    mesh.register(cloud.deploy(
        account, ZONE, "dynamic", 2048,
        handler=UniversalDynamicFunctionHandler(resolve_runtime_model)))
    store = CharacterizationStore()
    builder = CharacterizationBuilder(ZONE)
    builder.add_poll({"xeon-2.5": 600, "xeon-2.9": 300, "xeon-3.0": 100})
    store.put(builder.snapshot())
    return cloud, SmartRouter(cloud, mesh, store, BaselinePolicy(ZONE),
                              workload_by_name("sha1_hash"), [ZONE],
                              obs=obs)


def run_burst(cloud, router):
    requests = router.route_burst(BURST)
    cloud.clock.advance(900.0)  # let the burst's FIs expire between rounds
    return requests


def test_route_burst_baseline(benchmark):
    """No observability anywhere (the NULL_BUS default)."""
    cloud, router = make_router()
    requests = benchmark(lambda: run_burst(cloud, router))
    assert len(requests) == BURST


def test_route_burst_bus_disabled(benchmark):
    """Bus attached through every zone and pool, but paused."""
    obs = Observability()
    obs.disable()
    cloud, router = make_router(obs)
    requests = benchmark(lambda: run_burst(cloud, router))
    assert len(requests) == BURST
    assert len(obs.recorder) == 0


def test_route_burst_bus_enabled(benchmark):
    """Full collection: events, metrics bridge, and per-request traces."""
    obs = Observability()
    cloud, router = make_router(obs)
    requests = benchmark(lambda: run_burst(cloud, router))
    assert len(requests) == BURST
    assert obs.registry.get("invocations_total", zone=ZONE,
                            cpu=requests[0].cpu_key) is not None


def _best_of(fn, rounds, warmup=2):
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_bus_overhead_under_5pct():
    """The acceptance gate: disabled-bus route_burst within 5 % of
    baseline (best-of-rounds to squeeze out scheduler noise)."""
    cloud_base, router_base = make_router()
    obs = Observability()
    obs.disable()
    cloud_off, router_off = make_router(obs)

    baseline = _best_of(lambda: run_burst(cloud_base, router_base),
                        rounds=7)
    disabled = _best_of(lambda: run_burst(cloud_off, router_off), rounds=7)

    overhead = disabled / baseline - 1.0
    assert overhead < 0.05, (
        "disabled-bus overhead {:.1%} exceeds 5% "
        "(baseline {:.4f}s, disabled {:.4f}s)".format(
            overhead, baseline, disabled))


if __name__ == "__main__":
    cloud, router = make_router()
    print("route_burst baseline: {:.4f}s".format(
        _best_of(lambda: run_burst(cloud, router), rounds=5)))
    obs = Observability()
    obs.disable()
    cloud, router = make_router(obs)
    print("route_burst bus disabled: {:.4f}s".format(
        _best_of(lambda: run_burst(cloud, router), rounds=5)))
    obs = Observability()
    cloud, router = make_router(obs)
    print("route_burst bus enabled: {:.4f}s".format(
        _best_of(lambda: run_burst(cloud, router), rounds=5)))
