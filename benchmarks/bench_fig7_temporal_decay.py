"""Figure 7 (EX-4): characterization accuracy degradation over time.

Uses each zone's day-1 ground truth as the reference and tracks the APE of
the next thirteen days' characterizations against it: volatile zones
(ca-central-1a, us-west-1a, us-west-1b) blow past 20 % quickly while the
stable pair (sa-east-1a, eu-north-1a) stays low.
"""

from benchmarks.conftest import once
from repro import DailyCampaignSeries, EX4_ZONES, SkyMesh, build_sky

SEED = 29
DAYS = 14
VOLATILE = ("ca-central-1a", "us-west-1a", "us-west-1b")
STABLE = ("sa-east-1a", "eu-north-1a")


def run_decay():
    cloud = build_sky(seed=SEED, aws_only=True)
    account = cloud.create_account("primary", "aws")
    mesh = SkyMesh(cloud)
    curves = {}
    for zone_id in EX4_ZONES:
        endpoints = mesh.deploy_sampling_endpoints(account, zone_id,
                                                   count=60)
        series = DailyCampaignSeries(cloud, endpoints, days=DAYS)
        series.run()
        curves[zone_id] = dict(series.decay_curve())
        cloud.clock.advance(600.0)
    return curves


def test_fig7_temporal_decay(benchmark, report):
    curves = once(benchmark, run_decay)

    table = report("Figure 7: APE vs. day-1 profile (two weeks)")
    days = list(range(2, DAYS + 1))
    table.row("zone", *["d{}".format(d) for d in days],
              widths=(15,) + (6,) * len(days))
    for zone_id in EX4_ZONES:
        table.row(zone_id,
                  *["{:.0f}".format(curves[zone_id][d]) for d in days],
                  widths=(15,) + (6,) * len(days))

    # Volatile zones: substantial drift — every one leaves the stable
    # band, and at least one shows the paper's 20-50 % excursions early.
    for zone_id in VOLATILE:
        curve = curves[zone_id]
        assert max(curve.values()) > 15.0, zone_id
        assert max(curve[2], curve[3]) > 5.0, zone_id
    assert max(max(curves[z].values()) for z in VOLATILE) > 30.0

    # Stable zones: hold near the day-1 profile for the full two weeks
    # (paper: at or below ~10 %).
    for zone_id in STABLE:
        assert max(curves[zone_id].values()) < 15.0, zone_id

    # The volatile class drifts strictly more than the stable class.
    worst_stable = max(max(curves[z].values()) for z in STABLE)
    best_volatile = max(max(curves[z].values()) for z in VOLATILE)
    assert best_volatile > worst_stable
