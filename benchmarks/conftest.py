"""Benchmark fixtures and the table reporter.

Every benchmark regenerates one of the paper's figures/tables and prints
the corresponding rows so that ``pytest benchmarks/ --benchmark-only``
produces a readable report (captured output is bypassed on purpose —
the tables are the point of the harness).
"""

import sys

import pytest


class TableReporter(object):
    """Prints experiment tables straight to the terminal."""

    def __init__(self, title):
        self.title = title
        self._lines = []

    def line(self, text=""):
        self._lines.append(text)
        return self

    def row(self, *columns, **kwargs):
        widths = kwargs.get("widths")
        if widths:
            cells = [str(c).ljust(w) for c, w in zip(columns, widths)]
        else:
            cells = [str(c) for c in columns]
        return self.line("  ".join(cells))

    def flush(self):
        out = sys.__stdout__
        out.write("\n=== {} ===\n".format(self.title))
        for line in self._lines:
            out.write(line + "\n")
        out.flush()
        self._lines = []


@pytest.fixture
def report(capsys):
    reporters = []

    def make(title):
        reporter = TableReporter(title)
        reporters.append(reporter)
        return reporter

    yield make
    with capsys.disabled():
        for reporter in reporters:
            reporter.flush()


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
