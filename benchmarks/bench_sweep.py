"""Parallel sweep benchmark: 24-cell campaign grid, serial vs. pool/remote.

Runs the reference 24-cell grid (2 zones x 12 seeds, fixed work per cell)
through :class:`repro.engine.SweepEngine` once serially and once with the
chosen parallel backend, then reports wall times, speedup, and — always —
verifies the headline guarantee: the parallel results are byte-identical
to the serial reference.

Usage::

    python benchmarks/bench_sweep.py [--workers 4] [--polls 800] [--check]
    python benchmarks/bench_sweep.py --backend remote --workers 4 --check

``--backend local`` (default) uses the in-box process pool;
``--backend remote`` stands up the socket coordinator on a loopback port
and spawns ``--workers`` ``sweep-worker`` subprocesses against it — the
distributed data path, minus the network.

``--check`` turns the speedup into a gate.  The threshold is hardware
aware — the target is 2.5x for the pool and 2.0x for the remote backend
(socket framing and worker start-up cost real time), but a backend can't
beat the core count, so on machines with fewer than 4 usable cores the
requirement scales down (and on a single-core box the gate is skipped
outright, pass reported informationally): byte-equality is still
enforced everywhere.
"""

import argparse
import os
import pickle
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.engine import SweepEngine  # noqa: E402

from perf_trajectory import sweep_grid24_tasks  # noqa: E402

#: Speedup targets per backend at 4+ usable cores.
TARGET_SPEEDUP = {"local": 2.5, "remote": 2.0}


def usable_cores():
    """CPUs this process may actually run on (cgroup/affinity aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def required_speedup(workers, cores, target):
    """Scale the speedup target to what the hardware can deliver.

    With ``min(workers, cores)`` effective lanes the ideal speedup is the
    lane count; we require half of it, capped at the backend's target (so
    4+ cores must hit the full target, 2 cores must hit 1.0x+, 1 core
    gates nothing).
    """
    lanes = min(workers, cores)
    if lanes < 2:
        return None
    return min(target, lanes / 2.0)


def timed_run(workers, polls, backend="local"):
    if backend == "remote":
        engine = SweepEngine(workers=workers, backend="remote",
                             remote_workers=workers, join_timeout_s=60.0)
    else:
        engine = SweepEngine(workers=workers)
    start = time.perf_counter()
    results = engine.run(sweep_grid24_tasks(max_polls=polls))
    return time.perf_counter() - start, results, engine.last_mode


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--polls", type=int, default=800,
                        help="polls per cell (sets per-cell work)")
    parser.add_argument("--backend", choices=("local", "remote"),
                        default="local",
                        help="parallel backend to race against serial "
                             "(remote = loopback socket workers)")
    parser.add_argument("--check", action="store_true",
                        help="gate: fail below the hardware-scaled "
                             "speedup threshold")
    args = parser.parse_args(argv)

    cores = usable_cores()
    print("bench_sweep: 24 cells, {} polls/cell, {} workers "
          "({} backend), {} usable core(s)".format(
              args.polls, args.workers, args.backend, cores))

    serial_s, serial_results, _ = timed_run(1, args.polls)
    parallel_s, parallel_results, mode = timed_run(
        args.workers, args.polls, backend=args.backend)

    if args.backend == "remote" and mode != "remote":
        print("FAIL: remote backend degraded to {!r}".format(mode))
        return 1

    # Compare cell by cell: pickling the whole list at once would also
    # compare pickle's memo structure (object sharing across cells), which
    # legitimately differs between in-process and round-tripped results.
    identical = len(serial_results) == len(parallel_results) and all(
        pickle.dumps(a) == pickle.dumps(b)
        for a, b in zip(serial_results, parallel_results))
    speedup = serial_s / parallel_s if parallel_s else float("inf")
    print("serial: {:.0f} ms   {}[{}]: {:.0f} ms   speedup: {:.2f}x   "
          "byte-identical: {}".format(serial_s * 1e3, args.backend, mode,
                                      parallel_s * 1e3, speedup,
                                      identical))

    if not identical:
        print("FAIL: {} results differ from the serial reference".format(
            args.backend))
        return 1

    threshold = required_speedup(args.workers, cores,
                                 TARGET_SPEEDUP[args.backend])
    if threshold is None:
        print("speedup gate skipped: single usable core (determinism "
              "still verified)")
        return 0
    if args.check and speedup < threshold:
        print("FAIL: speedup {:.2f}x below required {:.2f}x".format(
            speedup, threshold))
        return 1
    print("speedup gate{}: {:.2f}x vs required {:.2f}x".format(
        "" if args.check else " (informational)", speedup, threshold))
    return 0


if __name__ == "__main__":
    sys.exit(main())
