"""Parallel sweep benchmark: 24-cell campaign grid, serial vs. pool.

Runs the reference 24-cell grid (2 zones x 12 seeds, fixed work per cell)
through :class:`repro.engine.SweepEngine` once serially and once with a
worker pool, then reports wall times, speedup, and — always — verifies the
headline guarantee: the pooled results are byte-identical to the serial
reference.

Usage::

    python benchmarks/bench_sweep.py [--workers 4] [--polls 800] [--check]

``--check`` turns the speedup into a gate.  The threshold is hardware
aware — the target is 2.5x, but a pool can't beat the core count, so on
machines with fewer than 4 usable cores the requirement scales down
(and on a single-core box the gate is skipped outright, pass reported
informationally): byte-equality is still enforced everywhere.
"""

import argparse
import os
import pickle
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.engine import SweepEngine  # noqa: E402

from perf_trajectory import sweep_grid24_tasks  # noqa: E402

TARGET_SPEEDUP = 2.5


def usable_cores():
    """CPUs this process may actually run on (cgroup/affinity aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def required_speedup(workers, cores):
    """Scale the 2.5x target to what the hardware can deliver.

    With ``min(workers, cores)`` effective lanes the ideal speedup is the
    lane count; we require half of it, capped at the 2.5x target (so 4+
    cores must hit the full target, 2 cores must hit 1.0x+, 1 core gates
    nothing).
    """
    lanes = min(workers, cores)
    if lanes < 2:
        return None
    return min(TARGET_SPEEDUP, lanes / 2.0)


def timed_run(workers, polls):
    engine = SweepEngine(workers=workers)
    start = time.perf_counter()
    results = engine.run(sweep_grid24_tasks(max_polls=polls))
    return time.perf_counter() - start, results, engine.last_mode


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--polls", type=int, default=800,
                        help="polls per cell (sets per-cell work)")
    parser.add_argument("--check", action="store_true",
                        help="gate: fail below the hardware-scaled "
                             "speedup threshold")
    args = parser.parse_args(argv)

    cores = usable_cores()
    print("bench_sweep: 24 cells, {} polls/cell, {} workers, {} usable "
          "core(s)".format(args.polls, args.workers, cores))

    serial_s, serial_results, _ = timed_run(1, args.polls)
    pool_s, pool_results, mode = timed_run(args.workers, args.polls)

    # Compare cell by cell: pickling the whole list at once would also
    # compare pickle's memo structure (object sharing across cells), which
    # legitimately differs between in-process and round-tripped results.
    identical = len(serial_results) == len(pool_results) and all(
        pickle.dumps(a) == pickle.dumps(b)
        for a, b in zip(serial_results, pool_results))
    speedup = serial_s / pool_s if pool_s else float("inf")
    print("serial: {:.0f} ms   pool[{}]: {:.0f} ms   speedup: {:.2f}x   "
          "byte-identical: {}".format(serial_s * 1e3, mode, pool_s * 1e3,
                                      speedup, identical))

    if not identical:
        print("FAIL: pooled results differ from the serial reference")
        return 1

    threshold = required_speedup(args.workers, cores)
    if threshold is None:
        print("speedup gate skipped: single usable core (determinism "
              "still verified)")
        return 0
    if args.check and speedup < threshold:
        print("FAIL: speedup {:.2f}x below required {:.2f}x".format(
            speedup, threshold))
        return 1
    print("speedup gate{}: {:.2f}x vs required {:.2f}x".format(
        "" if args.check else " (informational)", speedup, threshold))
    return 0


if __name__ == "__main__":
    sys.exit(main())
