"""Ablation: the retry hold duration (§4.6).

The retry method holds a badly-placed FI ~150 ms so the re-issued request
cannot land back on it.  Shorter holds are cheaper but the paper's choice
must balance cost against placement quality; in the simulator the hold is
what keeps the FI busy during the re-issue, so we sweep the knob and
measure net savings of focus-fastest on the zipper workload.
"""

from benchmarks.conftest import once
from repro import (
    BaselinePolicy,
    CharacterizationStore,
    RetryRoutingPolicy,
    RoutingStudy,
    SkyMesh,
    UniversalDynamicFunctionHandler,
    build_sky,
    workload_by_name,
)
from repro.workloads import resolve_runtime_model

ZONE = "us-west-1b"
SEED = 5
HOLDS_MS = (0, 50, 150, 300, 600)
DAYS = 5


def run_hold(hold_ms):
    cloud = build_sky(seed=SEED, aws_only=True)
    account = cloud.create_account("abl", "aws")
    mesh = SkyMesh(cloud)
    endpoints = {ZONE: mesh.deploy_sampling_endpoints(account, ZONE,
                                                      count=10)}
    mesh.register(cloud.deploy(
        account, ZONE, "dynamic", 2048,
        handler=UniversalDynamicFunctionHandler(resolve_runtime_model)))
    study = RoutingStudy(cloud, mesh, CharacterizationStore(),
                         workload_by_name("zipper"), [ZONE], endpoints,
                         days=DAYS, burst_size=600, polls_per_day=6)
    result = study.run([
        BaselinePolicy(ZONE),
        RetryRoutingPolicy(ZONE, "focus_fastest",
                           hold_seconds=hold_ms / 1000.0),
    ])
    summary = result.savings_summary()["focus_fastest"]
    return summary["cumulative_pct"]


def sweep():
    return {hold_ms: run_hold(hold_ms) for hold_ms in HOLDS_MS}


def test_ablation_hold_duration(benchmark, report):
    savings = once(benchmark, sweep)

    table = report("Ablation: retry hold duration vs. net savings")
    table.row("hold (ms)", "cumulative savings %", widths=(10, 0))
    for hold_ms in HOLDS_MS:
        table.row(hold_ms, "{:.1f}".format(savings[hold_ms]),
                  widths=(10, 0))

    # Savings decrease monotonically-ish as holds get longer (the hold is
    # billed FI time).
    assert savings[0] >= savings[150] >= savings[600]

    # The paper's 150 ms hold still nets double-digit savings; holds cost
    # real money but do not erase the benefit...
    assert savings[150] > 8.0
    # ...until they become extreme.
    assert savings[600] < savings[0]
    assert savings[0] - savings[600] > 1.0
