"""Telemetry plane overhead: free when off, bounded when shipping.

The gate follows the ``bench_obs_overhead`` / ``bench_resilience_overhead``
pattern: the machinery's *inactive* path is what every existing caller
pays, and that path must run within 5 % of the plain sweep.  Shipping
itself cannot meet 5 % against an uninstrumented baseline on these
micro-cells — collecting the events at all costs ~35 % (the same reason
``bench_obs_overhead`` benchmarks but does not gate its bus-enabled
variant), and the double-count-proof merge replays every event at home,
so shipping's floor is one extra bus dispatch per event, not zero.

What this module pins:

* ``telemetry=True`` with no facade attached (the inert path) within
  5 % of the plain sweep — the acceptance gate.
* Results byte-identical with shipping enabled — the acceptance gate.
* Shipping regression tripwires with measured headroom: the full
  shipped sweep within 2.5x of plain, and capture+drain+merge within
  1.6x of collecting the same events locally (measured ~1.8x and
  ~1.3x respectively; a regression in the drain/merge hot path trips
  these long before users notice).

Run with ``pytest benchmarks/bench_telemetry_overhead.py
--benchmark-only`` for the timed variants, or plainly for the gates.
"""

import gc
import pickle
import time

from repro.engine import CampaignTask, CloudSpec, SweepEngine
from repro.engine.tasks import run_task
from repro.obs import Observability
from repro.obs.ship import TelemetryCapture, TelemetryMerge

CELLS = 6


def make_tasks():
    zones = ("us-west-1a", "us-west-1b")
    return [CampaignTask(
        CloudSpec.for_zones([zones[index % 2]], seed=index),
        zones[index % 2], endpoints=3, n_requests=150, max_polls=2)
        for index in range(CELLS)]


def run_plain():
    return SweepEngine(workers=1).run(make_tasks())


def run_inert():
    """Telemetry plumbing on, nothing attached: must collapse to plain."""
    return SweepEngine(workers=1, telemetry=True).run(make_tasks())


def run_shipped():
    return SweepEngine(workers=1, obs=Observability(),
                       telemetry=True).run(make_tasks())


def run_local_collection():
    """The same events collected straight into a parent facade.

    A capture whose bus *is* the coordinator bus pays collection
    (dispatch + bridge + recorder) exactly once with zero shipping —
    the fair baseline for pricing what drain + payload + merge add.
    """
    obs = Observability()
    capture = TelemetryCapture(worker_id="local")
    capture.bus = obs.bus
    with capture:
        return [run_task(task) for task in make_tasks()]


def run_raw_shipped():
    """Capture, drain, and merge per cell — the serial shipping path
    without engine scaffolding, comparable to run_local_collection."""
    obs = Observability()
    merge = TelemetryMerge(obs)
    capture = TelemetryCapture(worker_id="w0")
    results = []
    with capture:
        for index, task in enumerate(make_tasks()):
            capture.begin_cell(index, task)
            results.append(run_task(task))
            capture.end_cell(True, 1.0)
            merge.merge(capture.drain(cell=index), chunk=index)
    return results


def test_sweep_plain(benchmark):
    """Serial sweep, no observability anywhere."""
    results = benchmark(run_plain)
    assert len(results) == CELLS


def test_sweep_telemetry(benchmark):
    """Serial sweep with full capture + drain + merge per cell."""
    results = benchmark(run_shipped)
    assert len(results) == CELLS


def test_sweep_local_collection(benchmark):
    """Collection without shipping — the bus-enabled reference point."""
    results = benchmark(run_local_collection)
    assert len(results) == CELLS


def _paired_ratio(fn_a, fn_b, rounds=17, warmup=2):
    """Median of per-round ``time(fn_b) / time(fn_a)`` ratios.

    Each round times the two functions back to back — alternating which
    goes first — so slow machine phases hit both sides of a ratio
    equally; the median discards rounds a scheduler hiccup landed in,
    and gc is paused so a collection doesn't fall inside one window.
    Returns ``(median_ratio, best_a, best_b)``.
    """
    for _ in range(warmup):
        fn_a()
        fn_b()
    ratios = []
    best_a = best_b = float("inf")
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for round_index in range(rounds):
            first, second = ((fn_a, fn_b) if round_index % 2 == 0
                             else (fn_b, fn_a))
            start = time.perf_counter()
            first()
            elapsed_first = time.perf_counter() - start
            start = time.perf_counter()
            second()
            elapsed_second = time.perf_counter() - start
            if round_index % 2 == 0:
                elapsed_a, elapsed_b = elapsed_first, elapsed_second
            else:
                elapsed_a, elapsed_b = elapsed_second, elapsed_first
            ratios.append(elapsed_b / elapsed_a)
            best_a = min(best_a, elapsed_a)
            best_b = min(best_b, elapsed_b)
    finally:
        if was_enabled:
            gc.enable()
    ratios.sort()
    return ratios[len(ratios) // 2], best_a, best_b


def test_results_byte_identical_with_telemetry():
    """Telemetry must never perturb results — per-element pickles match."""
    plain = [pickle.dumps(result) for result in run_plain()]
    shipped = [pickle.dumps(result) for result in run_shipped()]
    assert shipped == plain


def test_telemetry_overhead_under_5pct():
    """The acceptance gate: telemetry plumbing that nobody opted into
    runs within 5 % of the plain sweep (paired interleaved rounds)."""
    ratio, plain, inert = _paired_ratio(run_plain, run_inert)
    overhead = ratio - 1.0
    assert overhead < 0.05, (
        "inert telemetry overhead {:.1%} exceeds 5% "
        "(plain best {:.4f}s, inert best {:.4f}s)".format(
            overhead, plain, inert))


def test_shipped_sweep_within_regression_ceiling():
    """Tripwire: the fully shipped sweep stays under 2.5x plain.

    Collection alone is ~1.35x here, and the merge's at-home replay is
    one more dispatch per event, landing shipped around 1.8x — the
    ceiling catches a hot-path regression without pretending full
    collection could ever be free on micro-cells."""
    ratio, plain, shipped = _paired_ratio(run_plain, run_shipped)
    assert ratio < 2.5, (
        "shipped sweep {:.2f}x plain exceeds the 2.5x ceiling "
        "(plain best {:.4f}s, shipped best {:.4f}s)".format(
            ratio, plain, shipped))


def test_shipping_machinery_within_regression_ceiling():
    """Tripwire: capture + drain + merge stays under 1.6x of collecting
    the identical events locally (measured ~1.3x — the delta is buffer
    appends, payload assembly, and the per-event label copy)."""
    ratio, local, shipped = _paired_ratio(run_local_collection,
                                          run_raw_shipped)
    assert ratio < 1.6, (
        "shipping machinery {:.2f}x local collection exceeds the 1.6x "
        "ceiling (local best {:.4f}s, shipped best {:.4f}s)".format(
            ratio, local, shipped))


if __name__ == "__main__":
    for label, reference, candidate in (
            ("inert telemetry", run_plain, run_inert),
            ("shipped sweep  ", run_plain, run_shipped),
            ("ship machinery ", run_local_collection, run_raw_shipped)):
        ratio, best_ref, best_new = _paired_ratio(reference, candidate)
        print("{}: {:.2f}x  (ref {:.4f}s, new {:.4f}s)".format(
            label, ratio, best_ref, best_new))
