"""Ablation: routing on stale characterizations (EX-4's "usable lifespan").

Figure 7 measures how fast a profile decays; this ablation converts decay
into routing *regret*.  For ten days across the two volatile us-west-1
zones we compare, against each day's ground-truth CPU mix, the decisions
a policy makes from:

* the **stale** day-1 profiles, versus
* **fresh** daily profiles.

Regret(day) = true expected runtime factor of the chosen zone minus that
of the day's genuinely best zone — zero when the decision is right, the
full misrouting penalty when it is wrong.  Two policies:

* **regional** (no retries) — the profile is its only information, so
  decayed shares misroute it directly;
* **hybrid** (with retries) — the in-zone CPU check self-corrects, so the
  staleness penalty shrinks.
"""

from benchmarks.conftest import once
from repro import (
    CharacterizationStore,
    RetryPolicy,
    SamplingCampaign,
    SkyMesh,
    ZoneRanker,
    build_sky,
    workload_by_name,
)
from repro.common.units import HOURS
from repro.sampling.characterization import CPUCharacterization

SEEDS = (1, 5, 23, 42, 97, 131)
ZONES = ("us-west-1a", "us-west-1b")
DAYS = 12


def truth_profile(cloud, zone_id):
    """The zone's real provisioned mix right now, as a characterization."""
    zone = cloud.zone(zone_id)
    zone.place_batch("probe", 1, duration=0.1, window=0.0)  # apply drift
    return CPUCharacterization(zone_id, zone.cpu_slot_shares(),
                               samples=zone.capacity, polls=0, cost=0.0,
                               created_at=cloud.clock.now)


def scores_under_truth(truth_store, workload, zone_id, with_retry):
    """True expected factor of routing to ``zone_id`` (with/without the
    focus-fastest retry)."""
    ranker = ZoneRanker(truth_store)
    factors = workload.cpu_factors()
    if not with_retry:
        return ranker.expected_factor(zone_id, factors)
    cpus = truth_store.get(zone_id).cpu_keys()
    if len(cpus) < 2:
        return ranker.expected_factor(zone_id, factors)
    retry = RetryPolicy.focus_fastest(cpus, factors)
    return ranker.expected_factor_with_retry(
        zone_id, factors, retry, base_seconds=workload.base_seconds)


def decide(store, workload, with_retry):
    """The zone a policy picks from ``store``'s (possibly stale) view."""
    ranker = ZoneRanker(store)
    factors = workload.cpu_factors()
    best_zone, best_score = None, None
    for zone_id in ZONES:
        if with_retry:
            score = scores_under_truth(store, workload, zone_id, True)
        else:
            score = ranker.expected_factor(zone_id, factors)
        if best_score is None or score < best_score:
            best_zone, best_score = zone_id, score
    return best_zone

def run_regret(seed):
    cloud = build_sky(seed=seed, aws_only=True)
    account = cloud.create_account("abl", "aws")
    mesh = SkyMesh(cloud)
    workload = workload_by_name("logistic_regression")

    # Day-1 sampled profiles = the stale store, frozen for the horizon.
    stale_store = CharacterizationStore()
    for zone_id in ZONES:
        endpoints = mesh.deploy_sampling_endpoints(account, zone_id,
                                                   count=8)
        campaign = SamplingCampaign(cloud, endpoints, max_polls=6,
                                    inter_poll_gap=1.0)
        stale_store.put(campaign.run().ground_truth())
        cloud.clock.advance(600.0)

    regrets = {("regional", "stale"): 0.0, ("regional", "fresh"): 0.0,
               ("hybrid", "stale"): 0.0, ("hybrid", "fresh"): 0.0}
    daily = []
    for day in range(DAYS):
        cloud.clock.advance(22 * HOURS)
        truth_store = CharacterizationStore()
        for zone_id in ZONES:
            truth_store.put(truth_profile(cloud, zone_id))
        day_row = {"day": day + 2}
        for policy, with_retry in (("regional", False), ("hybrid", True)):
            true_scores = {z: scores_under_truth(truth_store, workload, z,
                                                 with_retry)
                           for z in ZONES}
            best = min(true_scores.values())
            for label, store in (("stale", stale_store),
                                 ("fresh", truth_store)):
                chosen = decide(store, workload, with_retry)
                regret = true_scores[chosen] - best
                regrets[(policy, label)] += regret
                day_row["{}-{}".format(policy, label)] = regret
        daily.append(day_row)
    return regrets, daily


def run_all_seeds():
    return {seed: run_regret(seed)[0] for seed in SEEDS}


def test_ablation_staleness(benchmark, report):
    by_seed = once(benchmark, run_all_seeds)

    table = report("Ablation: 12-day routing regret from stale (day-1) "
                   "profiles, per seed")
    table.row("seed", "regional-stale", "hybrid-stale", "fresh (both)",
              widths=(5, 15, 13, 12))
    totals = {("regional", "stale"): 0.0, ("hybrid", "stale"): 0.0}
    worst = {"regional": 0.0, "hybrid": 0.0}
    for seed in SEEDS:
        regrets = by_seed[seed]
        table.row(seed,
                  "{:.3f}".format(regrets[("regional", "stale")]),
                  "{:.3f}".format(regrets[("hybrid", "stale")]),
                  "{:.3f}".format(regrets[("regional", "fresh")]
                                  + regrets[("hybrid", "fresh")]),
                  widths=(5, 15, 13, 12))
        for policy in ("regional", "hybrid"):
            totals[(policy, "stale")] += regrets[(policy, "stale")]
            worst[policy] = max(worst[policy],
                                regrets[(policy, "stale")])
    table.line()
    table.row("totals: regional-stale {:.3f}, hybrid-stale {:.3f}".format(
        totals[("regional", "stale")], totals[("hybrid", "stale")]))

    # Fresh profiles decide optimally by construction, in every seed.
    for regrets in by_seed.values():
        assert regrets[("regional", "fresh")] == 0.0
        assert regrets[("hybrid", "fresh")] == 0.0

    # Staleness costs real regret somewhere in every policy's seed set.
    assert totals[("regional", "stale")] + totals[
        ("hybrid", "stale")] > 0.5

    # The headline asymmetry: staleness risk is heavy-tailed, and the
    # worst case is far worse for the profile-only regional policy than
    # for the hybrid, whose in-zone retries self-correct.
    assert worst["regional"] > 2 * worst["hybrid"]
