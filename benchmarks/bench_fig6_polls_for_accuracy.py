"""Figure 6 (EX-4): polls needed for 95 % characterization accuracy,
per zone, per day, over two weeks.

Also reproduces the paper's accuracy-ladder averages: 1.41 / 2.62 / 5.65 /
10.5 polls for 85 / 90 / 95 / 99 % accuracy.
"""

from benchmarks.conftest import once
from repro import DailyCampaignSeries, EX4_ZONES, SkyMesh, build_sky

SEED = 17
DAYS = 14


def run_series():
    cloud = build_sky(seed=SEED, aws_only=True)
    account = cloud.create_account("primary", "aws")
    mesh = SkyMesh(cloud)
    series = {}
    for zone_id in EX4_ZONES:
        endpoints = mesh.deploy_sampling_endpoints(account, zone_id,
                                                   count=60)
        daily = DailyCampaignSeries(cloud, endpoints, days=DAYS)
        daily.run()
        series[zone_id] = daily
        cloud.clock.advance(600.0)
    return series


def test_fig6_polls_for_accuracy(benchmark, report):
    series = once(benchmark, run_series)

    table = report(
        "Figure 6: polls to reach 95% accuracy, per zone per day")
    table.row("zone", *["d{}".format(d + 1) for d in range(DAYS)],
              widths=(15,) + (4,) * DAYS)
    for zone_id in EX4_ZONES:
        polls = series[zone_id].polls_for_accuracy(95.0)
        table.row(zone_id, *[p if p is not None else "-" for p in polls],
                  widths=(15,) + (4,) * DAYS)

    # The accuracy ladder: higher accuracy costs more polls, and the
    # all-zone averages land near the paper's 1.41 / 2.62 / 5.65 / 10.5.
    ladder = {}
    for accuracy in (85.0, 90.0, 95.0, 99.0):
        means = [s.mean_polls_for_accuracy(accuracy)
                 for s in series.values()]
        means = [m for m in means if m is not None]
        ladder[accuracy] = sum(means) / len(means)
    table.line()
    table.row("accuracy ladder (mean polls):",
              "  ".join("{:.0f}%={:.2f}".format(a, ladder[a])
                        for a in sorted(ladder)))

    assert ladder[85.0] <= ladder[90.0] <= ladder[95.0] <= ladder[99.0]
    assert 1.0 <= ladder[85.0] <= 4.0
    assert 2.0 <= ladder[95.0] <= 10.0
    assert ladder[99.0] <= 25.0

    # Every zone reached 95 % accuracy on most days.
    for zone_id, daily in series.items():
        reached = [p for p in daily.polls_for_accuracy(95.0)
                   if p is not None]
        assert len(reached) >= DAYS * 0.7, zone_id
