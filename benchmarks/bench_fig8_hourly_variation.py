"""Figure 8 (EX-4): hourly CPU-distribution variation in us-west-1b.

High-frequency sampling: a short campaign every hour for 24 hours, each
compared against the hour-0 baseline.  The paper found 22 of 24 hours
within 10 % of the baseline, with occasional excursions.
"""

from benchmarks.conftest import once
from repro import HourlySeries, SkyMesh, build_sky

ZONE = "us-west-1b"
SEEDS = (41, 43, 47)


def run_hourly(seed):
    cloud = build_sky(seed=seed, aws_only=True)
    account = cloud.create_account("primary", "aws")
    mesh = SkyMesh(cloud)
    endpoints = mesh.deploy_sampling_endpoints(account, ZONE, count=30)
    series = HourlySeries(cloud, endpoints, hours=24, polls_per_hour=6)
    series.run()
    return series


def run_all():
    return [run_hourly(seed) for seed in SEEDS]


def test_fig8_hourly_variation(benchmark, report):
    runs = once(benchmark, run_all)

    table = report("Figure 8: hourly APE vs. hour-0 baseline, us-west-1b")
    table.row("hour", *["run{}".format(i) for i in range(len(runs))],
              widths=(5,) + (7,) * len(runs))
    curves = [dict(series.variation_curve()) for series in runs]
    for hour in range(1, 24):
        table.row(hour, *["{:.1f}".format(curve[hour]) for curve in curves],
                  widths=(5,) + (7,) * len(runs))
    within = [series.hours_within(10.0) for series in runs]
    table.line()
    table.row("hours within 10% of baseline:",
              ", ".join("{}/23".format(w) for w in within))

    # Most hours stay within 10 % of the baseline (paper: 22 of 24).
    for count in within:
        assert count >= 16

    # But the zone is not frozen: some variation exists in every run.
    for curve in curves:
        assert max(curve.values()) > 2.0

    # Occasional excursions are visible across the day in at least one run
    # (the paper saw two excursion hours).
    assert any(max(curve.values()) > 8.0 for curve in curves)
