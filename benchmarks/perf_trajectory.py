"""Simulator perf trajectory: record hot-path timings, gate regressions.

The two numbers that bound how large an experiment the library can host are
the per-op costs of the sampling poll (``test_throughput_poll_1000``) and
the routed invocation (``test_throughput_invoke_one``).  This script times
exactly those loops — best-of-N, min over repeats, so background load on
the machine inflates nothing — and appends them to ``BENCH_simulator.json``
at the repo root, building a commit-over-commit trajectory.

Cross-machine comparability comes from a calibration loop: a fixed pure
Python workload timed the same way.  The gate compares *normalized* costs
(metric / calibration) so a slower CI runner doesn't read as a regression.

Usage::

    python benchmarks/perf_trajectory.py record --label after --baseline
    python benchmarks/perf_trajectory.py check [--max-regression 0.20]

``check`` measures the current tree, records it (label ``ci-check``), and
exits non-zero if any metric regressed more than ``--max-regression``
against the most recent entry flagged ``"baseline": true``.
"""

import argparse
import json
import os
import subprocess
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro import build_sky  # noqa: E402
from repro.cloudsim.handlers import ModeledWorkloadHandler, SleepHandler  # noqa: E402
from repro.cloudsim.provider import provider_by_name  # noqa: E402
from repro.dynfunc import UniversalDynamicFunctionHandler  # noqa: E402
from repro.engine import CampaignTask, CloudSpec, Grid, SweepEngine  # noqa: E402
from repro.workloads import resolve_runtime_model, workload_by_name  # noqa: E402

TRAJECTORY = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_simulator.json")

POLL_ITERS = 2000
INVOKE_ITERS = 10000
BATCH_100K = 100000
BATCH_10K = 10000
#: Lifted AWS concurrency quota for the 100k batch benchmarks — the
#: catalog default (1000) would cap the burst and time a 1k batch.
BATCH_QUOTA = 200000
REPEATS = 5
SWEEP_REPEATS = 3
BATCH_REPEATS = 3
#: The vectorized path must beat the looped executable spec by at least
#: this factor at n=100k, or recording aborts (the fast path rotted).
MIN_BATCH_SPEEDUP = 5.0
#: Offered load for the serving-gateway benchmark; the coalescing
#: dispatcher must sustain at least MIN_SERVE_SPEEDUP x the per-request
#: scalar path at this rate, or recording aborts.
SERVE_RPS = 10000.0
SERVE_SIM_S = 5.0
SERVE_SCALAR_SIM_S = 0.5
SERVE_REPEATS = 3
MIN_SERVE_SPEEDUP = 5.0
METRICS = ("poll_1000_us", "invoke_one_us", "sweep_grid24_ms",
           "poll_100k_ms", "batch_invoke_10k_us", "cloud_build_ms",
           "serve_sustained_rps", "serve_p99_ms")
#: Throughput metrics: bigger is better, and the normalized cost is
#: value * calibration (a slow machine lowers the rate, so multiplying
#: by its per-op cost cancels the machine out).
HIGHER_IS_BETTER = frozenset({"serve_sustained_rps"})
#: Sim-domain metrics: deterministic given the seed, independent of the
#: host machine — gated raw, any drift is a behavior change.
SIM_METRICS = frozenset({"serve_p99_ms"})


def best_of(fn, repeats=REPEATS):
    fn()  # warmup
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def calibration_us():
    """A fixed pure-Python workload; measures the machine, not the code."""
    def spin():
        acc = 0
        for i in range(200000):
            acc += i * i
        return acc

    return best_of(spin) / 200000 * 1e6


def sweep_grid24_tasks(root_seed=77, max_polls=400):
    """The reference 24-cell campaign grid (shared with bench_sweep).

    ``failure_threshold=1.0`` disables the early-saturation stop and a
    long ``inter_poll_gap`` lets capacity expire between polls, so every
    cell runs exactly ``max_polls`` full polls — fixed work per cell, the
    shape a parallel-speedup benchmark needs.  ``summary=True`` keeps the
    returned payload fixed-size so the benchmark times the sweep, not the
    parent's unpickling of raw observations.
    """
    grid = Grid([("zone", ["us-west-1a", "us-west-1b"]),
                 ("seed", list(range(12)))], root_seed=root_seed,
                namespace="bench-sweep")
    tasks = []
    for cell in grid.cells():
        zone = dict(cell.key)["zone"]
        tasks.append(CampaignTask(
            CloudSpec.for_zones([zone], seed=cell.seed), zone,
            endpoints=30, n_requests=1000, max_polls=max_polls,
            failure_threshold=1.0, inter_poll_gap=400.0, summary=True))
    return tasks


def _batch_cloud(seed=311):
    """A fresh one-deployment cloud for the batch benchmarks."""
    cloud = build_sky(seed=seed, aws_only=True)
    account = cloud.create_account("bench-batch", "aws")
    deployment = cloud.deploy(
        account, "eu-central-1a", "modeled", 2048,
        handler=ModeledWorkloadHandler("bench", 0.3, {}, noise_sigma=0.05,
                                       default_factor=1.0))
    return cloud, deployment


def _batch_keys(vectorize, polls=2, n_requests=BATCH_100K):
    """Seeded aggregate keys for the byte-equality guarantee."""
    cloud, deployment = _batch_cloud()
    keys = []
    for _ in range(polls):
        result = cloud.poll_batch(deployment, n_requests,
                                  vectorize=vectorize)
        keys.append(result.aggregate_key())
        cloud.clock.advance(120.0)
    return keys


def measure_batch():
    """poll_100k_ms / batch_invoke_10k_us, plus the equality+speedup gate.

    Runs under a lifted AWS concurrency quota so the full 100k burst is
    actually admitted (restored afterwards).  Aborts with
    :class:`AssertionError` if the vectorized and looped paths diverge
    on seeded aggregates, or if the speedup fell below
    ``MIN_BATCH_SPEEDUP`` — both are the PR's documented guarantees, so
    a bench that silently recorded numbers for a broken fast path would
    be worse than no bench.
    """
    aws = provider_by_name("aws")
    saved_quota = aws.concurrency_quota
    aws.concurrency_quota = BATCH_QUOTA
    try:
        assert _batch_keys(True) == _batch_keys(False), \
            "vectorized poll_batch diverged from the looped spec"

        def time_path(vectorize, n_requests):
            cloud, deployment = _batch_cloud()

            def one_poll():
                cloud.poll_batch(deployment, n_requests,
                                 vectorize=vectorize)
                cloud.clock.advance(3600.0)  # expire capacity between

            return best_of(one_poll, repeats=BATCH_REPEATS)

        vectorized_s = time_path(True, BATCH_100K)
        looped_s = time_path(False, BATCH_100K)
        speedup = looped_s / vectorized_s
        assert speedup >= MIN_BATCH_SPEEDUP, \
            "vectorized poll_batch only {:.1f}x faster than looped at " \
            "n={} (need >= {}x)".format(speedup, BATCH_100K,
                                        MIN_BATCH_SPEEDUP)
        return {
            "poll_100k_ms": vectorized_s * 1e3,
            "poll_100k_loop_ms": looped_s * 1e3,
            "batch_invoke_10k_us": time_path(True, BATCH_10K) * 1e6,
        }
    finally:
        aws.concurrency_quota = saved_quota


def _serve_gateway(batch_floor, seed=311):
    """A capacity-lifted serving rig: the gateway benchmark measures
    dispatch throughput, so the zones must not saturate at 10k rps."""
    from repro import Observability, SkyController
    from repro.sampling import CharacterizationBuilder
    from repro.serve import GatewayConfig, PoissonArrivals, ServeGateway

    cloud = build_sky(seed=seed, aws_only=True)
    account = cloud.create_account("bench-serve", "aws")
    zones = ["us-west-1a", "us-west-1b"]
    for zone_id in zones:
        for pool in cloud.zone(zone_id).pools.values():
            # ~20k slots per pool: 10k rps x 2.5s runtimes need ~25k
            # concurrent slots across the zones.
            if pool.slots_per_host > 0:
                pool.add_hosts(-(-20000 // pool.slots_per_host))
    controller = SkyController(cloud, account, zones,
                               obs=Observability(), sampling_count=2)
    for zone_id in zones:
        builder = CharacterizationBuilder(zone_id)
        builder.add_poll({key: pool.capacity
                          for key, pool in cloud.zone(zone_id).pools.items()
                          if pool.capacity > 0})
        profile = builder.snapshot()
        controller.store.put(profile)
        controller.tracker.observe(profile)
    workload = workload_by_name("sha1_hash")
    config = GatewayConfig(batch_floor=batch_floor)
    arrivals = PoissonArrivals(SERVE_RPS, seed=seed)
    return ServeGateway(controller, workload, arrivals, config=config)


def measure_serve():
    """serve_sustained_rps / serve_p99_ms, plus the coalescing gate.

    Two runs at the same 10k rps offered load: the default coalescing
    dispatcher, and the scalar per-request path (batch floor set above
    any batch size, so every flush falls back).  Sustained rate is
    requests resolved per *wall* second; the scalar leg runs a shorter
    sim window because it is the slow path being bounded, not measured
    at length.  Aborts if coalescing fell below ``MIN_SERVE_SPEEDUP`` x
    scalar — the tentpole's documented guarantee.
    """
    aws = provider_by_name("aws")
    saved_quota = aws.concurrency_quota
    aws.concurrency_quota = BATCH_QUOTA
    try:
        def time_run(batch_floor, sim_s, repeats):
            # Best-of over fresh gateways (a gateway can't re-run), same
            # min-over-repeats discipline as every cost metric above —
            # background load can only lower a rate, never raise it.
            best_rps, best_report = 0.0, None
            for _ in range(repeats):
                gateway = _serve_gateway(batch_floor)
                start = time.perf_counter()
                report = gateway.run_sync(sim_s)
                elapsed = time.perf_counter() - start
                rps = (report.served + report.failed) / elapsed
                if rps > best_rps:
                    best_rps, best_report = rps, report
            return best_rps, best_report

        coalesced_rps, report = time_run(16, SERVE_SIM_S,
                                         SERVE_REPEATS)
        scalar_rps, _ = time_run(10 ** 9, SERVE_SCALAR_SIM_S, 2)
        speedup = coalesced_rps / scalar_rps
        assert speedup >= MIN_SERVE_SPEEDUP, \
            "coalesced dispatch only {:.1f}x the per-request path at " \
            "{:.0f} rps offered (need >= {}x)".format(
                speedup, SERVE_RPS, MIN_SERVE_SPEEDUP)
        assert report.served > 0, "serve bench served nothing"
        return {
            "serve_sustained_rps": coalesced_rps,
            "serve_scalar_rps": scalar_rps,
            "serve_p99_ms": report.quantile_ms(0.99),
        }
    finally:
        aws.concurrency_quota = saved_quota


def measure_build():
    """Full-catalog CloudSpec.build, exercising the shared plan memo."""
    def build():
        CloudSpec(seed=17, aws_only=False).build()

    return {"cloud_build_ms": best_of(build) * 1e3}


def measure():
    cloud = build_sky(seed=191, aws_only=True)
    account = cloud.create_account("bench", "aws")
    sleeper = cloud.deploy(account, "eu-central-1a", "sleeper", 2048,
                           handler=SleepHandler(0.25))
    dynamic = cloud.deploy(
        account, "eu-central-1a", "dynamic", 2048,
        handler=UniversalDynamicFunctionHandler(resolve_runtime_model))
    payload = workload_by_name("sha1_hash").payload()

    def poll_loop():
        for _ in range(POLL_ITERS):
            cloud.poll(sleeper, 1000)
            cloud.clock.advance(400.0)  # let the FIs expire between rounds

    def invoke_loop():
        for _ in range(INVOKE_ITERS):
            cloud.invoke(dynamic, payload=payload)
            cloud.clock.advance(5.0)  # warm reuse on the next round

    def sweep_loop():
        SweepEngine(workers=1).run(sweep_grid24_tasks())

    numbers = {
        "poll_1000_us": best_of(poll_loop) / POLL_ITERS * 1e6,
        "invoke_one_us": best_of(invoke_loop) / INVOKE_ITERS * 1e6,
        "sweep_grid24_ms": best_of(sweep_loop,
                                   repeats=SWEEP_REPEATS) * 1e3,
        "calibration_us": calibration_us(),
    }
    numbers.update(measure_batch())
    numbers.update(measure_serve())
    numbers.update(measure_build())
    return numbers


def git_commit():
    try:
        return subprocess.check_output(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(TRAJECTORY),
            stderr=subprocess.DEVNULL).decode().strip()
    except Exception:
        return "unknown"


def load_trajectory():
    if not os.path.exists(TRAJECTORY):
        return {"schema": 1, "metrics": list(METRICS), "entries": []}
    with open(TRAJECTORY) as fh:
        return json.load(fh)


def append_entry(label, numbers, baseline=False, note=None):
    data = load_trajectory()
    entry = {
        "label": label,
        "commit": git_commit(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": "{}.{}.{}".format(*sys.version_info[:3]),
        "baseline": bool(baseline),
    }
    if note:
        entry["note"] = note
    entry.update({k: round(v, 3) for k, v in numbers.items()})
    data["entries"].append(entry)
    with open(TRAJECTORY, "w") as fh:
        json.dump(data, fh, indent=2)
        fh.write("\n")
    return entry


def latest_baseline(data):
    for entry in reversed(data["entries"]):
        if entry.get("baseline"):
            return entry
    return None


def cmd_record(args):
    numbers = measure()
    entry = append_entry(args.label, numbers, baseline=args.baseline,
                         note=args.note)
    print("recorded {label} @ {commit}: poll_1000={poll:.2f}us "
          "invoke_one={invoke:.2f}us sweep_grid24={sweep:.1f}ms "
          "poll_100k={batch:.2f}ms (loop {loop:.1f}ms, {speed:.1f}x) "
          "batch_10k={b10k:.1f}us build={build:.2f}ms "
          "serve={srv:.0f}rps (scalar {scalar:.0f}rps, {srvx:.1f}x) "
          "serve_p99={p99:.1f}ms (calibration {cal:.4f}us)".format(
              label=entry["label"], commit=entry["commit"],
              poll=numbers["poll_1000_us"],
              invoke=numbers["invoke_one_us"],
              sweep=numbers["sweep_grid24_ms"],
              batch=numbers["poll_100k_ms"],
              loop=numbers["poll_100k_loop_ms"],
              speed=numbers["poll_100k_loop_ms"]
              / numbers["poll_100k_ms"],
              b10k=numbers["batch_invoke_10k_us"],
              build=numbers["cloud_build_ms"],
              srv=numbers["serve_sustained_rps"],
              scalar=numbers["serve_scalar_rps"],
              srvx=numbers["serve_sustained_rps"]
              / numbers["serve_scalar_rps"],
              p99=numbers["serve_p99_ms"],
              cal=numbers["calibration_us"]))
    return 0


def gate_ratio(metric, numbers, baseline):
    """Regression ratio for one metric (>1 means current is worse)."""
    if metric in SIM_METRICS:
        # Deterministic sim-domain number: no machine to cancel out,
        # gate the raw values directly.
        return numbers[metric] / baseline[metric]
    if metric in HIGHER_IS_BETTER:
        # Rate metric: per-op cost is 1/rate, so normalized cost is
        # calibration / rate — inverting the ratio keeps the
        # "ratio > 1 + slack means regression" convention.
        base_norm = baseline[metric] * baseline["calibration_us"]
        curr_norm = numbers[metric] * numbers["calibration_us"]
        return base_norm / curr_norm
    base_norm = baseline[metric] / baseline["calibration_us"]
    curr_norm = numbers[metric] / numbers["calibration_us"]
    return curr_norm / base_norm


def cmd_check(args):
    data = load_trajectory()
    baseline = latest_baseline(data)
    numbers = measure()
    if not args.no_record:
        append_entry(args.label, numbers)
    if baseline is None:
        print("no baseline entry in {}; recording only".format(
            os.path.basename(TRAJECTORY)))
        return 0
    limit = 1.0 + args.max_regression
    suspects = []
    for metric in METRICS:
        if metric not in baseline:
            # The metric postdates the baseline entry (e.g. sweep_grid24_ms
            # added after the baseline was recorded): nothing to gate yet.
            print("{}: {:.2f} (no baseline value; skipped)".format(
                metric, numbers[metric]))
            continue
        ratio = gate_ratio(metric, numbers, baseline)
        verdict = "ok"
        if ratio > limit:
            verdict = "SUSPECT"
            suspects.append(metric)
        print("{metric}: {curr:.2f} vs baseline {base:.2f} "
              "(normalized ratio {ratio:.3f}) {verdict}".format(
                  metric=metric, curr=numbers[metric],
                  base=baseline[metric], ratio=ratio, verdict=verdict))
    # A single timing draw on a busy or thermally-throttling machine
    # produces false regressions (that is exactly how a prior baseline
    # misread bench noise as a real slowdown).  A metric only counts as
    # regressed if it stays over the limit on independent re-measurement.
    for attempt in range(args.retries):
        if not suspects:
            break
        remeasured = measure()
        still = []
        for metric in suspects:
            ratio = gate_ratio(metric, remeasured, baseline)
            verdict = "ok" if ratio <= limit else "REGRESSION" \
                if attempt + 1 == args.retries else "SUSPECT"
            print("retry {n} {metric}: {curr:.2f} "
                  "(normalized ratio {ratio:.3f}) {verdict}".format(
                      n=attempt + 1, metric=metric,
                      curr=remeasured[metric], ratio=ratio,
                      verdict=verdict))
            if ratio > limit:
                still.append(metric)
        suspects = still
    failed = suspects
    if failed:
        print("perf gate failed: >{:.0%} regression vs baseline {} "
              "@ {} ({})".format(args.max_regression, baseline["label"],
                                 baseline["commit"], ", ".join(failed)))
        return 1
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser("record", help="measure and append an entry")
    record.add_argument("--label", default="dev")
    record.add_argument("--baseline", action="store_true",
                        help="mark this entry as the gate's baseline")
    record.add_argument("--note", default=None,
                        help="free-form annotation stored on the entry "
                        "(e.g. why a baseline was re-recorded)")
    record.set_defaults(func=cmd_record)

    check = sub.add_parser("check", help="measure and gate vs baseline")
    check.add_argument("--label", default="ci-check")
    check.add_argument("--max-regression", type=float, default=0.20)
    check.add_argument("--retries", type=int, default=2,
                       help="re-measure suspect metrics this many times; "
                       "a regression must reproduce on every attempt")
    check.add_argument("--no-record", action="store_true")
    check.set_defaults(func=cmd_check)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
