"""Figure 11 (EX-5): hybrid region hopping + retries vs. a fixed zone.

Replays the paper's headline experiment: logistic_regression routed by a
hybrid policy hopping among us-west-1a, us-west-1b, and sa-east-1a with
in-zone retries, compared to a fixed us-west-1b baseline.

Paper numbers: logistic_regression 13.3 % cumulative (max day 17.1 %);
graph_bfs hybrid best overall at 18.2 %; all-function mean 10.03 %
(sigma 3.70 %); $2.80 total sampling spend.
"""

from benchmarks.conftest import once
from repro import (
    BaselinePolicy,
    CharacterizationStore,
    HybridPolicy,
    RoutingStudy,
    SkyMesh,
    UniversalDynamicFunctionHandler,
    build_sky,
    workload_by_name,
)
from repro.common.units import Money
from repro.core.metrics import mean_std
from repro.workloads import WORKLOAD_NAMES, resolve_runtime_model

ZONES = ("us-west-1a", "us-west-1b", "sa-east-1a")
BASELINE_ZONE = "us-west-1b"
SEED = 5
DAYS = 14
BURST = 1000


def build_study_env():
    cloud = build_sky(seed=SEED, aws_only=True)
    account = cloud.create_account("study", "aws")
    mesh = SkyMesh(cloud)
    endpoints = {}
    for zone in ZONES:
        endpoints[zone] = mesh.deploy_sampling_endpoints(account, zone,
                                                         count=10)
        mesh.register(cloud.deploy(
            account, zone, "dynamic", 2048,
            handler=UniversalDynamicFunctionHandler(resolve_runtime_model)))
    return cloud, mesh, endpoints


def run_hybrid_all_workloads():
    results = {}
    sampling_total = Money(0)
    for name in WORKLOAD_NAMES:
        cloud, mesh, endpoints = build_study_env()
        store = CharacterizationStore()
        study = RoutingStudy(cloud, mesh, store, workload_by_name(name),
                             list(ZONES), endpoints, days=DAYS,
                             burst_size=BURST, polls_per_day=6)
        outcome = study.run([BaselinePolicy(BASELINE_ZONE),
                             HybridPolicy("focus_fastest")])
        results[name] = outcome
        sampling_total = sampling_total + outcome.sampling_cost
    return results, sampling_total


def test_fig11_hybrid_routing(benchmark, report):
    results, sampling_total = once(benchmark, run_hybrid_all_workloads)

    table = report("Figure 11: hybrid region hopping vs. us-west-1b")
    table.row("workload", "cumulative%", "max-day%", "zones used",
              widths=(24, 12, 9, 0))
    savings = {}
    for name in sorted(results):
        summary = results[name].savings_summary()["hybrid_focus_fastest"]
        savings[name] = summary["cumulative_pct"]
        zones_used = sorted(set(
            results[name].zones_chosen["hybrid_focus_fastest"]))
        table.row(name, "{:.1f}".format(summary["cumulative_pct"]),
                  "{:.1f}".format(summary["max_daily_pct"]),
                  ",".join(zones_used), widths=(24, 12, 9, 0))

    mean, std = mean_std(list(savings.values()))
    table.line()
    table.row("all-function mean: {:.2f}%  std: {:.2f}%".format(mean, std))
    table.row("total sampling spend: {}".format(sampling_total))

    # The paper's headline cases both save double digits.
    assert savings["logistic_regression"] > 8.0
    assert savings["graph_bfs"] > 8.0

    # Headline magnitudes stay in the paper's band (13.3 % / 18.2 %),
    # allowing simulator slack.
    assert savings["logistic_regression"] < 30.0
    assert max(savings.values()) < 35.0

    # Every workload benefits from the hybrid approach.
    assert all(value > 0 for value in savings.values())

    # All-function mean near the paper's 10.03 % (sigma 3.70 %).
    assert 6.0 < mean < 22.0
    assert std < 8.0

    # Region hopping really hops: at least one workload uses >1 zone.
    assert any(
        len(set(r.zones_chosen["hybrid_focus_fastest"])) > 1
        for r in results.values())

    # Total sampling spend across the twelve studies is dollars, not tens
    # (paper: $2.80 for the shared characterizations; our studies resample
    # per workload, so allow 12x).
    assert sampling_total < Money(40.0)
