"""Legacy setup shim: enables `pip install -e .` on toolchains without the
`wheel` package (modern editable installs need bdist_wheel)."""

from setuptools import setup

setup()
