"""Characterize the whole sky: 41 regions, 3 providers (EX-2 flavour).

Builds the full multi-provider catalog, samples every region's first
availability zone, and prints the global CPU map plus the accuracy/cost
trade-off of progressive sampling for a few interesting zones.

Run:  python examples/characterize_the_sky.py
"""

from repro import (
    ProgressiveAnalysis,
    SamplingCampaign,
    SkyMesh,
    build_sky,
)


def characterize_globally(cloud, mesh, accounts, polls=4):
    profiles = {}
    for region_name in cloud.region_names():
        region = cloud.region(region_name)
        zone_id = region.zone_ids()[0]
        endpoints = mesh.deploy_sampling_endpoints(
            accounts[region.provider.name], zone_id, count=polls,
            memory_base_mb=region.provider.memory_options_mb[-1] - 128)
        campaign = SamplingCampaign(
            cloud, endpoints, max_polls=polls,
            n_requests=min(1000, region.provider.concurrency_quota))
        profiles[region_name] = campaign.run().ground_truth()
        cloud.clock.advance(60.0)
    return profiles


def main():
    cloud = build_sky(seed=7)
    accounts = {name: cloud.create_account("acct-" + name, name)
                for name in ("aws", "ibm", "do")}
    mesh = SkyMesh(cloud)

    print("Sampling 41 regions across AWS, IBM, and Digital Ocean...")
    profiles = characterize_globally(cloud, mesh, accounts)

    print("\n{:<18} {:<5} {}".format("region", "prov", "CPU mix"))
    for region_name, profile in sorted(profiles.items()):
        provider = cloud.region(region_name).provider.name
        mix = "  ".join("{}={:.0%}".format(cpu, profile.share(cpu))
                        for cpu in profile.cpu_keys())
        print("{:<18} {:<5} {}".format(region_name, provider, mix))

    # Progressive sampling: how fast does the estimate converge, and what
    # does each accuracy level cost?
    print("\nProgressive sampling on three contrasting AWS zones:")
    for zone_id in ("us-east-2a", "us-east-2b", "eu-north-1a"):
        endpoints = mesh.deploy_sampling_endpoints(accounts["aws"],
                                                   zone_id, count=60)
        analysis = ProgressiveAnalysis(
            SamplingCampaign(cloud, endpoints).run())
        polls95 = analysis.polls_to_accuracy(95.0)
        cost95 = analysis.cost_to_accuracy(95.0)
        print("  {:<13} single-poll APE {:5.1f}%  polls->95%: {:<4} "
              "cost->95%: {}".format(
                  zone_id, analysis.ape_after(1),
                  polls95 if polls95 else "-",
                  cost95 if cost95 else "-"))
        cloud.clock.advance(600.0)


if __name__ == "__main__":
    main()
