"""Dynamic functions end-to-end: ship code in the payload, run anywhere.

Demonstrates the paper's §3.2 machinery with *real code execution*:

1. package a workload's source into a compressed+encoded payload;
2. execute it in the in-FI runtime (actual ``exec``), hitting the
   hash-keyed payload cache on the second call;
3. invoke the same payload through the simulated sky mesh, where one
   generic pre-deployed endpoint serves every workload;
4. use the payload's banned-CPU list — the in-function check behind the
   retry method.

Run:  python examples/dynamic_functions_demo.py
"""

from repro import (
    RetryEngine,
    RetryPolicy,
    SkyMesh,
    UniversalDynamicFunctionHandler,
    build_sky,
    workload_by_name,
)
from repro.dynfunc import DynamicFunctionRuntime
from repro.workloads import resolve_runtime_model


def main():
    workload = workload_by_name("thumbnailer")
    payload = workload.payload(args={"seed": 1, "scale": 0.3})
    print("payload: {} encoded bytes, sha256={}...".format(
        payload.encoded_bytes, payload.sha256[:12]))

    # -- 1+2: real execution inside one FI's runtime --------------------------
    runtime = DynamicFunctionRuntime()
    first = runtime.handle(payload)
    second = runtime.handle(payload)
    print("first call : cached={}  result={}".format(first.cached,
                                                     first.value["summary"]))
    print("second call: cached={}  (decode skipped via payload hash)"
          .format(second.cached))

    # -- 3: the same payload through the simulated sky mesh ---------------------
    cloud = build_sky(seed=9, aws_only=True)
    account = cloud.create_account("demo", "aws")
    mesh = SkyMesh(cloud)
    handler = UniversalDynamicFunctionHandler(resolve_runtime_model)
    deployment = cloud.deploy(account, "us-west-1b", "dynamic", 2048,
                              handler=handler)
    mesh.register(deployment)

    for name in ("sha1_hash", "thumbnailer", "logistic_regression"):
        invocation = cloud.invoke(deployment,
                                  payload=workload_by_name(name).payload())
        print("mesh ran {:<20} on {:<9} in {:6.2f}s (billed {})".format(
            name, invocation.cpu_key, invocation.runtime_s,
            invocation.bill.total))
        cloud.clock.advance(400.0)

    # -- 4: the banned-CPU check that powers the retry method --------------------
    engine = RetryEngine(cloud)
    policy = RetryPolicy.focus_fastest(
        cloud.zone("us-west-1b").cpu_keys(),
        workload_by_name("logistic_regression").cpu_factors())
    outcome = engine.invoke(deployment, policy,
                            payload=workload_by_name(
                                "logistic_regression").payload())
    print("retry engine: landed on {} after {} retries "
          "(holds billed {})".format(outcome.cpu_key, outcome.retries,
                                     outcome.hold_cost))


if __name__ == "__main__":
    main()
