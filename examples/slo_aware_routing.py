"""SLO-aware strategy selection: batch vs. interactive, mechanically.

The paper notes (§4.6) that retry-based savings suit asynchronous batch
workloads, not latency-critical paths.  The :class:`SLOSelector` turns
that into a decision procedure: forecast every strategy's cost and p95
latency from the zone characterizations, then pick the cheapest strategy
that fits the caller's latency budget.

Run:  python examples/slo_aware_routing.py
"""

from repro import (
    CharacterizationStore,
    SamplingCampaign,
    SkyMesh,
    build_sky,
    workload_by_name,
)
from repro.common.errors import ConfigurationError
from repro.core import SLOSelector
from repro.sampling import CharacterizationEstimator

ZONES = ("us-west-1a", "us-west-1b", "sa-east-1a")


def main():
    cloud = build_sky(seed=37, aws_only=True)
    account = cloud.create_account("slo", "aws")
    mesh = SkyMesh(cloud)
    store = CharacterizationStore()

    print("Characterizing {} zones (with confidence intervals)...".format(
        len(ZONES)))
    for zone_id in ZONES:
        endpoints = mesh.deploy_sampling_endpoints(account, zone_id,
                                                   count=6)
        campaign = SamplingCampaign(cloud, endpoints, max_polls=6,
                                    inter_poll_gap=1.0)
        profile = campaign.run().ground_truth()
        store.put(profile)
        estimator = CharacterizationEstimator(profile)
        intervals = "  ".join(
            "{} {:.0%}±{:.0%}".format(cpu, profile.share(cpu),
                                      estimator.share_halfwidth(cpu))
            for cpu in profile.cpu_keys())
        print("  {:<12} {}".format(zone_id, intervals))
        cloud.clock.advance(120.0)

    workload = workload_by_name("zipper")
    selector = SLOSelector(cloud, store)

    print("\nStrategy menu for {} (cost vs. p95 latency):".format(
        workload.name))
    menu = selector.candidate_forecasts(workload, list(ZONES))
    for forecast in sorted(menu, key=lambda f: f.expected_cost_usd):
        print("  {:<28} ${:.6f}/inv  p95 {:5.2f}s  ~{:.1f} retries".format(
            forecast.name, forecast.expected_cost_usd,
            forecast.latency_p95_s, forecast.expected_retries))

    print("\nPicking per latency budget:")
    for slo_s in (60.0, 9.5, 8.0):
        try:
            chosen = selector.select(workload, list(ZONES),
                                     latency_slo_s=slo_s)
            print("  SLO {:>5.1f}s -> {:<28} (${:.6f}, p95 {:.2f}s)".format(
                slo_s, chosen.name, chosen.expected_cost_usd,
                chosen.latency_p95_s))
        except ConfigurationError as error:
            print("  SLO {:>5.1f}s -> infeasible: {}".format(slo_s, error))


if __name__ == "__main__":
    main()
