"""Quickstart: characterize a zone, then route a workload with retries.

Builds the simulated 41-region sky, samples us-west-1b's infrastructure,
and compares the cost of 1,000 zipper invocations under the baseline and
the paper's focus-fastest retry strategy.

Run:  python examples/quickstart.py
"""

from repro import (
    BaselinePolicy,
    CharacterizationStore,
    RetryRoutingPolicy,
    SamplingCampaign,
    SkyMesh,
    SmartRouter,
    UniversalDynamicFunctionHandler,
    WorkloadRunner,
    build_sky,
    workload_by_name,
)
from repro.core.metrics import cost_savings_pct
from repro.workloads import resolve_runtime_model

ZONE = "us-west-1b"


def main():
    # 1. A simulated sky and an AWS account.
    cloud = build_sky(seed=42, aws_only=True)
    account = cloud.create_account("quickstart", "aws")
    mesh = SkyMesh(cloud)

    # 2. Characterize the zone: deploy sampling endpoints, poll until the
    #    estimate is good enough (6 polls ~ 95 % accuracy in the paper).
    endpoints = mesh.deploy_sampling_endpoints(account, ZONE, count=10)
    campaign = SamplingCampaign(cloud, endpoints, max_polls=6)
    profile = campaign.run().ground_truth()
    print("CPU characterization of {} ({} FIs observed, cost {}):".format(
        ZONE, profile.samples, profile.cost))
    for cpu in profile.cpu_keys():
        print("  {:<10} {:5.1%}".format(cpu, profile.share(cpu)))

    store = CharacterizationStore()
    store.put(profile)

    # 3. Deploy one generic dynamic-function endpoint; it can run any
    #    workload shipped in the request payload.
    mesh.register(cloud.deploy(
        account, ZONE, "dynamic", 2048,
        handler=UniversalDynamicFunctionHandler(resolve_runtime_model)))

    # 4. Route a 1,000-invocation zipper burst two ways and compare cost.
    cloud.clock.advance(600.0)  # let sampling FIs expire first
    workload = workload_by_name("zipper")
    runner = WorkloadRunner(cloud)
    costs = {}
    for policy in (BaselinePolicy(ZONE),
                   RetryRoutingPolicy(ZONE, "focus_fastest")):
        router = SmartRouter(cloud, mesh, store, policy, workload, [ZONE])
        decision = router.decide()
        burst = runner.run_batched_burst(
            mesh.endpoint(ZONE, 2048), workload, 1000,
            retry_policy=decision.retry_policy, policy_name=policy.name)
        costs[policy.name] = float(burst.total_cost)
        print("{:<14} cost={:.4f} USD  retries={}  cpus={}".format(
            policy.name, costs[policy.name], burst.total_retries,
            burst.cpu_counts))
        cloud.clock.advance(600.0)

    savings = cost_savings_pct(costs["baseline"], costs["focus_fastest"])
    print("focus-fastest saves {:.1f}% over the baseline".format(savings))


if __name__ == "__main__":
    main()
