"""Batch workload cost optimization across the sky (EX-5 flavour).

The paper motivates the retry method with cost-sensitive batch workloads
(e.g. RNA-sequencing pipelines) that tolerate extra latency.  This example
runs a week of daily 1,000-invocation logistic-regression batches under
four routing strategies — fixed-zone baseline, retry-slow, focus-fastest,
and the hybrid region hopper — and prints the daily and cumulative bills.

Run:  python examples/batch_cost_optimizer.py
"""

from repro import (
    BaselinePolicy,
    CharacterizationStore,
    HybridPolicy,
    RetryRoutingPolicy,
    RoutingStudy,
    SkyMesh,
    UniversalDynamicFunctionHandler,
    build_sky,
    workload_by_name,
)
from repro.workloads import resolve_runtime_model

ZONES = ("us-west-1a", "us-west-1b", "sa-east-1a")
BASELINE_ZONE = "us-west-1b"
DAYS = 7


def main():
    cloud = build_sky(seed=11, aws_only=True)
    account = cloud.create_account("batch", "aws")
    mesh = SkyMesh(cloud)
    endpoints = {}
    for zone in ZONES:
        endpoints[zone] = mesh.deploy_sampling_endpoints(account, zone,
                                                         count=10)
        mesh.register(cloud.deploy(
            account, zone, "dynamic", 2048,
            handler=UniversalDynamicFunctionHandler(resolve_runtime_model)))

    study = RoutingStudy(cloud, mesh, CharacterizationStore(),
                         workload_by_name("logistic_regression"),
                         list(ZONES), endpoints, days=DAYS,
                         burst_size=1000, polls_per_day=6)
    result = study.run([
        BaselinePolicy(BASELINE_ZONE),
        RetryRoutingPolicy(BASELINE_ZONE, "retry_slow"),
        RetryRoutingPolicy(BASELINE_ZONE, "focus_fastest"),
        HybridPolicy("focus_fastest"),
    ])

    names = result.policy_names
    print("Daily cost (USD) of 1,000 logistic-regression invocations:")
    print("{:<5}".format("day")
          + "".join("{:>22}".format(n) for n in names))
    for day in range(DAYS):
        print("{:<5}".format(day + 1)
              + "".join("{:>22.4f}".format(result.daily_costs[n][day])
                        for n in names))
    print("{:<5}".format("sum")
          + "".join("{:>22.4f}".format(result.cumulative_cost(n))
                    for n in names))

    print("\nSavings vs. baseline:")
    for name, summary in sorted(result.savings_summary().items()):
        print("  {:<22} cumulative {:5.1f}%   best day {:5.1f}%".format(
            name, summary["cumulative_pct"], summary["max_daily_pct"]))
    print("\nHybrid zone choices per day: {}".format(
        result.zones_chosen["hybrid_focus_fastest"]))
    print("Sampling spend for the week: {}".format(result.sampling_cost))
    print("(Retry holds add ~150 ms latency per round — worth it for "
          "batch pipelines, not for interactive paths.)")


if __name__ == "__main__":
    main()
