"""Temporal monitoring and adaptive sampling cadence (EX-4 flavour).

Watches five availability zones for a week, classifies each as *stable* or
*volatile* from the drift of its CPU characterization, and shows how an
operator can cut profiling spend by sampling stable zones less often —
the optimization the paper sketches in §4.4.

Run:  python examples/temporal_monitoring.py
"""

from repro import DailyCampaignSeries, EX4_ZONES, SkyMesh, build_sky
from repro.sampling.cost import series_cost

DAYS = 7
STABILITY_THRESHOLD_APE = 12.0


def classify(series):
    """Stable = every later day stays near the day-1 profile."""
    worst = max(ape for _, ape in series.decay_curve())
    return ("stable" if worst <= STABILITY_THRESHOLD_APE else "volatile",
            worst)


def main():
    cloud = build_sky(seed=23, aws_only=True)
    account = cloud.create_account("monitor", "aws")
    mesh = SkyMesh(cloud)

    print("Monitoring {} zones for {} days...".format(len(EX4_ZONES),
                                                      DAYS))
    classes = {}
    total_cost = 0.0
    for zone_id in EX4_ZONES:
        endpoints = mesh.deploy_sampling_endpoints(account, zone_id,
                                                   count=60)
        series = DailyCampaignSeries(cloud, endpoints, days=DAYS)
        results = series.run()
        label, worst = classify(series)
        classes[zone_id] = label
        cost = float(series_cost(results))
        total_cost += cost
        curve = "  ".join("{:.0f}".format(ape)
                          for _, ape in series.decay_curve())
        print("  {:<15} {:<9} worst APE {:5.1f}%  week cost ${:.2f}  "
              "daily APE: {}".format(zone_id, label, worst, cost, curve))
        cloud.clock.advance(3600.0)

    # Adaptive cadence: stable zones re-profiled weekly instead of daily.
    stable = [z for z, label in classes.items() if label == "stable"]
    volatile = [z for z, label in classes.items() if label == "volatile"]
    naive_campaigns = len(EX4_ZONES) * DAYS
    adaptive_campaigns = len(volatile) * DAYS + len(stable) * 1
    print("\nClassification: stable={}, volatile={}".format(stable,
                                                            volatile))
    print("Naive daily profiling:   {} campaigns/week".format(
        naive_campaigns))
    print("Adaptive cadence:        {} campaigns/week "
          "({:.0f}% fewer polls on profiling)".format(
              adaptive_campaigns,
              100 * (1 - adaptive_campaigns / naive_campaigns)))
    print("Total profiling spend this week: ${:.2f}".format(total_cost))


if __name__ == "__main__":
    main()
