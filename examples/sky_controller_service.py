"""Operating a sky service with the SkyController middleware.

The one-object API a downstream user adopts: the controller provisions the
mesh, keeps zone characterizations fresh on an *adaptive* cadence (stable
zones weekly, volatile zones daily), and routes every submitted workload
through the hybrid policy — while folding passive CPU observations back
into its profiles.

Run:  python examples/sky_controller_service.py
"""

from repro import SkyController, build_sky, workload_by_name
from repro.common.units import DAYS

ZONES = ["us-west-1a", "us-west-1b", "sa-east-1a", "eu-north-1a"]
DAYS_TO_OPERATE = 5


def main():
    cloud = build_sky(seed=31, aws_only=True)
    account = cloud.create_account("service", "aws")
    controller = SkyController(cloud, account, ZONES,
                               polls_per_refresh=6, sampling_count=10)

    jobs = ["logistic_regression", "zipper", "graph_bfs", "sha1_hash"]
    print("Operating a serverless sky service for {} days...".format(
        DAYS_TO_OPERATE))
    for day in range(DAYS_TO_OPERATE):
        day_start = cloud.clock.now
        refreshed = controller.refresh_due_zones()
        daily_cost = 0.0
        for job in jobs:
            burst = controller.submit_burst(workload_by_name(job), 500)
            daily_cost += float(burst.total_cost)
        print("day {}: refreshed {:<38} spent ${:.3f} on {} bursts".format(
            day + 1,
            str(refreshed if refreshed else "(profiles still fresh)"),
            daily_cost, len(jobs)))
        cloud.clock.advance_to(day_start + 1 * DAYS)

    print("\nZone stability classification after {} days:".format(
        DAYS_TO_OPERATE))
    for zone, label in sorted(controller.classification().items()):
        passive = controller.store.passive_samples(zone)
        print("  {:<14} {:<9} (passive observations: {})".format(
            zone, label, passive))
    print("\nTotal sampling spend: {}".format(controller.sampling_cost))
    print("Invocation spend:     ${:.2f}".format(
        account.spend_breakdown().get("burst", 0.0)))


if __name__ == "__main__":
    main()
