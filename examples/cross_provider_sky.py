"""Cross-provider sky routing: AWS vs. IBM Code Engine vs. Digital Ocean.

The sky vision is provider freedom: characterize zones on *all three*
platforms, then route by expected **dollars** per invocation — expected
runtime on the zone's CPU mix times the provider's own GB-second rate.
Run-of-the-mill regional routing compares runtimes only; across providers
that is not enough, because billing rates differ by >2x.

Run:  python examples/cross_provider_sky.py
"""

from repro import (
    CharacterizationStore,
    SamplingCampaign,
    SkyMesh,
    SmartRouter,
    UniversalDynamicFunctionHandler,
    ZoneRanker,
    build_sky,
    workload_by_name,
)
from repro.core.policies import CheapestCostPolicy
from repro.workloads import resolve_runtime_model

# One zone per provider.  The AWS zone is af-south-1 — the region with no
# 3.0 GHz parts — so its CPU mix is *slower* than Digital Ocean's, while
# AWS bills ~10 % less per GB-second: runtime and dollars disagree.
CANDIDATES = {
    "aws": "af-south-1a",
    "ibm": "us-south",
    "do": "nyc1",
}
MEMORY_MB = 1024


def main():
    cloud = build_sky(seed=13)
    accounts = {name: cloud.create_account("acct-" + name, name)
                for name in ("aws", "ibm", "do")}
    mesh = SkyMesh(cloud)
    store = CharacterizationStore()
    handler = UniversalDynamicFunctionHandler(resolve_runtime_model)

    print("Characterizing one zone per provider...")
    for provider_name, zone_id in CANDIDATES.items():
        account = accounts[provider_name]
        mesh.register(cloud.deploy(account, zone_id, "dynamic", MEMORY_MB,
                                   handler=handler))
        provider = cloud.region_of_zone(zone_id).provider
        endpoints = mesh.deploy_sampling_endpoints(
            account, zone_id, count=4,
            memory_base_mb=provider.memory_options_mb[0])
        campaign = SamplingCampaign(
            cloud, endpoints, max_polls=4,
            n_requests=min(1000, provider.concurrency_quota))
        profile = campaign.run().ground_truth()
        store.put(profile)
        print("  {:<12} {}".format(zone_id, profile.shares()))

    cloud.clock.advance(900.0)
    ranker = ZoneRanker(store, cloud=cloud)
    workload = workload_by_name("sha1_hash")
    factors = workload.cpu_factors()

    print("\nExpected runtime factor vs. expected $ per invocation "
          "({} at {} MB):".format(workload.name, MEMORY_MB))
    for provider_name, zone_id in CANDIDATES.items():
        factor = ranker.expected_factor(zone_id, factors)
        dollars = ranker.expected_cost(zone_id, factors,
                                       workload.base_seconds, MEMORY_MB)
        print("  {:<5} {:<12} factor={:.3f}  ${:.8f}/inv".format(
            provider_name, zone_id, factor, dollars))

    fastest = ranker.best_zone(list(CANDIDATES.values()), factors)
    cheapest = ranker.rank_by_cost(list(CANDIDATES.values()), factors,
                                   workload.base_seconds, MEMORY_MB)[0]
    print("\nfastest zone:  {}".format(fastest))
    print("cheapest zone: {}".format(cheapest))
    if fastest != cheapest:
        print("-> runtime ranking and dollar ranking disagree: this is "
              "why cross-provider routing must compare dollars.")

    router = SmartRouter(cloud, mesh, store,
                         CheapestCostPolicy(memory_mb=MEMORY_MB),
                         workload, list(CANDIDATES.values()),
                         memory_mb=MEMORY_MB)
    request = router.route()
    print("\nCheapestCostPolicy routed the request to {} on {} for {}"
          .format(request.zone_id, request.cpu_key, request.cost))


if __name__ == "__main__":
    main()
